#include "race/detector.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs31::race {

std::string to_string(AccessKind kind) {
  return kind == AccessKind::Read ? "read" : "write";
}

std::string AccessSite::to_string() const {
  std::ostringstream out;
  out << "thread " << thread << ' ' << race::to_string(kind);
  if (!where.empty()) out << " at \"" << where << '"';
  out << " (event " << event << ", holding {";
  for (std::size_t i = 0; i < locks_held.size(); ++i) {
    if (i > 0) out << ", ";
    out << locks_held[i];
  }
  out << "})";
  return out.str();
}

std::string RaceReport::to_string() const {
  std::ostringstream out;
  out << "DATA RACE on `" << variable << "`\n"
      << "  first:  " << first.to_string() << '\n'
      << "  second: " << second.to_string() << '\n'
      << "  why:    " << explanation;
  return out.str();
}

std::string race_pair_key(const std::string& variable, const AccessSite& a,
                          const AccessSite& b) {
  std::string side_a = std::to_string(a.thread) + '@' + a.where;
  std::string side_b = std::to_string(b.thread) + '@' + b.where;
  if (side_b < side_a) side_a.swap(side_b);  // unordered pair
  return variable + '|' + side_a + '|' + side_b;
}

std::string explain_race(const AccessSite& first, const AccessSite& second,
                         const std::string& why) {
  // Lockset view for the explanation: a true race's held-lock sets are
  // disjoint (had they shared a lock, release/acquire would have made a
  // happens-before edge and we would not be here).
  std::vector<std::string> common;
  for (const std::string& l : first.locks_held) {
    if (std::find(second.locks_held.begin(), second.locks_held.end(), l) !=
        second.locks_held.end()) {
      common.push_back(l);
    }
  }
  std::ostringstream out;
  out << why << ": no fork/join, lock, barrier, or channel edge orders thread "
      << first.thread << "'s " << race::to_string(first.kind) << " before thread "
      << second.thread << "'s " << race::to_string(second.kind);
  if (common.empty()) {
    out << "; the two sides hold no lock in common";
  } else {
    // Possible when a shared lock was released before the conflicting
    // epoch was published — still worth surfacing for discussion.
    out << "; note both sides hold {";
    for (std::size_t i = 0; i < common.size(); ++i) {
      if (i > 0) out << ", ";
      out << common[i];
    }
    out << '}';
  }
  return out.str();
}

std::string summarize_races(const std::vector<RaceReport>& races, std::uint64_t race_count,
                            std::uint64_t events, std::size_t threads) {
  std::ostringstream out;
  if (races.empty()) {
    out << "race-free: no data races over " << events << " events, " << threads
        << " threads";
    return out.str();
  }
  out << races.size() << " distinct race(s), " << race_count << " racy access(es), over "
      << events << " events:\n";
  for (const RaceReport& r : races) out << r.to_string() << '\n';
  return out.str();
}

std::vector<RaceReport> merge_shard_reports(std::vector<std::vector<RaceReport>> shards) {
  std::vector<RaceReport> merged;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  merged.reserve(total);
  for (auto& shard : shards) {
    for (RaceReport& r : shard) merged.push_back(std::move(r));
  }
  std::stable_sort(merged.begin(), merged.end(), [](const RaceReport& a, const RaceReport& b) {
    return a.second.event < b.second.event;
  });
  std::set<std::string> seen;
  std::vector<RaceReport> deduped;
  deduped.reserve(merged.size());
  for (RaceReport& r : merged) {
    if (seen.insert(race_pair_key(r.variable, r.first, r.second)).second) {
      deduped.push_back(std::move(r));
    }
  }
  return deduped;
}

Detector::Detector() {
  // Thread 0 is the main/root thread.
  ThreadState main;
  main.vc.set(0, 1);
  threads_.push_back(std::move(main));
}

ThreadId Detector::register_thread() {
  std::scoped_lock lock(mutex_);
  const auto tid = static_cast<ThreadId>(threads_.size());
  ThreadState ts;
  ts.vc.set(tid, 1);
  threads_.push_back(std::move(ts));
  return tid;
}

ThreadId Detector::fork(ThreadId parent) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& p = state(parent);
  const auto child = static_cast<ThreadId>(threads_.size());
  ThreadState ts;
  ts.vc = p.vc;  // child observes everything the parent did before the fork
  ts.vc.set(child, 1);
  threads_.push_back(std::move(ts));
  threads_[parent].vc.tick(parent);  // parent enters a new epoch
  return child;
}

void Detector::join(ThreadId parent, ThreadId child) {
  std::scoped_lock lock(mutex_);
  ++events_;
  ThreadState& c = state(child);
  state(parent).vc.join(c.vc);  // parent observes the child's whole life
  c.vc.tick(child);
}

NameId Detector::intern_var(std::string_view name) {
  std::scoped_lock lock(mutex_);
  const NameId id = var_names_.id(name);
  if (id >= vars_.size()) vars_.resize(id + 1);
  return id;
}

NameId Detector::intern_lock(std::string_view name) {
  std::scoped_lock lock(mutex_);
  const NameId id = lock_names_.id(name);
  if (id >= locks_.size()) locks_.resize(id + 1);
  return id;
}

NameId Detector::intern_channel(std::string_view name) {
  std::scoped_lock lock(mutex_);
  const NameId id = channel_names_.id(name);
  if (id >= channels_.size()) channels_.resize(id + 1);
  return id;
}

NameId Detector::intern_site(std::string_view label) {
  std::scoped_lock lock(mutex_);
  return site_names_.id(label);
}

void Detector::acquire(ThreadId t, const std::string& lock_name) {
  acquire(t, intern_lock(lock_name));
}

void Detector::acquire(ThreadId t, NameId lock_id) {
  std::scoped_lock lock(mutex_);
  check_lock_id(lock_id);
  ++events_;
  ThreadState& ts = state(t);
  ts.vc.join(locks_[lock_id]);  // observe the previous critical section
  ts.held.push_back(lock_id);
}

void Detector::release(ThreadId t, const std::string& lock_name) {
  release(t, intern_lock(lock_name));
}

void Detector::release(ThreadId t, NameId lock_id) {
  std::scoped_lock lock(mutex_);
  check_lock_id(lock_id);
  ++events_;
  ThreadState& ts = state(t);
  const auto it = std::find(ts.held.rbegin(), ts.held.rend(), lock_id);
  if (it == ts.held.rend()) {
    throw Error("release of lock '" + lock_names_.name(lock_id) + "' not held by thread " +
                std::to_string(t));
  }
  locks_[lock_id] = ts.vc;  // publish this critical section to the lock
  ts.vc.tick(t);
  ts.held.erase(std::next(it).base());
}

void Detector::barrier(const std::vector<ThreadId>& waiters) {
  std::scoped_lock lock(mutex_);
  require(!waiters.empty(), "barrier needs at least one waiter");
  ++events_;
  VectorClock all;
  for (const ThreadId w : waiters) all.join(state(w).vc);
  for (const ThreadId w : waiters) {
    ThreadState& ts = state(w);
    ts.vc = all;     // everyone observes everyone's pre-barrier work
    ts.vc.tick(w);   // and starts a fresh epoch on the far side
  }
}

void Detector::channel_send(ThreadId t, const std::string& channel) {
  channel_send(t, intern_channel(channel));
}

void Detector::channel_send(ThreadId t, NameId channel_id) {
  std::scoped_lock lock(mutex_);
  check_channel_id(channel_id);
  ++events_;
  ThreadState& ts = state(t);
  channels_[channel_id].join(ts.vc);
  ts.vc.tick(t);
}

void Detector::channel_recv(ThreadId t, const std::string& channel) {
  channel_recv(t, intern_channel(channel));
}

void Detector::channel_recv(ThreadId t, NameId channel_id) {
  std::scoped_lock lock(mutex_);
  check_channel_id(channel_id);
  ++events_;
  state(t).vc.join(channels_[channel_id]);
}

void Detector::read(ThreadId t, const std::string& var, const std::string& where) {
  read(t, intern_var(var), intern_site(where));
}

void Detector::read(ThreadId t, NameId var, NameId site) {
  std::scoped_lock lock(mutex_);
  check_and_record(t, var, AccessKind::Read, site);
}

void Detector::write(ThreadId t, const std::string& var, const std::string& where) {
  write(t, intern_var(var), intern_site(where));
}

void Detector::write(ThreadId t, NameId var, NameId site) {
  std::scoped_lock lock(mutex_);
  check_and_record(t, var, AccessKind::Write, site);
}

void Detector::check_and_record(ThreadId t, NameId var, AccessKind kind,
                                NameId site_label) {
  if (var >= vars_.size()) {
    throw Error("unknown variable id " + std::to_string(var));
  }
  ++events_;
  ThreadState& ts = state(t);
  VarState& vs = vars_[var];
  const CompactSite site = make_site(t, kind, site_label);

  // Write-check (both kinds): is the last write ordered before us? The
  // single-epoch comparison stands in for a full clock comparison
  // because the write epoch IS the writer's own component, and no other
  // clock can exceed it (the to_clock/contains algebra in
  // vector_clock.hpp, pinned by the property tests).
  if (vs.write_epoch.valid() && vs.write_epoch.tid != t && !ts.vc.contains(vs.write_epoch)) {
    report(var, vs.write_site, site,
           kind == AccessKind::Read ? "write-read conflict" : "write-write conflict");
  }

  if (kind == AccessKind::Read) {
    if (vs.shared) {
      // Already read-shared: update this thread's slot.
      vs.shared->vc.set(t, ts.vc.get(t));
      auto& sites = vs.shared->sites;
      const auto it = std::lower_bound(
          sites.begin(), sites.end(), t,
          [](const auto& entry, ThreadId tid) { return entry.first < tid; });
      if (it != sites.end() && it->first == t) {
        it->second = site;
      } else {
        sites.insert(it, {t, site});
      }
    } else if (!vs.read_epoch.valid() || vs.read_epoch.tid == t) {
      // The hot path: first reader since the write, or the same thread
      // reading again — one epoch overwrite, O(1).
      vs.read_epoch = Epoch{t, ts.vc.get(t)};
      vs.read_site = site;
    } else {
      // A second thread is reading: inflate to the read-shared clock,
      // keeping the previous reader's slot (see the file comment in
      // detector.hpp for why ordered cross-thread reads inflate too).
      auto shared = std::make_unique<ReadShared>();
      shared->vc.set(vs.read_epoch.tid, vs.read_epoch.clock);
      shared->vc.set(t, ts.vc.get(t));
      shared->sites.emplace_back(vs.read_epoch.tid, std::move(vs.read_site));
      shared->sites.emplace_back(t, site);
      std::sort(shared->sites.begin(), shared->sites.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      vs.shared = std::move(shared);
      vs.read_epoch = Epoch{};
      vs.read_site = CompactSite{};
    }
    return;
  }

  // Read-check (writes only): every read since the last write must be
  // ordered before this write.
  if (vs.shared) {
    for (const auto& [reader, read_site] : vs.shared->sites) {
      if (reader != t && vs.shared->vc.get(reader) > ts.vc.get(reader)) {
        report(var, read_site, site, "read-write conflict");
      }
    }
  } else if (vs.read_epoch.valid() && vs.read_epoch.tid != t &&
             vs.read_epoch.clock > ts.vc.get(vs.read_epoch.tid)) {
    report(var, vs.read_site, site, "read-write conflict");
  }

  // Record the write and deflate: reads before this write are subsumed
  // (ordered ones can never race later accesses through it; unordered
  // ones were just reported), so the read state resets to epoch-none.
  vs.write_epoch = Epoch{t, ts.vc.get(t)};
  vs.write_site = site;
  vs.read_epoch = Epoch{};
  vs.read_site = CompactSite{};
  vs.shared.reset();
}

Detector::CompactSite Detector::make_site(ThreadId t, AccessKind kind, NameId where) const {
  CompactSite site;
  site.thread = t;
  site.kind = kind;
  site.where = where;
  site.event = events_;
  if (!threads_[t].held.empty()) {
    site.locks = std::make_shared<const std::vector<NameId>>(threads_[t].held);
  }
  return site;
}

AccessSite Detector::materialize(const CompactSite& site) const {
  AccessSite out;
  out.thread = site.thread;
  out.kind = site.kind;
  out.where = site_names_.name(site.where);
  out.event = site.event;
  if (site.locks) {
    out.locks_held.reserve(site.locks->size());
    for (const NameId l : *site.locks) out.locks_held.push_back(lock_names_.name(l));
  }
  return out;
}

void Detector::report(NameId var, const CompactSite& first, const CompactSite& second,
                      const char* why) {
  ++race_count_;
  // Ids resolve back to names only here, on the cold path.
  const std::string& variable = var_names_.name(var);
  AccessSite first_site = materialize(first);
  AccessSite second_site = materialize(second);
  if (!reported_.insert(race_pair_key(variable, first_site, second_site)).second) {
    return;  // one report per (variable, site pair)
  }
  RaceReport r;
  r.variable = variable;
  r.explanation = explain_race(first_site, second_site, why);
  r.first = std::move(first_site);
  r.second = std::move(second_site);
  races_.push_back(std::move(r));
}

// The per-event validity checks build their error message only on the
// throwing path: `require(cond, "..." + to_string(x))` constructs the
// message (two allocations) on every call, which at millions of events
// per second was a measurable slice of the tracing overhead.
Detector::ThreadState& Detector::state(ThreadId t) {
  if (t >= threads_.size()) {
    throw Error("unknown thread id " + std::to_string(t));
  }
  return threads_[t];
}

void Detector::check_lock_id(NameId lock_id) const {
  if (lock_id >= locks_.size()) {
    throw Error("unknown lock id " + std::to_string(lock_id));
  }
}

void Detector::check_channel_id(NameId channel_id) const {
  if (channel_id >= channels_.size()) {
    throw Error("unknown channel id " + std::to_string(channel_id));
  }
}

const std::vector<RaceReport>& Detector::races() const { return races_; }

bool Detector::race_free() const {
  std::scoped_lock lock(mutex_);
  return races_.empty();
}

std::uint64_t Detector::race_count() const {
  std::scoped_lock lock(mutex_);
  return race_count_;
}

std::uint64_t Detector::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t Detector::threads() const {
  std::scoped_lock lock(mutex_);
  return threads_.size();
}

namespace {

std::size_t clock_bytes(const VectorClock& vc) {
  return sizeof(VectorClock) + vc.size() * sizeof(Clock);
}

}  // namespace

std::size_t Detector::shadow_bytes() const {
  std::scoped_lock lock(mutex_);
  std::size_t total = 0;
  for (const ThreadState& ts : threads_) {
    total += clock_bytes(ts.vc) + sizeof(ts.held) + ts.held.capacity() * sizeof(NameId);
  }
  for (const VectorClock& vc : locks_) total += clock_bytes(vc);
  for (const VectorClock& vc : channels_) total += clock_bytes(vc);
  const auto site_bytes = [](const CompactSite& s) {
    // A held lockset block may be shared by several sites; counting it
    // per site keeps the estimate simple and conservative (an upper
    // bound on the compressed side).
    const std::size_t lockset =
        s.locks ? sizeof(*s.locks) + s.locks->capacity() * sizeof(NameId) : 0;
    return sizeof(CompactSite) + lockset;
  };
  for (const VarState& vs : vars_) {
    total += sizeof(VarState) - 2 * sizeof(CompactSite);
    total += site_bytes(vs.write_site) + site_bytes(vs.read_site);
    if (vs.shared) {
      total += sizeof(ReadShared) + clock_bytes(vs.shared->vc) - sizeof(VectorClock);
      for (const auto& [tid, site] : vs.shared->sites) {
        total += sizeof(tid) + site_bytes(site);
      }
    }
  }
  total += var_names_.bytes() + lock_names_.bytes() + channel_names_.bytes() +
           site_names_.bytes();
  return total;
}

VectorClock Detector::clock_of(ThreadId t) const {
  std::scoped_lock lock(mutex_);
  require(t < threads_.size(), "unknown thread id " + std::to_string(t));
  return threads_[t].vc;
}

std::string Detector::summary() const {
  std::scoped_lock lock(mutex_);
  return summarize_races(races_, race_count_, events_, threads_.size());
}

void Detector::set_event_clock(std::uint64_t seen) {
  std::scoped_lock lock(mutex_);
  events_ = seen;
}

}  // namespace cs31::race
