#include "race/lockset.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs31::race {

namespace {

/// In-place intersection of two sorted id sets.
void intersect(std::vector<NameId>& into, const std::vector<NameId>& other) {
  std::vector<NameId> out;
  std::set_intersection(into.begin(), into.end(), other.begin(), other.end(),
                        std::back_inserter(out));
  into = std::move(out);
}

}  // namespace

LocksetDetector::LocksetDetector() { held_.emplace_back(); }

void LocksetDetector::check_thread(ThreadId t) const {
  if (t >= held_.size()) {
    throw Error("lockset: unknown thread id " + std::to_string(t));
  }
}

ThreadId LocksetDetector::register_thread() {
  std::scoped_lock lock(mutex_);
  held_.emplace_back();
  return static_cast<ThreadId>(held_.size() - 1);
}

ThreadId LocksetDetector::fork(ThreadId parent) {
  std::scoped_lock lock(mutex_);
  check_thread(parent);
  ++events_;
  held_.emplace_back();
  return static_cast<ThreadId>(held_.size() - 1);
}

void LocksetDetector::join(ThreadId parent, ThreadId child) {
  std::scoped_lock lock(mutex_);
  check_thread(parent);
  check_thread(child);
  ++events_;  // no ordering recorded — lockset is blind to join edges
}

void LocksetDetector::acquire(ThreadId t, const std::string& lock) {
  std::scoped_lock guard(mutex_);
  check_thread(t);
  held_[t].push_back(lock_names_.id(lock));
  ++events_;
}

void LocksetDetector::release(ThreadId t, const std::string& lock) {
  std::scoped_lock guard(mutex_);
  check_thread(t);
  const NameId id = lock_names_.id(lock);
  auto& held = held_[t];
  const auto it = std::find(held.rbegin(), held.rend(), id);
  require(it != held.rend(),
          "lockset: thread releases lock '" + lock + "' it does not hold");
  held.erase(std::next(it).base());
  ++events_;
}

void LocksetDetector::barrier(const std::vector<ThreadId>& waiters) {
  std::scoped_lock lock(mutex_);
  require(!waiters.empty(), "barrier needs at least one waiter");
  for (const ThreadId w : waiters) check_thread(w);
  ++events_;  // deliberately no effect: Eraser cannot see barrier order
}

void LocksetDetector::channel_send(ThreadId t, const std::string& channel) {
  std::scoped_lock lock(mutex_);
  check_thread(t);
  (void)channel;
  ++events_;  // deliberately no effect
}

void LocksetDetector::channel_recv(ThreadId t, const std::string& channel) {
  std::scoped_lock lock(mutex_);
  check_thread(t);
  (void)channel;
  ++events_;  // deliberately no effect
}

void LocksetDetector::read(ThreadId t, const std::string& var, const std::string& where) {
  on_access(t, var, AccessKind::Read, where);
}

void LocksetDetector::write(ThreadId t, const std::string& var, const std::string& where) {
  on_access(t, var, AccessKind::Write, where);
}

LocksetDetector::Access LocksetDetector::make_access(ThreadId t, AccessKind kind,
                                                     NameId where) {
  Access a;
  a.valid = true;
  a.thread = t;
  a.kind = kind;
  a.where = where;
  a.event = events_;
  a.locks = held_[t];
  return a;
}

void LocksetDetector::on_access(ThreadId t, const std::string& var, AccessKind kind,
                                const std::string& where) {
  std::scoped_lock guard(mutex_);
  check_thread(t);
  ++events_;
  const NameId id = var_names_.id(var);
  if (id >= vars_.size()) vars_.resize(id + 1);
  VarState& v = vars_[id];
  const Access access = make_access(t, kind, site_names_.id(where));

  // The older endpoint of a potential report: the most recent access by
  // a *different* thread.
  const Access* prev = nullptr;
  if (v.last.valid && v.last.thread != t) {
    prev = &v.last;
  } else if (v.last_other.valid && v.last_other.thread != t) {
    prev = &v.last_other;
  }

  switch (v.state) {
    case State::Virgin:
      v.state = State::Exclusive;
      v.owner = t;
      break;
    case State::Exclusive:
      if (t != v.owner) {
        // Second thread: the candidate lockset starts as the locks held
        // right now, then only ever shrinks.
        v.lockset = access.locks;
        std::sort(v.lockset.begin(), v.lockset.end());
        v.state = kind == AccessKind::Write ? State::SharedModified : State::Shared;
      }
      break;
    case State::Shared:
    case State::SharedModified: {
      std::vector<NameId> now = access.locks;
      std::sort(now.begin(), now.end());
      intersect(v.lockset, now);
      if (kind == AccessKind::Write) v.state = State::SharedModified;
      break;
    }
  }

  if (v.state == State::SharedModified && v.lockset.empty() && prev != nullptr) {
    ++race_count_;
    report(id, *prev, access);
  }

  if (v.last.valid && v.last.thread != t) v.last_other = v.last;
  v.last = access;
}

AccessSite LocksetDetector::materialize(const Access& access) const {
  AccessSite site;
  site.thread = access.thread;
  site.kind = access.kind;
  site.where = site_names_.name(access.where);
  site.event = access.event;
  site.locks_held.reserve(access.locks.size());
  for (const NameId l : access.locks) site.locks_held.push_back(lock_names_.name(l));
  return site;
}

void LocksetDetector::report(NameId var, const Access& first, const Access& second) {
  const std::string& variable = var_names_.name(var);
  AccessSite first_site = materialize(first);
  AccessSite second_site = materialize(second);
  if (!reported_.insert(race_pair_key(variable, first_site, second_site)).second) {
    return;  // one report per (variable, site pair)
  }
  std::ostringstream why;
  why << "locking discipline violated: the candidate lockset of `" << variable
      << "` is empty — no single lock protected every shared access (Eraser sees "
         "no fork/join/barrier/channel order, so consistent locking is the only "
         "discipline it can credit)";
  RaceReport r;
  r.variable = variable;
  r.explanation = why.str();
  r.first = std::move(first_site);
  r.second = std::move(second_site);
  races_.push_back(std::move(r));
}

const std::vector<RaceReport>& LocksetDetector::races() const {
  std::scoped_lock lock(mutex_);
  return races_;
}

bool LocksetDetector::race_free() const {
  std::scoped_lock lock(mutex_);
  return races_.empty();
}

std::uint64_t LocksetDetector::race_count() const {
  std::scoped_lock lock(mutex_);
  return race_count_;
}

std::uint64_t LocksetDetector::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t LocksetDetector::threads() const {
  std::scoped_lock lock(mutex_);
  return held_.size();
}

std::size_t LocksetDetector::shadow_bytes() const {
  std::scoped_lock lock(mutex_);
  std::size_t bytes = held_.size() * sizeof(std::vector<NameId>);
  for (const auto& h : held_) bytes += h.capacity() * sizeof(NameId);
  bytes += vars_.size() * sizeof(VarState);
  for (const VarState& v : vars_) {
    bytes += v.lockset.capacity() * sizeof(NameId);
    bytes += v.last.locks.capacity() * sizeof(NameId);
    bytes += v.last_other.locks.capacity() * sizeof(NameId);
  }
  bytes += var_names_.bytes() + lock_names_.bytes() + site_names_.bytes();
  return bytes;
}

std::string LocksetDetector::summary() const {
  std::scoped_lock lock(mutex_);
  std::ostringstream out;
  if (races_.empty()) {
    out << "lockset: no locking-discipline violations in " << events_ << " events across "
        << held_.size() << " threads\n";
    return out.str();
  }
  out << "lockset: " << races_.size() << " violation(s) (" << race_count_
      << " flagged accesses) in " << events_ << " events:\n";
  for (const RaceReport& r : races_) out << r.to_string() << '\n';
  return out.str();
}

std::vector<std::string> LocksetDetector::candidate_lockset(const std::string& var) const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  // Read-only probe: an unknown variable has no lockset yet.
  for (NameId id = 0; id < vars_.size(); ++id) {
    if (var_names_.name(id) == var) {
      for (const NameId l : vars_[id].lockset) out.push_back(lock_names_.name(l));
      return out;
    }
  }
  return out;
}

bool LocksetDetector::lockset_defined(const std::string& var) const {
  std::scoped_lock lock(mutex_);
  for (NameId id = 0; id < vars_.size(); ++id) {
    if (var_names_.name(id) == var) {
      return vars_[id].state == State::Shared || vars_[id].state == State::SharedModified;
    }
  }
  return false;
}

}  // namespace cs31::race
