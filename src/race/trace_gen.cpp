#include "race/trace_gen.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace cs31::race {
namespace {

/// splitmix64 (Steele, Lea & Flood) — tiny, well-mixed, and identical
/// on every platform, which std's distributions are not.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); 0 when bound == 0.
  std::uint32_t below(std::uint32_t bound) {
    return bound == 0 ? 0 : static_cast<std::uint32_t>(next() % bound);
  }

 private:
  std::uint64_t state_;
};

const char* kind_name(TraceOp::Kind kind) {
  switch (kind) {
    case TraceOp::Kind::Fork: return "fork";
    case TraceOp::Kind::Join: return "join";
    case TraceOp::Kind::Acquire: return "lock";
    case TraceOp::Kind::Release: return "unlock";
    case TraceOp::Kind::Read: return "read";
    case TraceOp::Kind::Write: return "write";
    case TraceOp::Kind::Send: return "send";
    case TraceOp::Kind::Recv: return "recv";
    case TraceOp::Kind::Barrier: return "barrier";
  }
  return "?";
}

char object_prefix(TraceOp::Kind kind) {
  switch (kind) {
    case TraceOp::Kind::Acquire:
    case TraceOp::Kind::Release: return 'm';
    case TraceOp::Kind::Send:
    case TraceOp::Kind::Recv: return 'q';
    case TraceOp::Kind::Read:
    case TraceOp::Kind::Write: return 'v';
    default: return 't';  // Fork/Join name a thread
  }
}

}  // namespace

std::string TraceOp::to_string() const {
  std::ostringstream out;
  out << 't' << actor << ' ' << kind_name(kind);
  if (kind == Kind::Barrier) {
    out << " {";
    for (std::size_t i = 0; i < waiters.size(); ++i) {
      if (i > 0) out << ", ";
      out << 't' << waiters[i];
    }
    out << '}';
  } else {
    out << ' ' << object_prefix(kind) << object;
  }
  return out.str();
}

std::string Trace::to_string() const {
  std::ostringstream out;
  out << "# seed=" << seed << " ops=" << ops.size() << " threads=" << threads << '\n';
  for (std::size_t i = 0; i < ops.size(); ++i) {
    out << '#' << i << ": " << ops[i].to_string() << '\n';
  }
  return out.str();
}

Trace generate_trace(std::uint64_t seed, TraceGenConfig config) {
  require(config.max_threads >= 1, "trace_gen: need at least the root thread");
  require(config.vars >= 1, "trace_gen: need at least one variable");
  SplitMix64 rng(seed);

  Trace trace;
  trace.seed = seed;
  trace.config = config;

  std::vector<std::uint32_t> live = {0};
  std::vector<std::vector<std::uint32_t>> held(config.max_threads);
  std::uint32_t total = 1;

  // Weighted op menu: reads/writes dominate (they are what detectors
  // disagree about), synchronization is frequent enough that many
  // accesses end up ordered, and fork/join keep the tree churning.
  enum class Pick { Read, Write, Acquire, Release, Fork, Join, Send, Recv, Barrier };
  struct Weighted {
    Pick pick;
    std::uint32_t weight;
  };
  const Weighted menu[] = {
      {Pick::Read, 28}, {Pick::Write, 22}, {Pick::Acquire, 10}, {Pick::Release, 10},
      {Pick::Fork, 6},  {Pick::Join, 4},   {Pick::Send, 6},     {Pick::Recv, 6},
      {Pick::Barrier, 8},
  };
  std::uint32_t total_weight = 0;
  for (const Weighted& w : menu) total_weight += w.weight;

  while (trace.ops.size() < config.ops) {
    const std::uint32_t actor = live[rng.below(static_cast<std::uint32_t>(live.size()))];
    std::uint32_t roll = rng.below(total_weight);
    Pick pick = Pick::Read;
    for (const Weighted& w : menu) {
      if (roll < w.weight) {
        pick = w.pick;
        break;
      }
      roll -= w.weight;
    }

    TraceOp op;
    op.actor = actor;
    switch (pick) {
      case Pick::Read:
      case Pick::Write:
        op.kind = pick == Pick::Read ? TraceOp::Kind::Read : TraceOp::Kind::Write;
        op.object = rng.below(static_cast<std::uint32_t>(config.vars));
        break;
      case Pick::Acquire: {
        if (config.locks == 0 || held[actor].size() >= config.max_locks_held) continue;
        op.kind = TraceOp::Kind::Acquire;
        op.object = rng.below(static_cast<std::uint32_t>(config.locks));
        held[actor].push_back(op.object);
        break;
      }
      case Pick::Release: {
        if (held[actor].empty()) continue;
        const std::uint32_t idx =
            rng.below(static_cast<std::uint32_t>(held[actor].size()));
        op.kind = TraceOp::Kind::Release;
        op.object = held[actor][idx];
        held[actor].erase(held[actor].begin() + idx);
        break;
      }
      case Pick::Fork: {
        if (total >= config.max_threads) continue;
        op.kind = TraceOp::Kind::Fork;
        op.object = total;
        live.push_back(total);
        ++total;
        break;
      }
      case Pick::Join: {
        // Joinable: live, not the actor, not the root, holding nothing
        // (so the lock discipline stays clean after it goes dead).
        std::vector<std::uint32_t> candidates;
        for (const std::uint32_t t : live) {
          if (t != actor && t != 0 && held[t].empty()) candidates.push_back(t);
        }
        if (candidates.empty()) continue;
        const std::uint32_t child =
            candidates[rng.below(static_cast<std::uint32_t>(candidates.size()))];
        op.kind = TraceOp::Kind::Join;
        op.object = child;
        live.erase(std::find(live.begin(), live.end(), child));
        break;
      }
      case Pick::Send:
      case Pick::Recv:
        if (config.channels == 0) continue;
        op.kind = pick == Pick::Send ? TraceOp::Kind::Send : TraceOp::Kind::Recv;
        op.object = rng.below(static_cast<std::uint32_t>(config.channels));
        break;
      case Pick::Barrier: {
        if (live.size() < 2) continue;
        // A barrier cycle among a shuffled subset of >= 2 live threads.
        std::vector<std::uint32_t> pool = live;
        for (std::size_t i = pool.size() - 1; i > 0; --i) {
          std::swap(pool[i], pool[rng.below(static_cast<std::uint32_t>(i + 1))]);
        }
        const std::uint32_t size =
            2 + rng.below(static_cast<std::uint32_t>(pool.size() - 1));
        pool.resize(size);
        op.kind = TraceOp::Kind::Barrier;
        op.waiters = std::move(pool);
        break;
      }
    }
    trace.ops.push_back(std::move(op));
  }

  trace.threads = total;
  return trace;
}

void run_trace(const Trace& trace, EventSink& sink) {
  std::vector<ThreadId> tid(trace.threads, 0);
  tid[0] = 0;  // the sink pre-registers its root thread
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const TraceOp& op = trace.ops[i];
    require(op.actor < tid.size(), "trace op " + std::to_string(i) + ": bad actor");
    const ThreadId actor = tid[op.actor];
    switch (op.kind) {
      case TraceOp::Kind::Fork:
        require(op.object < tid.size(), "trace op " + std::to_string(i) + ": bad child");
        tid[op.object] = sink.fork(actor);
        break;
      case TraceOp::Kind::Join:
        sink.join(actor, tid[op.object]);
        break;
      case TraceOp::Kind::Acquire:
        sink.acquire(actor, 'm' + std::to_string(op.object));
        break;
      case TraceOp::Kind::Release:
        sink.release(actor, 'm' + std::to_string(op.object));
        break;
      case TraceOp::Kind::Read:
        sink.read(actor, 'v' + std::to_string(op.object), '#' + std::to_string(i));
        break;
      case TraceOp::Kind::Write:
        sink.write(actor, 'v' + std::to_string(op.object), '#' + std::to_string(i));
        break;
      case TraceOp::Kind::Send:
        sink.channel_send(actor, 'q' + std::to_string(op.object));
        break;
      case TraceOp::Kind::Recv:
        sink.channel_recv(actor, 'q' + std::to_string(op.object));
        break;
      case TraceOp::Kind::Barrier: {
        std::vector<ThreadId> waiters;
        waiters.reserve(op.waiters.size());
        for (const std::uint32_t w : op.waiters) waiters.push_back(tid[w]);
        sink.barrier(waiters);
        break;
      }
    }
  }
}

}  // namespace cs31::race
