// Deterministic replay: run a specific interleaving of per-thread
// operation scripts through the happens-before detector. This fuses two
// CS 31 exercises — "identify the possible outputs of these concurrent
// processes" (cs31::os::all_interleavings) and "find the data race" —
// into one tool: write each thread's ops as a sequence of strings, let
// the interleaving enumerator produce every schedule, and replay each
// through the detector to see which schedules expose which races.
//
// Script grammar (one op per string, thread tag added by tag_threads or
// already present in an interleaved stream):
//   "t<k> read <var>"    read of a shared variable
//   "t<k> write <var>"   write of a shared variable
//   "t<k> lock <m>"      mutex acquire
//   "t<k> unlock <m>"    mutex release
//   "t<k> send <ch>"     producer publish into channel <ch>
//   "t<k> recv <ch>"     consumer take from channel <ch>
//   "t<k> barrier"       this thread arrives at the (single, implicit)
//                        barrier; the HB edge forms when every thread
//                        that ever appears in the schedule has arrived
//
// Replay threads are registered as concurrent roots (no fork edges):
// exactly the model of the homework's already-running processes. Note
// that replay models happens-before edges, not blocking — schedules
// that real mutual exclusion would forbid (two threads "inside" one
// lock at once) are still replayed, which is itself a talking point:
// the enumerator over-approximates, the detector under-approximates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "race/detector.hpp"

namespace cs31::race {

/// Outcome of replaying one interleaving.
struct ReplayResult {
  std::vector<RaceReport> races;
  std::uint64_t events = 0;
  std::vector<std::string> schedule;  ///< the interleaving that was replayed
  [[nodiscard]] bool race_free() const { return races.empty(); }
};

/// Prefix each op of script k with "t<k> " so the interleaving keeps its
/// origin once the enumerator shuffles the streams together.
[[nodiscard]] std::vector<std::vector<std::string>> tag_threads(
    const std::vector<std::vector<std::string>>& scripts);

/// Replay one tagged interleaving (e.g. one element of
/// os::all_interleavings(tag_threads(scripts))). Throws cs31::Error on a
/// malformed op.
[[nodiscard]] ReplayResult replay(const std::vector<std::string>& interleaving);

/// Same, but through a caller-supplied detector implementation — the
/// differential harness replays one schedule into both the FastTrack
/// and the reference detector this way. The sink must be fresh (no
/// prior events); thread tags are registered in tag order.
[[nodiscard]] ReplayResult replay(const std::vector<std::string>& interleaving,
                                  EventSink& sink);

/// Enumerate every interleaving of the scripts (program order preserved
/// per thread) and replay each, streaming schedules one at a time
/// through os::for_each_interleaving (nothing but the results is ever
/// materialized). `limit` bounds the multinomial blow-up with a throw,
/// as in os::all_interleavings — when the space is too big to sweep,
/// use race::Explorer (explore.hpp), which replays one representative
/// per equivalence class under an explicit budget instead.
[[nodiscard]] std::vector<ReplayResult> replay_all_interleavings(
    const std::vector<std::vector<std::string>>& scripts, std::size_t limit = 100000);

/// Counts over a batch of replays — the demo's punchline numbers
/// ("12 of 20 schedules expose the race, all of them the same race").
struct ReplayStats {
  std::size_t schedules = 0;
  std::size_t racy = 0;
  std::size_t distinct = 0;  ///< distinct (variable, site pair) races across the batch
  [[nodiscard]] std::size_t clean() const { return schedules - racy; }
};

[[nodiscard]] ReplayStats summarize(const std::vector<ReplayResult>& results);

/// The batch's distinct races: one representative report per
/// (variable, site pair) — race_pair_key in detector.hpp — across ALL
/// schedules, in first-seen order. 70 schedules all exposing the same
/// unlocked increment collapse to one report here, which is what a
/// student should read, not 70 copies.
[[nodiscard]] std::vector<RaceReport> distinct_races(
    const std::vector<ReplayResult>& results);

}  // namespace cs31::race
