// Deterministic replay: run a specific interleaving of per-thread
// operation scripts through the happens-before detector. This fuses two
// CS 31 exercises — "identify the possible outputs of these concurrent
// processes" (cs31::os::all_interleavings) and "find the data race" —
// into one tool: write each thread's ops as a sequence of strings, let
// the interleaving enumerator produce every schedule, and replay each
// through the detector to see which schedules expose which races.
//
// Script grammar (one op per string, thread tag added by tag_threads or
// already present in an interleaved stream):
//   "t<k> read <var>"    read of a shared variable
//   "t<k> write <var>"   write of a shared variable
//   "t<k> lock <m>"      mutex acquire
//   "t<k> unlock <m>"    mutex release
//   "t<k> send <ch>"     producer publish into channel <ch>
//   "t<k> recv <ch>"     consumer take from channel <ch>
//   "t<k> barrier"       this thread arrives at the (single, implicit)
//                        barrier; the HB edge forms when every thread
//                        that ever appears in the schedule has arrived
//
// Replay threads are registered as concurrent roots (no fork edges):
// exactly the model of the homework's already-running processes. Note
// that by default replay models happens-before edges, not blocking —
// schedules that real mutual exclusion would forbid (two threads
// "inside" one lock at once) are still replayed, which is itself a
// talking point: the enumerator over-approximates, the detector
// under-approximates. ReplayOptions::model_blocking switches real
// semantics on: a lock blocks while the mutex is held (including by
// its own thread — self-deadlock), a recv blocks on an empty channel,
// and a barrier arrival parks the thread until every thread in the
// schedule has arrived. Under blocking, a schedule that tries to run a
// blocked op is INFEASIBLE (result.feasible == false, the prefix
// before the blocked op is what got replayed), and find_deadlocks()
// searches the reachable state space — exactly, via memoized DFS over
// position vectors, no schedule enumeration — for states where some
// thread still has ops but nobody can move.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "race/detector.hpp"

namespace cs31::race {

/// Replay semantics knobs.
struct ReplayOptions {
  /// Model real blocking: lock waits for the holder, recv waits for a
  /// send, a barrier arrival parks its thread until the cycle
  /// completes. Off (the default) keeps the PR 9 behaviour — every
  /// schedule replays in full and only happens-before edges are
  /// modelled.
  bool model_blocking = false;
};

/// Outcome of replaying one interleaving.
struct ReplayResult {
  std::vector<RaceReport> races;
  std::uint64_t events = 0;
  std::vector<std::string> schedule;  ///< the interleaving that was replayed

  /// Blocking mode only: false when the schedule ran an op its thread
  /// was blocked on; `executed` counts the ops that did run (always
  /// schedule.size() when feasible / in non-blocking mode).
  bool feasible = true;
  std::size_t executed = 0;

  [[nodiscard]] bool race_free() const { return races.empty(); }
};

/// Prefix each op of script k with "t<k> " so the interleaving keeps its
/// origin once the enumerator shuffles the streams together.
[[nodiscard]] std::vector<std::vector<std::string>> tag_threads(
    const std::vector<std::vector<std::string>>& scripts);

/// Replay one tagged interleaving (e.g. one element of
/// os::all_interleavings(tag_threads(scripts))). Throws cs31::Error on a
/// malformed op.
[[nodiscard]] ReplayResult replay(const std::vector<std::string>& interleaving,
                                  ReplayOptions options = {});

/// Same, but through a caller-supplied detector implementation — the
/// differential harness replays one schedule into both the FastTrack
/// and the reference detector this way. The sink must be fresh (no
/// prior events); thread tags are registered in tag order.
[[nodiscard]] ReplayResult replay(const std::vector<std::string>& interleaving,
                                  EventSink& sink, ReplayOptions options = {});

/// Enumerate every interleaving of the scripts (program order preserved
/// per thread) and replay each, streaming schedules one at a time
/// through os::for_each_interleaving (nothing but the results is ever
/// materialized). `limit` bounds the multinomial blow-up with a throw,
/// as in os::all_interleavings — when the space is too big to sweep,
/// use race::Explorer (explore.hpp), which replays one representative
/// per equivalence class under an explicit budget instead.
[[nodiscard]] std::vector<ReplayResult> replay_all_interleavings(
    const std::vector<std::vector<std::string>>& scripts, std::size_t limit = 100000);

/// Counts over a batch of replays — the demo's punchline numbers
/// ("12 of 20 schedules expose the race, all of them the same race").
struct ReplayStats {
  std::size_t schedules = 0;
  std::size_t racy = 0;
  std::size_t distinct = 0;  ///< distinct (variable, site pair) races across the batch
  [[nodiscard]] std::size_t clean() const { return schedules - racy; }
};

[[nodiscard]] ReplayStats summarize(const std::vector<ReplayResult>& results);

/// The batch's distinct races: one representative report per
/// (variable, site pair) — race_pair_key in detector.hpp — across ALL
/// schedules, in first-seen order. 70 schedules all exposing the same
/// unlocked increment collapse to one report here, which is what a
/// student should read, not 70 copies.
[[nodiscard]] std::vector<RaceReport> distinct_races(
    const std::vector<ReplayResult>& results);

/// One reachable stuck state under blocking semantics: some thread
/// still has ops, nobody can move. `waiting`/`resources` are parallel
/// — the blocked op of each unfinished thread and what it waits on in
/// the analyze::concur resource spelling ("mutex a", "channel q0",
/// "barrier"); a thread parked inside the barrier reports its barrier
/// op. `witness` is a feasible tagged schedule prefix reaching the
/// state (replayable with model_blocking to confirm).
struct DeadlockState {
  std::vector<std::string> waiting;
  std::vector<std::string> resources;
  std::vector<std::string> witness;

  [[nodiscard]] std::string to_string() const;
};

struct DeadlockSearchResult {
  /// Distinct stuck states (one per position vector), in deterministic
  /// lowest-thread-first DFS discovery order.
  std::vector<DeadlockState> deadlocks;
  std::uint64_t states_visited = 0;
  bool complete = true;  ///< false when max_states bound the search

  [[nodiscard]] bool deadlock_free() const { return deadlocks.empty(); }
};

/// Exact deadlock search under blocking semantics over untagged
/// per-thread scripts (the replay_all_interleavings input shape).
/// Because scripts are straight-line, the entire dynamic state —
/// mutex holders, channel fill, barrier arrivals — is a pure function
/// of the per-thread position vector, so a memoized DFS over position
/// vectors covers every reachable state without enumerating schedules:
/// the state space is at most prod(len_t + 1), not the multinomial.
/// Throws cs31::Error on malformed ops or an unlock with no
/// program-order lock (same validation as Explorer).
[[nodiscard]] DeadlockSearchResult find_deadlocks(
    const std::vector<std::vector<std::string>>& scripts,
    std::size_t max_states = std::size_t{1} << 20);

}  // namespace cs31::race
