#include "race/shadow.hpp"

namespace cs31::race {

TraceContext::TraceContext() {
  // The detector pre-registers thread 0; bind it to the constructing
  // OS thread.
  std::scoped_lock lock(mutex_);
  bindings_[std::this_thread::get_id()] = 0;
}

ThreadId TraceContext::self() const {
  std::scoped_lock lock(mutex_);
  const auto it = bindings_.find(std::this_thread::get_id());
  require(it != bindings_.end(),
          "calling thread is not bound to the trace context (spawn it through the "
          "on_thread_create/bind_self hooks or a traced ThreadTeam)");
  return it->second;
}

ThreadId TraceContext::on_thread_create() { return detector_.fork(self()); }

void TraceContext::bind_self(ThreadId tid) {
  std::scoped_lock lock(mutex_);
  bindings_[std::this_thread::get_id()] = tid;
}

void TraceContext::on_thread_join(ThreadId child) { detector_.join(self(), child); }

void TraceContext::read(const std::string& var, const std::string& where) {
  detector_.read(self(), var, where);
}

void TraceContext::write(const std::string& var, const std::string& where) {
  detector_.write(self(), var, where);
}

void TraceContext::acquire(const std::string& lock) { detector_.acquire(self(), lock); }

void TraceContext::release(const std::string& lock) { detector_.release(self(), lock); }

void TraceContext::send(const std::string& channel) { detector_.channel_send(self(), channel); }

void TraceContext::recv(const std::string& channel) { detector_.channel_recv(self(), channel); }

void TraceContext::read(NameId var, NameId site) { detector_.read(self(), var, site); }

void TraceContext::write(NameId var, NameId site) { detector_.write(self(), var, site); }

void TraceContext::acquire(NameId lock) { detector_.acquire(self(), lock); }

void TraceContext::release(NameId lock) { detector_.release(self(), lock); }

}  // namespace cs31::race
