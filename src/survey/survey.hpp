// The Figure 1 evaluation, simulated (DESIGN.md substitution: we cannot
// survey ~300 human students, so a cohort model stands in). The paper's
// survey asked upper-level students to rate their understanding of PDC
// topics introduced in CS 31 on a Bloom-taxonomy scale:
//   0 do not recognize .. 4 could apply to a problem.
// The paper reports, per topic, the average and median rating, and
// observes that heavily-emphasized topics score at deeper levels while
// everything stays at or above recognition.
//
// The simulator derives each topic's base mastery from the curriculum
// model's emphasis weight, perturbs it per student (ability) and per
// elapsed time since CS 31 (retention decay — "for some of the students
// surveyed, it has been up to two years"), clamps to the 0-4 scale, and
// aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/curriculum.hpp"

namespace cs31::survey {

/// One surveyed topic with its curriculum emphasis.
struct SurveyTopic {
  std::string name;
  core::Emphasis emphasis = core::Emphasis::Cover;
};

/// The topic list of Figure 1 (pulled from the curriculum model).
[[nodiscard]] std::vector<SurveyTopic> figure1_topics();

/// Cohort configuration (defaults match the paper: ~60 students per
/// semester across 5 offerings).
struct CohortConfig {
  unsigned students_per_semester = 60;
  unsigned semesters = 5;
  std::uint32_t seed = 2022;
  double retention_loss_per_semester = 0.18;  ///< rating points forgotten per semester elapsed
  double ability_spread = 0.9;                ///< student-to-student std-dev-ish spread
};

/// Aggregated result for one topic — one bar pair of Figure 1.
struct TopicResult {
  std::string name;
  double average = 0;
  double median = 0;
  std::vector<unsigned> histogram = std::vector<unsigned>(5, 0);  ///< counts of ratings 0..4
};

/// Run the simulated survey over all topics.
[[nodiscard]] std::vector<TopicResult> simulate(const std::vector<SurveyTopic>& topics,
                                                const CohortConfig& config = {});

/// Individual rating model, exposed for property tests: the rating of a
/// student with `ability` in [-1, 1] who took CS 31 `semesters_ago`
/// semesters ago, for a topic with the given emphasis.
[[nodiscard]] unsigned rate_topic(core::Emphasis emphasis, double ability,
                                  unsigned semesters_ago, double retention_loss,
                                  double noise);

/// Render the Figure 1 bar chart as ASCII (one row per topic, bars for
/// average and median).
[[nodiscard]] std::string render_figure1(const std::vector<TopicResult>& results);

}  // namespace cs31::survey
