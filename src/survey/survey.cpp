#include "survey/survey.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace cs31::survey {

std::vector<SurveyTopic> figure1_topics() {
  // The Figure 1 x-axis: the PDC-facing subset of the curriculum's
  // topics, in roughly the course's presentation order.
  static const char* kNames[] = {
      "memory hierarchy", "caching", "locality", "instruction execution",
      "pipelining", "multicore", "process ID", "signals",
      "concurrency", "multithreading", "pthreads",
      "shared memory parallelization", "race conditions", "critical sections",
      "synchronization", "producer-consumer", "deadlock", "speedup",
      "Amdahl's Law",
  };
  const core::Curriculum& course = core::Curriculum::cs31();
  std::vector<SurveyTopic> topics;
  for (const char* name : kNames) {
    topics.push_back(SurveyTopic{name, course.topic(name).emphasis});
  }
  return topics;
}

unsigned rate_topic(core::Emphasis emphasis, double ability, unsigned semesters_ago,
                    double retention_loss, double noise) {
  require(ability >= -1.0 && ability <= 1.0, "ability must be in [-1, 1]");
  require(retention_loss >= 0.0, "retention loss cannot be negative");
  // Base mastery right after CS 31: Mention ~ 2 (can define), Cover ~ 3
  // (can analyze), Emphasize ~ 4 (can apply) — the paper's expectation
  // that heavy topics reach application level and everything reaches
  // recognition.
  const double base = 1.0 + static_cast<double>(static_cast<int>(emphasis));
  double r = base + ability - retention_loss * static_cast<double>(semesters_ago) + noise;
  r = std::clamp(r, 0.0, 4.0);
  return static_cast<unsigned>(std::lround(r));
}

namespace {

/// Deterministic uniform in [0,1).
double uniform(std::uint32_t& state) {
  state = state * 1664525u + 1013904223u;
  return static_cast<double>(state >> 8) / 16777216.0;
}

/// Deterministic roughly-normal in [-1, 1] (sum of uniforms, scaled).
double spread(std::uint32_t& state) {
  const double s = uniform(state) + uniform(state) + uniform(state);
  return std::clamp((s - 1.5) / 1.5, -1.0, 1.0);
}

}  // namespace

std::vector<TopicResult> simulate(const std::vector<SurveyTopic>& topics,
                                  const CohortConfig& config) {
  require(!topics.empty(), "survey needs at least one topic");
  require(config.students_per_semester >= 1 && config.semesters >= 1,
          "cohort must be nonempty");

  std::vector<TopicResult> results;
  results.reserve(topics.size());
  for (const SurveyTopic& t : topics) results.push_back(TopicResult{t.name, 0, 0, {}});
  for (TopicResult& r : results) r.histogram.assign(5, 0);

  std::uint32_t state = config.seed | 1u;
  std::vector<std::vector<unsigned>> ratings(topics.size());

  for (unsigned semester = 0; semester < config.semesters; ++semester) {
    // Older cohorts took CS 31 longer ago ("up to two years" ~ 4 semesters).
    const unsigned semesters_ago = semester % 5;
    for (unsigned s = 0; s < config.students_per_semester; ++s) {
      const double ability = spread(state) * config.ability_spread;
      for (std::size_t i = 0; i < topics.size(); ++i) {
        const double noise = spread(state) * 0.5;
        const unsigned r = rate_topic(topics[i].emphasis, std::clamp(ability, -1.0, 1.0),
                                      semesters_ago, config.retention_loss_per_semester,
                                      noise);
        ratings[i].push_back(r);
        ++results[i].histogram[r];
      }
    }
  }

  for (std::size_t i = 0; i < topics.size(); ++i) {
    std::vector<unsigned>& rs = ratings[i];
    std::sort(rs.begin(), rs.end());
    double sum = 0;
    for (const unsigned r : rs) sum += r;
    results[i].average = sum / static_cast<double>(rs.size());
    const std::size_t mid = rs.size() / 2;
    results[i].median = rs.size() % 2 == 1
                            ? rs[mid]
                            : (static_cast<double>(rs[mid - 1]) + rs[mid]) / 2.0;
  }
  return results;
}

std::string render_figure1(const std::vector<TopicResult>& results) {
  std::ostringstream out;
  out << "Figure 1: self-rated understanding of PDC topics (0..4 Bloom scale)\n";
  out << std::string(72, '-') << '\n';
  for (const TopicResult& r : results) {
    out << r.name;
    for (std::size_t i = r.name.size(); i < 32; ++i) out << ' ';
    const int avg_bar = static_cast<int>(std::lround(r.average * 8));
    out << "avg " << std::fixed;
    out.precision(2);
    out << r.average << " |";
    for (int i = 0; i < avg_bar; ++i) out << '#';
    out << "\n";
    for (std::size_t i = 0; i < 32; ++i) out << ' ';
    const int med_bar = static_cast<int>(std::lround(r.median * 8));
    out << "med " << r.median << " |";
    for (int i = 0; i < med_bar; ++i) out << '=';
    out << "\n";
  }
  return out.str();
}

}  // namespace cs31::survey
