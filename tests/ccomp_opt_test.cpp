// Optimizer tests: specific rewrites, side-effect safety, dead-branch
// elimination, instruction-count wins, and — the decisive check — the
// differential property that optimized and unoptimized binaries agree
// on random programs.
#include <gtest/gtest.h>

#include "ccomp/codegen.hpp"
#include "ccomp/optimizer.hpp"
#include "ccomp/parser.hpp"
#include "isa/machine.hpp"

namespace cs31::cc {
namespace {

std::size_t optimize_source(const std::string& source, ProgramAst* out = nullptr) {
  ProgramAst program = parse(source);
  const std::size_t n = optimize(program);
  if (out != nullptr) *out = std::move(program);
  return n;
}

const Expr& return_expr(const ProgramAst& p) {
  for (const Function& fn : p.functions) {
    if (fn.name == "main") {
      const Stmt& last = *fn.body.back();
      EXPECT_EQ(last.kind, Stmt::Kind::Return);
      return *last.expr;
    }
  }
  ADD_FAILURE() << "no main";
  return *p.functions[0].body.back()->expr;
}

TEST(Optimizer, FoldsConstantArithmetic) {
  ProgramAst p;
  EXPECT_GT(optimize_source("int main() { return 2 + 3 * 4; }", &p), 0u);
  EXPECT_EQ(return_expr(p).kind, Expr::Kind::IntLit);
  EXPECT_EQ(return_expr(p).value, 14);
}

TEST(Optimizer, FoldsNestedAndUnary) {
  ProgramAst p;
  optimize_source("int main() { return -(1 + 2) * (3 - 5) + !0; }", &p);
  EXPECT_EQ(return_expr(p).kind, Expr::Kind::IntLit);
  EXPECT_EQ(return_expr(p).value, 7);
}

TEST(Optimizer, AlgebraicIdentities) {
  ProgramAst p;
  optimize_source("int main(int x) { return (x + 0) * 1 - 0; }", &p);
  EXPECT_EQ(return_expr(p).kind, Expr::Kind::Var) << "whole chain collapsed to x";
}

TEST(Optimizer, StrengthReducesPowerOfTwoMultiply) {
  ProgramAst p;
  optimize_source("int main(int x) { return x * 8; }", &p);
  EXPECT_EQ(return_expr(p).kind, Expr::Kind::Binary);
  EXPECT_EQ(return_expr(p).bin_op, BinOp::Shl);
  EXPECT_EQ(return_expr(p).rhs->value, 3);
  // Commuted form too.
  ProgramAst q;
  optimize_source("int main(int x) { return 16 * x; }", &q);
  EXPECT_EQ(return_expr(q).bin_op, BinOp::Shl);
  EXPECT_EQ(return_expr(q).rhs->value, 4);
  // Non-powers stay multiplications.
  ProgramAst r;
  optimize_source("int main(int x) { return x * 6; }", &r);
  EXPECT_EQ(return_expr(r).bin_op, BinOp::Mul);
}

TEST(Optimizer, MulByZeroRespectsSideEffects) {
  // x = f() must still run even though the product is 0.
  ProgramAst p;
  optimize_source(
      "int f() { return 1; } int main(int x) { return f() * 0; }", &p);
  EXPECT_EQ(return_expr(p).kind, Expr::Kind::Binary) << "call kept";
  // Pure operand: folds away.
  ProgramAst q;
  optimize_source("int main(int x) { return (x + 1) * 0; }", &q);
  EXPECT_EQ(return_expr(q).kind, Expr::Kind::IntLit);
  EXPECT_EQ(return_expr(q).value, 0);
  // And the behaviour matches at runtime either way.
  EXPECT_EQ(run_mini_c("int f() { return 1; } int main() { return f() * 0; }", {}, true),
            0);
}

TEST(Optimizer, DeadBranchesEliminated) {
  ProgramAst p;
  EXPECT_GT(optimize_source(
                "int main() { if (1) return 4; else return 5; }", &p),
            0u);
  EXPECT_EQ(p.functions[0].body[0]->kind, Stmt::Kind::Return);
  ProgramAst q;
  optimize_source("int main() { while (0) { return 9; } return 3; }", &q);
  EXPECT_EQ(q.functions[0].body[0]->kind, Stmt::Kind::Block);
  EXPECT_TRUE(q.functions[0].body[0]->body.empty());
}

TEST(Optimizer, IdempotentAfterFixedPoint) {
  ProgramAst p = parse("int main(int x) { return (2 + 3) * x * 4 + (0 && x); }");
  EXPECT_GT(optimize(p), 0u);
  EXPECT_EQ(optimize(p), 0u) << "second run finds nothing";
}

TEST(Optimizer, ShrinksGeneratedCode) {
  const std::string source =
      "int main(int x) { return (10 * 10 + 5) * 1 + x * 32 + (3 < 4); }";
  const std::string plain = compile_to_assembly(source, false);
  const std::string optimized = compile_to_assembly(source, true);
  const auto count_lines = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n');
  };
  EXPECT_LT(count_lines(optimized), count_lines(plain));
  EXPECT_NE(optimized.find("shll"), std::string::npos) << "x * 32 became a shift";
}

TEST(Optimizer, OptimizedProgramsStillRunCorrectly) {
  const struct {
    const char* source;
    std::vector<std::int32_t> args;
    std::int32_t expected;
  } cases[] = {
      {"int main(int x) { return x * 8 + 2 * 3; }", {5}, 46},
      {"int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } "
       "int main() { return fact(5 + 1); }",
       {}, 720},
      {"int main(int n) { int s = 0; for (int i = 0; i < n * 4; i = i + 1) "
       "s = s + 1; return s; }",
       {4}, 16},
      {"int main() { if (2 > 3) { return 1; } return 0 || 7; }", {}, 1},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(run_mini_c(c.source, c.args, true), c.expected) << c.source;
    EXPECT_EQ(run_mini_c(c.source, c.args, false), c.expected) << c.source;
  }
}

TEST(Optimizer, DifferentialAgainstUnoptimizedOnRandomPrograms) {
  // Reuse the fuzz generator idea in miniature: random arithmetic over
  // x with all operators, both pipelines must agree.
  std::uint32_t state = 99;
  auto rnd = [&](std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  };
  static const char* kOps[] = {"+", "-", "*", "&", "|", "^", "<", ">=", "==", "&&", "||"};
  for (int trial = 0; trial < 60; ++trial) {
    std::string expr = "x";
    for (int i = 0; i < 5; ++i) {
      expr = "(" + expr + " " + kOps[rnd(11)] + " " +
             std::to_string(static_cast<std::int32_t>(rnd(64))) + ")";
    }
    const std::string source = "int main(int x) { return " + expr + "; }";
    const std::int32_t x = static_cast<std::int32_t>(rnd(200)) - 100;
    ASSERT_EQ(run_mini_c(source, {x}, false), run_mini_c(source, {x}, true))
        << source << " x=" << x;
  }
}

}  // namespace
}  // namespace cs31::cc
