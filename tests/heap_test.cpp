// Heap allocator and memcheck tests: block mechanics, split/coalesce,
// placement policies, accounting, the classic Valgrind-detectable bugs,
// and a randomized-workload property test over the invariant checker.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "heap/allocator.hpp"
#include "heap/memcheck.hpp"

namespace cs31::heap {
namespace {

TEST(Heap, ConstructionValidation) {
  EXPECT_THROW(Heap(32), Error);
  EXPECT_THROW(Heap(1u << 31), Error);
  EXPECT_THROW(Heap(100), Error);  // unaligned
  EXPECT_NO_THROW(Heap(1024));
}

TEST(Heap, MallocReturnsAlignedDistinctAddresses) {
  Heap heap(1024);
  const std::uint32_t a = heap.malloc(10);
  const std::uint32_t b = heap.malloc(20);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a % 4, 0u);  // payload starts after a 4-byte header
  EXPECT_EQ(heap.allocation_size(a), 16u) << "rounded up to 8-byte multiple";
  EXPECT_EQ(heap.allocation_size(b), 24u);
  EXPECT_THROW((void)heap.malloc(0), Error);
}

TEST(Heap, WritesDoNotBleedBetweenBlocks) {
  Heap heap(1024);
  const std::uint32_t a = heap.malloc(8);
  const std::uint32_t b = heap.malloc(8);
  for (int i = 0; i < 8; ++i) heap.write8(a + i, 0xAA);
  for (int i = 0; i < 8; ++i) heap.write8(b + i, 0x55);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(heap.read8(a + i), 0xAA);
    EXPECT_EQ(heap.read8(b + i), 0x55);
  }
}

TEST(Heap, OutOfMemoryReturnsNull) {
  Heap heap(128);  // 120 usable
  EXPECT_NE(heap.malloc(64), 0u);
  EXPECT_EQ(heap.malloc(64), 0u);
  EXPECT_EQ(heap.stats().failed_allocations, 1u);
}

TEST(Heap, FreeMakesSpaceReusable) {
  Heap heap(192);  // 184 usable: fits one 104-byte block, not two
  const std::uint32_t a = heap.malloc(100);
  EXPECT_EQ(heap.malloc(100), 0u);
  heap.free(a);
  EXPECT_NE(heap.malloc(100), 0u);
}

TEST(Heap, CoalescingMergesNeighbors) {
  Heap heap(1024);
  const std::uint32_t a = heap.malloc(56);
  const std::uint32_t b = heap.malloc(56);
  const std::uint32_t c = heap.malloc(56);
  (void)b;
  // Free a and c (non-adjacent), then b: all three must merge with the
  // trailing free space into one block.
  heap.free(a);
  heap.free(c);
  heap.free(heap.is_allocated(b) ? b : a);
  const HeapStats s = heap.stats();
  EXPECT_EQ(s.free_blocks, 1u);
  EXPECT_EQ(s.largest_free_block, s.free_bytes);
  EXPECT_TRUE(heap.check_invariants());
}

TEST(Heap, DoubleFreeAndInvalidFreeThrow) {
  Heap heap(256);
  const std::uint32_t a = heap.malloc(16);
  heap.free(a);
  EXPECT_THROW(heap.free(a), Error);
  EXPECT_THROW(heap.free(a + 4), Error);
  EXPECT_THROW(heap.free(9999), Error);
}

TEST(Heap, UseAfterFreeAndWildAccessesThrow) {
  Heap heap(256);
  const std::uint32_t a = heap.malloc(16);
  heap.write8(a, 1);
  heap.free(a);
  EXPECT_THROW((void)heap.read8(a), Error);
  EXPECT_THROW(heap.write8(a, 2), Error);
  Heap heap2(256);
  const std::uint32_t b = heap2.malloc(8);
  EXPECT_THROW((void)heap2.read8(b + 8), Error) << "one past the end";
}

TEST(Heap, StatsTrackUsageAndPeak) {
  Heap heap(1024);
  const std::uint32_t a = heap.malloc(64);
  const std::uint32_t b = heap.malloc(128);
  EXPECT_EQ(heap.stats().bytes_in_use, 192u);
  heap.free(a);
  EXPECT_EQ(heap.stats().bytes_in_use, 128u);
  EXPECT_EQ(heap.stats().peak_bytes_in_use, 192u);
  heap.free(b);
  EXPECT_EQ(heap.stats().bytes_in_use, 0u);
  EXPECT_EQ(heap.stats().allocations, 2u);
  EXPECT_EQ(heap.stats().frees, 2u);
}

TEST(Heap, BestFitPrefersTightHoles) {
  // Carve a small hole and a big hole; best fit should place a small
  // request in the small hole, first fit in the first (big) one.
  auto carve = [](Heap& heap, std::uint32_t& small_addr) {
    const std::uint32_t big = heap.malloc(256);
    const std::uint32_t sep1 = heap.malloc(8);
    const std::uint32_t small = heap.malloc(16);
    const std::uint32_t sep2 = heap.malloc(8);
    (void)sep1;
    (void)sep2;
    heap.free(big);    // big hole first in address order
    heap.free(small);  // then a 16-byte hole
    small_addr = small;
  };
  Heap first(1024, FitPolicy::FirstFit);
  Heap best(1024, FitPolicy::BestFit);
  std::uint32_t small_first = 0, small_best = 0;
  carve(first, small_first);
  carve(best, small_best);
  EXPECT_NE(first.malloc(16), small_first) << "first fit grabs the big early hole";
  EXPECT_EQ(best.malloc(16), small_best) << "best fit reuses the tight hole";
}

TEST(Heap, NextFitRotatesPlacements) {
  Heap heap(4096, FitPolicy::NextFit);
  const std::uint32_t a = heap.malloc(32);
  const std::uint32_t b = heap.malloc(32);
  heap.free(a);
  // Next fit resumes after b, so a's hole is skipped...
  const std::uint32_t c = heap.malloc(32);
  EXPECT_GT(c, b);
  // ...until the scan wraps around.
  std::uint32_t last = c;
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t p = heap.malloc(32);
    if (p == 0) break;
    last = p;
  }
  (void)last;
  EXPECT_TRUE(heap.check_invariants());
}

TEST(Heap, DumpShowsBlockList) {
  Heap heap(256);
  (void)heap.malloc(16);
  const std::string dump = heap.dump();
  EXPECT_NE(dump.find("allocated"), std::string::npos);
  EXPECT_NE(dump.find("free"), std::string::npos);
}

// Randomized workload property: after any malloc/free sequence, the
// block list is structurally sound and fully coalesced.
class HeapWorkload
    : public ::testing::TestWithParam<std::tuple<FitPolicy, std::uint32_t>> {};

TEST_P(HeapWorkload, InvariantsHoldUnderRandomChurn) {
  const auto [policy, seed] = GetParam();
  Heap heap(8192, policy);
  std::vector<std::uint32_t> live;
  std::uint32_t state = seed | 1u;
  auto rnd = [&] {
    state = state * 1664525u + 1013904223u;
    return state >> 8;
  };
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rnd() % 2 == 0) {
      const std::uint32_t address = heap.malloc(1 + rnd() % 200);
      if (address != 0) live.push_back(address);
    } else {
      const std::size_t victim = rnd() % live.size();
      heap.free(live[victim]);
      live.erase(live.begin() + static_cast<long>(victim));
    }
    ASSERT_TRUE(heap.check_invariants()) << "step " << step;
  }
  for (const std::uint32_t address : live) heap.free(address);
  const HeapStats s = heap.stats();
  EXPECT_EQ(s.bytes_in_use, 0u);
  EXPECT_EQ(s.free_blocks, 1u) << "full coalescing back to one block";
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, HeapWorkload,
    ::testing::Combine(::testing::Values(FitPolicy::FirstFit, FitPolicy::BestFit,
                                         FitPolicy::NextFit),
                       ::testing::Values(1u, 7u, 99u)));

// ---- memcheck ----

TEST(MemCheck, CleanRunReportsNoLeaks) {
  MemCheck mc(1024);
  const std::uint32_t a = mc.alloc(32, "setup");
  mc.write8(a, 7);
  EXPECT_EQ(mc.read8(a), 7);
  mc.release(a);
  const LeakReport r = mc.report();
  EXPECT_TRUE(r.clean());
  EXPECT_NE(mc.render_report().find("no leaks are possible"), std::string::npos);
}

TEST(MemCheck, LeaksAttributedToCallSites) {
  MemCheck mc(1024);
  (void)mc.alloc(16, "parse_grid");
  (void)mc.alloc(48, "read_line");
  const std::uint32_t freed = mc.alloc(8, "temp");
  mc.release(freed);
  const LeakReport r = mc.report();
  EXPECT_EQ(r.leaked_blocks, 2u);
  EXPECT_EQ(r.leaked_bytes, 16u + 48u);
  const std::string text = mc.render_report();
  EXPECT_NE(text.find("definitely lost: 64 bytes in 2 block(s)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("parse_grid"), std::string::npos);
  EXPECT_EQ(text.find("temp"), std::string::npos) << "freed allocation is not a leak";
}

TEST(MemCheck, DoubleFreeBecomesDiagnostic) {
  MemCheck mc(1024);
  const std::uint32_t a = mc.alloc(16, "once");
  mc.release(a);
  mc.release(a);  // no throw
  const LeakReport r = mc.report();
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.diagnostics[0].kind, Diagnostic::Kind::DoubleFree);
  EXPECT_EQ(r.diagnostics[0].label, "once");
}

TEST(MemCheck, InvalidFreeAndAccessDiagnostics) {
  MemCheck mc(1024);
  mc.release(12345);
  const std::uint32_t a = mc.alloc(8, "buf");
  (void)mc.read8(a + 8);   // one past the end
  mc.write8(a + 8, 1);
  mc.release(a);
  (void)mc.read8(a);       // use after free
  const LeakReport r = mc.report();
  ASSERT_EQ(r.diagnostics.size(), 4u);
  EXPECT_EQ(r.diagnostics[0].kind, Diagnostic::Kind::InvalidFree);
  EXPECT_EQ(r.diagnostics[1].kind, Diagnostic::Kind::InvalidRead);
  EXPECT_EQ(r.diagnostics[2].kind, Diagnostic::Kind::InvalidWrite);
  EXPECT_EQ(r.diagnostics[3].kind, Diagnostic::Kind::InvalidRead);
  EXPECT_FALSE(r.clean());
}

TEST(MemCheck, AddressReuseIsNotADoubleFree) {
  MemCheck mc(256);
  const std::uint32_t a = mc.alloc(16, "first");
  mc.release(a);
  const std::uint32_t b = mc.alloc(16, "second");
  EXPECT_EQ(a, b) << "first fit reuses the hole";
  mc.release(b);
  EXPECT_TRUE(mc.report().clean());
}

}  // namespace
}  // namespace cs31::heap
