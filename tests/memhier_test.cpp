// Cache simulator, hierarchy, and trace/locality tests — the machinery
// behind the caching homeworks and the stride experiment (E4).
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "memhier/cache.hpp"
#include "memhier/hierarchy.hpp"
#include "memhier/trace.hpp"

namespace cs31::memhier {
namespace {

CacheConfig dm(std::uint32_t block, std::uint32_t lines) {
  CacheConfig c;
  c.block_bytes = block;
  c.num_lines = lines;
  c.associativity = 1;
  return c;
}

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(Cache(dm(3, 4)), Error);    // non power-of-two block
  EXPECT_THROW(Cache(dm(16, 3)), Error);   // non power-of-two lines
  CacheConfig c = dm(16, 4);
  c.associativity = 3;                     // does not divide lines
  EXPECT_THROW(Cache{c}, Error);
  c.associativity = 8;                     // exceeds lines
  EXPECT_THROW(Cache{c}, Error);
}

TEST(Cache, AddressDivisionMatchesHomework) {
  // The classic setup: 16-byte blocks, 64 sets -> offset 4 bits, index 6.
  const Cache cache(dm(16, 64));
  const AddressParts p = cache.split(0x1234ABCD);
  EXPECT_EQ(p.offset_bits, 4);
  EXPECT_EQ(p.index_bits, 6);
  EXPECT_EQ(p.tag_bits, 22);
  EXPECT_EQ(p.offset, 0x1234ABCDu & 0xF);
  EXPECT_EQ(p.index, (0x1234ABCDu >> 4) & 0x3F);
  EXPECT_EQ(p.tag, 0x1234ABCDu >> 10);
}

TEST(Cache, ColdMissThenSpatialHits) {
  Cache cache(dm(16, 4));
  EXPECT_FALSE(cache.read(0x100).hit);
  EXPECT_TRUE(cache.read(0x104).hit);  // same block
  EXPECT_TRUE(cache.read(0x10F).hit);
  EXPECT_FALSE(cache.read(0x110).hit);  // next block
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(Cache, DirectMappedConflictThrashing) {
  // Two addresses that collide in a direct-mapped cache but coexist in
  // a 2-way — the course's associativity motivation.
  Cache direct(dm(16, 4));  // 4 sets: index bits 2
  const std::uint32_t a = 0x000, b = 0x100;  // same index, different tag
  direct.read(a);
  direct.read(b);
  EXPECT_FALSE(direct.read(a).hit) << "b evicted a";

  CacheConfig cfg = dm(16, 4);
  cfg.associativity = 2;
  Cache assoc(cfg);
  assoc.read(a);
  assoc.read(b);
  EXPECT_TRUE(assoc.read(a).hit) << "2-way keeps both";
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  CacheConfig cfg = dm(16, 2);
  cfg.associativity = 2;  // one set, two ways
  Cache cache(cfg);
  cache.read(0x000);  // A
  cache.read(0x010);  // B
  cache.read(0x000);  // touch A: B becomes LRU
  const AccessResult r = cache.read(0x020);  // C evicts B
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(cache.contains(0x000));
  EXPECT_FALSE(cache.contains(0x010));
  EXPECT_TRUE(cache.contains(0x020));
}

TEST(Cache, FifoIgnoresRecency) {
  CacheConfig cfg = dm(16, 2);
  cfg.associativity = 2;
  cfg.replacement = Replacement::Fifo;
  Cache cache(cfg);
  cache.read(0x000);  // A filled first
  cache.read(0x010);  // B
  cache.read(0x000);  // touching A does not help under FIFO
  cache.read(0x020);  // evicts A
  EXPECT_FALSE(cache.contains(0x000));
  EXPECT_TRUE(cache.contains(0x010));
}

TEST(Cache, RandomReplacementIsDeterministicPerSeed) {
  CacheConfig cfg = dm(16, 4);
  cfg.associativity = 4;
  cfg.replacement = Replacement::Random;
  cfg.random_seed = 99;
  Cache a(cfg), b(cfg);
  const Trace t = strided_trace(0, 64, 16);
  replay(a, t);
  replay(b, t);
  EXPECT_EQ(a.stats().hits, b.stats().hits);
}

TEST(Cache, WriteBackDefersMemoryTraffic) {
  Cache cache(dm(16, 2));
  cache.write(0x000);
  EXPECT_TRUE(cache.dirty(0x000));
  EXPECT_EQ(cache.stats().memory_writes, 0u);
  // Evict the dirty line: both 0x020 and 0x000 map to set 0 (2 lines,
  // 16-byte blocks -> index bit 4).
  const AccessResult r = cache.read(0x040);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughWritesEveryStore) {
  CacheConfig cfg = dm(16, 2);
  cfg.write_policy = WritePolicy::WriteThrough;
  Cache cache(cfg);
  cache.write(0x000);
  cache.write(0x000);
  EXPECT_EQ(cache.stats().memory_writes, 2u);
  EXPECT_FALSE(cache.dirty(0x000));
}

TEST(Cache, WriteNoAllocateSkipsFill) {
  CacheConfig cfg = dm(16, 2);
  cfg.write_allocate = false;
  cfg.write_policy = WritePolicy::WriteThrough;
  Cache cache(cfg);
  cache.write(0x000);
  EXPECT_FALSE(cache.contains(0x000));
  EXPECT_EQ(cache.stats().memory_writes, 1u);
}

TEST(Cache, DumpShowsValidAndDirtyBits) {
  Cache cache(dm(16, 2));
  cache.write(0x000);
  const std::string dump = cache.dump();
  EXPECT_NE(dump.find("V D tag"), std::string::npos);
  EXPECT_NE(dump.find("1 1"), std::string::npos);
}

// Geometry sweep: total hit+miss bookkeeping and full-coverage fill.
class CacheSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {};

TEST_P(CacheSweep, SequentialFillHasExactlyOneMissPerBlock) {
  const auto [block, lines, assoc] = GetParam();
  CacheConfig cfg;
  cfg.block_bytes = block;
  cfg.num_lines = lines;
  cfg.associativity = assoc;
  Cache cache(cfg);
  // One pass over exactly the cache's capacity in 4-byte reads.
  const std::uint32_t total = cfg.total_bytes();
  const Trace t = strided_trace(0, total / 4, 4);
  const CacheStats s = replay(cache, t);
  EXPECT_EQ(s.misses, total / block);
  EXPECT_EQ(s.hits, s.accesses - s.misses);
  EXPECT_EQ(s.evictions, 0u) << "working set fits exactly";
  // A second pass is all hits.
  Cache cache2(cfg);
  replay(cache2, t);
  const CacheStats before = cache2.stats();
  replay(cache2, t);
  EXPECT_EQ(cache2.stats().hits - before.hits, t.size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Values(std::tuple{16u, 8u, 1u}, std::tuple{16u, 8u, 2u},
                      std::tuple{32u, 16u, 4u}, std::tuple{64u, 64u, 1u},
                      std::tuple{64u, 64u, 64u},  // fully associative
                      std::tuple{4u, 4u, 2u}));

TEST(Stride, RowMajorBeatsColumnMajor) {
  // The E4 classroom exercise: same work, different stride.
  Cache row_cache(dm(64, 64));
  Cache col_cache(dm(64, 64));
  const std::uint32_t rows = 64, cols = 64;
  const CacheStats row = replay(row_cache, row_major_trace(0, rows, cols));
  const CacheStats col = replay(col_cache, column_major_trace(0, rows, cols));
  EXPECT_GT(row.hit_rate(), 0.9);
  EXPECT_LT(col.hit_rate(), row.hit_rate());
}

TEST(Hierarchy, CanonicalTableOrderedFastToSlow) {
  const std::vector<StorageDevice>& devices = canonical_hierarchy();
  ASSERT_GE(devices.size(), 5u);
  for (std::size_t i = 1; i < devices.size(); ++i) {
    EXPECT_LE(devices[i - 1].latency_ns, devices[i].latency_ns);
    EXPECT_LE(devices[i - 1].capacity_bytes, devices[i].capacity_bytes);
  }
  EXPECT_TRUE(devices.front().primary);
  EXPECT_FALSE(devices.back().primary);
}

TEST(Hierarchy, EffectiveAccessTimeFormula) {
  EXPECT_DOUBLE_EQ(effective_access_ns(1.0, 1.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(effective_access_ns(0.0, 1.0, 100.0), 101.0);
  EXPECT_DOUBLE_EQ(effective_access_ns(0.9, 1.0, 100.0), 11.0);
  EXPECT_THROW((void)effective_access_ns(1.5, 1, 1), Error);
}

TEST(Hierarchy, MultiLevelLatencyAccumulates) {
  MultiLevelCache mlc({{dm(16, 2), 1.0}, {dm(16, 64), 10.0}}, 100.0);
  EXPECT_DOUBLE_EQ(mlc.access(0x0, false), 111.0);  // cold: L1+L2+mem
  EXPECT_DOUBLE_EQ(mlc.access(0x0, false), 1.0);    // L1 hit
  // Evict from tiny L1 but not from L2.
  mlc.access(0x100, false);
  mlc.access(0x200, false);
  EXPECT_DOUBLE_EQ(mlc.access(0x0, false), 11.0);   // L1 miss, L2 hit
  EXPECT_GT(mlc.amat_ns(), 0.0);
}

TEST(Hierarchy, MultiLevelValidation) {
  EXPECT_THROW(MultiLevelCache({}, 100.0), Error);
  EXPECT_THROW(MultiLevelCache({{dm(16, 2), 1.0}}, 0.0), Error);
  MultiLevelCache mlc({{dm(16, 2), 1.0}}, 10.0);
  EXPECT_THROW((void)mlc.level_stats(1), Error);
}

TEST(Hierarchy, WritePathAndClear) {
  MultiLevelCache mlc({{dm(16, 2), 1.0}, {dm(16, 64), 10.0}}, 100.0);
  // Cold write allocates through both levels.
  EXPECT_DOUBLE_EQ(mlc.access(0x0, true), 111.0);
  EXPECT_DOUBLE_EQ(mlc.access(0x0, true), 1.0);
  EXPECT_EQ(mlc.level_stats(0).accesses, 2u);
  mlc.clear();
  EXPECT_DOUBLE_EQ(mlc.amat_ns(), 0.0);
  EXPECT_EQ(mlc.level_stats(0).accesses, 0u);
  EXPECT_DOUBLE_EQ(mlc.access(0x0, false), 111.0) << "cold again after clear";
}

TEST(Cache, ClearResetsLinesAndStats) {
  Cache cache(dm(16, 4));
  cache.write(0x0);
  cache.read(0x100);
  cache.clear();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.contains(0x0));
  EXPECT_FALSE(cache.dirty(0x0));
  EXPECT_FALSE(cache.read(0x0).hit) << "cold after clear";
}

TEST(Traces, GeneratorsProduceExpectedShapes) {
  EXPECT_EQ(row_major_trace(0, 4, 8).size(), 32u);
  EXPECT_EQ(row_major_trace(0, 2, 2)[1].address, 4u);
  EXPECT_EQ(column_major_trace(0, 2, 2)[1].address, 8u);  // strides a row
  EXPECT_EQ(strided_trace(100, 3, 8)[2].address, 116u);
  EXPECT_THROW(strided_trace(0, 1, 0), Error);
  EXPECT_EQ(working_set_trace(0, 64, 2, 4).size(), 32u);
}

TEST(Traces, RandomTraceDeterministicAndBounded) {
  const Trace a = random_trace(1000, 512, 100, 7);
  const Trace b = random_trace(1000, 512, 100, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].address, b[i].address);
    EXPECT_GE(a[i].address, 1000u);
    EXPECT_LT(a[i].address, 1512u);
  }
}

TEST(Locality, SequentialScanIsSpatialNotTemporal) {
  const LocalityReport r = analyze_locality(strided_trace(0, 256, 4), 64);
  EXPECT_GT(r.spatial_fraction, 0.99);
  EXPECT_EQ(r.temporal_reuse_fraction, 0.0);
}

TEST(Locality, RepeatedScanIsTemporal) {
  const LocalityReport r = analyze_locality(working_set_trace(0, 64, 4, 4), 64);
  EXPECT_GT(r.temporal_reuse_fraction, 0.7);  // 3 of 4 passes are reuse
}

TEST(Locality, EmptyTraceIsAllZero) {
  const LocalityReport r = analyze_locality({}, 64);
  EXPECT_EQ(r.temporal_reuse_fraction, 0.0);
  EXPECT_EQ(r.spatial_fraction, 0.0);
}

}  // namespace
}  // namespace cs31::memhier
