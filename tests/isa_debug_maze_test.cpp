// Debugger (GDB workflow) and binary-maze (Lab 5) tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/debugger.hpp"
#include "isa/maze.hpp"

namespace cs31::isa {
namespace {

Machine loaded(const std::string& src) {
  Machine m;
  m.load(assemble(src));
  return m;
}

TEST(Debugger, BreakpointStopsContinue) {
  Machine m = loaded(R"(
    movl $1, %eax
target:
    movl $2, %eax
    hlt
)");
  Debugger dbg(m);
  dbg.break_at("target");
  EXPECT_EQ(dbg.cont(), StopReason::Breakpoint);
  EXPECT_EQ(m.reg(Reg::Eax), 1u) << "stopped before the breakpoint instruction";
  EXPECT_EQ(dbg.cont(), StopReason::Halted);
  EXPECT_EQ(m.reg(Reg::Eax), 2u);
}

TEST(Debugger, StepiExecutesExactlyN) {
  Machine m = loaded("movl $1, %eax\nmovl $2, %ebx\nmovl $3, %ecx\nhlt\n");
  Debugger dbg(m);
  EXPECT_EQ(dbg.stepi(2), StopReason::Step);
  EXPECT_EQ(m.reg(Reg::Ebx), 2u);
  EXPECT_EQ(m.reg(Reg::Ecx), 0u);
}

TEST(Debugger, BreakpointValidation) {
  Machine m = loaded("nop\nhlt\n");
  Debugger dbg(m);
  EXPECT_THROW(dbg.break_at(0u), Error);                 // outside image
  EXPECT_THROW(dbg.break_at(m.image().base + 1), Error); // misaligned
  EXPECT_THROW(dbg.break_at("nope"), Error);
}

TEST(Debugger, InfoRegistersAndExamine) {
  Machine m = loaded("movl $42, %eax\nmovl $42, 0x2000\nhlt\n");
  Debugger dbg(m);
  dbg.cont();
  const std::string regs = dbg.info_registers();
  EXPECT_NE(regs.find("eax"), std::string::npos);
  EXPECT_NE(regs.find("42"), std::string::npos);
  EXPECT_EQ(dbg.examine(0x2000, 1).at(0), 42u);
}

TEST(Debugger, DisasMarksCurrentInstruction) {
  Machine m = loaded("a:\n  movl $1, %eax\nb:\n  hlt\n");
  Debugger dbg(m);
  const std::string listing = dbg.disas();
  EXPECT_NE(listing.find("=>"), std::string::npos);
  EXPECT_NE(listing.find("a:"), std::string::npos);
}

TEST(Debugger, CommandInterpreterDrivesSession) {
  Machine m = loaded(R"(
    movl $7, %eax
spot:
    movl $8, %eax
    hlt
)");
  Debugger dbg(m);
  EXPECT_NE(dbg.execute("break spot").find("Breakpoint"), std::string::npos);
  EXPECT_NE(dbg.execute("c").find("Breakpoint hit"), std::string::npos);
  EXPECT_NE(dbg.execute("print $eax").find("7"), std::string::npos);
  EXPECT_NE(dbg.execute("info registers").find("eip"), std::string::npos);
  (void)dbg.execute("stepi");
  EXPECT_NE(dbg.execute("p $eax").find("8"), std::string::npos);
  EXPECT_THROW((void)dbg.execute("frobnicate"), Error);
  EXPECT_THROW((void)dbg.execute(""), Error);
}

TEST(Debugger, ExamineCommandFormatsWords) {
  Machine m = loaded("movl $1, 0x3000\nmovl $2, 0x3004\nhlt\n");
  Debugger dbg(m);
  dbg.cont();
  const std::string out = dbg.execute("x/2w 0x3000");
  EXPECT_NE(out.find("0x1"), std::string::npos);
  EXPECT_NE(out.find("0x2"), std::string::npos);
}

TEST(Debugger, BacktraceWalksSavedEbpChain) {
  Machine m = loaded(R"(
main:
    pushl %ebp
    movl %esp, %ebp
    call outer
    leave
    hlt
outer:
    pushl %ebp
    movl %esp, %ebp
    call inner
    leave
    ret
inner:
    pushl %ebp
    movl %esp, %ebp
.Lspot:
    nop
    leave
    ret
)");
  Debugger dbg(m);
  dbg.break_at(".Lspot");
  ASSERT_EQ(dbg.cont(), StopReason::Breakpoint);
  const std::vector<Debugger::Frame> frames = dbg.backtrace();
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].function, "inner");
  EXPECT_EQ(frames[1].function, "outer");
  EXPECT_EQ(frames[2].function, "main");
  // Frame pointers grow toward the stack base as we unwind.
  EXPECT_LT(frames[0].ebp, frames[1].ebp);
  EXPECT_LT(frames[1].ebp, frames[2].ebp);
  // The command interpreter renders the same walk.
  const std::string bt = dbg.execute("bt");
  EXPECT_NE(bt.find("#0"), std::string::npos);
  EXPECT_NE(bt.find("outer"), std::string::npos);
  EXPECT_NE(bt.find("main"), std::string::npos);
}

TEST(Debugger, BacktraceOnRecursiveMiniCDepth) {
  // Deep frames via recursion written in assembly (countdown).
  Machine m = loaded(R"(
main:
    pushl %ebp
    movl %esp, %ebp
    movl $5, %eax
    pushl %eax
    call down
    leave
    hlt
down:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    cmpl $0, %eax
    je .Lbottom
    subl $1, %eax
    pushl %eax
    call down
    addl $4, %esp
    leave
    ret
.Lbottom:
    nop
    leave
    ret
)");
  Debugger dbg(m);
  dbg.break_at(".Lbottom");
  ASSERT_EQ(dbg.cont(), StopReason::Breakpoint);
  const auto frames = dbg.backtrace();
  // bottom-of-recursion frame + 6 `down` frames (5..0) + main.
  ASSERT_EQ(frames.size(), 7u);
  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    EXPECT_EQ(frames[i].function, "down") << i;
  }
  EXPECT_EQ(frames.back().function, "main");
}

// ---------- the binary maze ----------

TEST(Maze, SolutionsPassEveryArchetype) {
  const Maze maze(10, 0xBEEF);  // two full cycles of the 5 archetypes
  for (unsigned k = 0; k < maze.floors(); ++k) {
    const AttemptResult r = maze.attempt(k, maze.solution(k));
    EXPECT_TRUE(r.passed) << "floor " << k;
    EXPECT_FALSE(r.exploded) << "floor " << k;
  }
}

TEST(Maze, WrongGuessesExplode) {
  const Maze maze(10, 0xBEEF);
  for (unsigned k = 0; k < maze.floors(); ++k) {
    const AttemptResult r = maze.attempt(k, maze.solution(k) + 1);
    EXPECT_FALSE(r.passed) << "floor " << k;
    EXPECT_TRUE(r.exploded) << "floor " << k;
  }
}

TEST(Maze, DeterministicPerSeedDistinctAcrossSeeds) {
  const Maze a(5, 1), b(5, 1), c(5, 2);
  for (unsigned k = 0; k < 5; ++k) {
    EXPECT_EQ(a.solution(k), b.solution(k));
  }
  bool any_different = false;
  for (unsigned k = 0; k < 5; ++k) {
    any_different = any_different || a.solution(k) != c.solution(k);
  }
  EXPECT_TRUE(any_different);
}

TEST(Maze, PlayCountsConsecutivePasses) {
  const Maze maze(5, 7);
  std::vector<std::uint32_t> guesses;
  for (unsigned k = 0; k < 5; ++k) guesses.push_back(maze.solution(k));
  EXPECT_EQ(maze.play(guesses), 5u);
  guesses[2] += 1;  // fail the third floor
  EXPECT_EQ(maze.play(guesses), 2u);
}

TEST(Maze, SourceIsDisassemblableAndTraceable) {
  const Maze maze(5, 3);
  EXPECT_NE(maze.source().find("floor_0:"), std::string::npos);
  EXPECT_NE(maze.source().find("maze_explode"), std::string::npos);
  // A student workflow: set a breakpoint on floor_0 and step through.
  Machine m;
  m.load(maze.image());
  m.set_reg(Reg::Eip, maze.image().symbol("floor_0"));
  m.set_reg(Reg::Eax, maze.solution(0));
  Debugger dbg(m);
  while (!m.halted()) {
    if (dbg.stepi() == StopReason::Halted) break;
  }
  EXPECT_GE(m.reg(Reg::Eip), maze.image().symbol("maze_pass"));
  EXPECT_LT(m.reg(Reg::Eip), maze.image().symbol("maze_explode"));
}

TEST(Maze, LoopFloorGuardsAgainstHugeInputs) {
  // Archetype 3 sits at floors 3, 8, ...: a huge guess must explode
  // quickly instead of looping ~2^32 times.
  const Maze maze(5, 11);
  const AttemptResult r = maze.attempt(3, 0xFFFFFFFFu);
  EXPECT_TRUE(r.exploded);
  EXPECT_LT(r.instructions, 100u);
}

TEST(Maze, FloorCountValidation) {
  EXPECT_THROW(Maze(0), Error);
  EXPECT_THROW(Maze(17), Error);
  const Maze maze(3);
  EXPECT_THROW((void)maze.attempt(3, 0), Error);
  EXPECT_THROW((void)maze.solution(3), Error);
}

}  // namespace
}  // namespace cs31::isa
