// Golden-trace regression tests for the execution cores: a fixed set
// of workloads (seeded generated programs, a Lab 4 harness, a compiled
// mini-C program) has its per-step architectural state digested on the
// reference switch interpreter and checked into
// tests/data/isa_golden_traces.inc. The suite replays each workload
// step by step and fails at the *first* step whose digest diverges
// from the golden sequence — a pinpoint answer to "which instruction
// changed behavior", where the differential fuzzer only says "these
// two cores disagree somewhere".
//
// The first kRecordedSteps steps are pinned digest-for-digest; the
// remainder of a long run is pinned through a rolling chain value, and
// the final memory image through its own digest. The fast core is then
// spot-checked against the same goldens: run_limited budgets landing
// inside the recorded prefix must reproduce the exact recorded digest
// for that step, and a full run must land on the final digests.
//
// Regenerating after an *intentional* semantics change:
//   CS31_REGEN_GOLDEN=1 ./isa_golden_trace_test && rebuild
// The regen run rewrites the .inc from the switch interpreter and
// skips the assertions; the rebuild bakes the new goldens in.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "ccomp/codegen.hpp"
#include "isa/assembler.hpp"
#include "isa/machine.hpp"
#include "isa/program_gen.hpp"
#include "isa/samples.hpp"

namespace cs31::isa {
namespace {

constexpr std::size_t kRecordedSteps = 512;   // digest-per-step prefix length
constexpr std::size_t kStepCap = 40000;       // runaway guard for golden runs
constexpr std::uint32_t kMemBytes = 1u << 16;

struct GoldenTrace {
  std::string name;
  std::size_t steps = 0;              // steps to halt on the reference core
  std::uint64_t chain = 0;            // all step digests folded in order
  std::uint64_t final_memory = 0;     // memory digest at halt
  std::vector<std::uint64_t> digests;  // per-step digests, first kRecordedSteps
};

// The golden data. Lives in tests/data/ so a diff of the .inc shows up
// in review whenever the ISA's semantics change on purpose.
#include "data/isa_golden_traces.inc"

std::uint64_t fnv64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628762211ULL;
  }
  return h;
}

/// One value summarizing every piece of per-step architectural state.
std::uint64_t state_digest(const Machine& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < 8; ++i) h = fnv64(h, m.reg(static_cast<Reg>(i)));
  h = fnv64(h, m.reg(Reg::Eip));
  const Eflags f = m.flags();
  h = fnv64(h, static_cast<std::uint64_t>(f.cf) | static_cast<std::uint64_t>(f.zf) << 1 |
                   static_cast<std::uint64_t>(f.sf) << 2 | static_cast<std::uint64_t>(f.of) << 3);
  h = fnv64(h, m.instructions_executed());
  h = fnv64(h, m.halted() ? 1 : 0);
  return h;
}

std::uint64_t memory_digest(const Machine& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint32_t addr = 0; addr + 4 <= m.memory_size(); addr += 4) {
    h = fnv64(h, m.load32(addr));
  }
  return h;
}

struct Workload {
  std::string name;
  Image image;
};

std::vector<Workload> workloads() {
  std::vector<Workload> out;
  for (const std::uint64_t seed : {11ull, 222ull, 3333ull}) {
    out.push_back({"gen-" + std::to_string(seed), assemble(generate_program(seed).source)});
  }
  const AsmSample& sum = sample("array_sum");
  out.push_back({"lab4-array_sum",
                 assemble("_start:\n"
                          "    movl $4096, %esi\n"
                          "    movl $5, (%esi)\n"
                          "    movl $12, 4(%esi)\n"
                          "    movl $25, 8(%esi)\n"
                          "    pushl $3\n"
                          "    pushl $4096\n"
                          "    call array_sum\n"
                          "    hlt\n" +
                          sum.source)});
  out.push_back({"minic-fact5", cc::compile_with_entry("int fact(int n) {\n"
                                                       "  if (n < 2) { return 1; }\n"
                                                       "  return n * fact(n - 1);\n"
                                                       "}\n"
                                                       "int main() { return fact(5); }\n",
                                                       {})});
  return out;
}

/// Run the workload on the switch interpreter and record its golden
/// trajectory.
GoldenTrace record(const Workload& w) {
  GoldenTrace g;
  g.name = w.name;
  g.chain = 1469598103934665603ULL;
  Machine m(kMemBytes);
  m.set_core(Machine::Core::Switch);
  m.load(w.image);
  while (!m.halted() && g.steps < kStepCap) {
    m.step();
    ++g.steps;
    const std::uint64_t d = state_digest(m);
    if (g.digests.size() < kRecordedSteps) g.digests.push_back(d);
    g.chain = fnv64(g.chain, d);
  }
  EXPECT_TRUE(m.halted()) << w.name << " must halt within " << kStepCap << " steps";
  g.final_memory = memory_digest(m);
  return g;
}

std::string data_path() {
  std::string path = __FILE__;
  return path.substr(0, path.find_last_of('/')) + "/data/isa_golden_traces.inc";
}

void write_goldens(const std::vector<GoldenTrace>& traces) {
  std::ofstream out(data_path());
  ASSERT_TRUE(out.good()) << "cannot write " << data_path();
  out << "// Golden per-step state digests for the reference switch\n"
         "// interpreter. Generated by isa_golden_trace_test with\n"
         "// CS31_REGEN_GOLDEN=1 — do not edit by hand; regenerate after\n"
         "// any intentional ISA semantics change and review the diff.\n"
         "// clang-format off\n"
         "static const std::vector<GoldenTrace> kGoldenTraces = {\n";
  for (const GoldenTrace& g : traces) {
    out << "    {\"" << g.name << "\", " << g.steps << "u, " << g.chain << "ULL, "
        << g.final_memory << "ULL,\n     {";
    for (std::size_t i = 0; i < g.digests.size(); ++i) {
      if (i != 0 && i % 4 == 0) out << "\n      ";
      out << g.digests[i] << "ULL,";
    }
    out << "}},\n";
  }
  out << "};\n// clang-format on\n";
}

bool regen_requested() { return std::getenv("CS31_REGEN_GOLDEN") != nullptr; }

TEST(GoldenTrace, RegenerateWhenRequested) {
  if (!regen_requested()) GTEST_SKIP() << "set CS31_REGEN_GOLDEN=1 to rewrite the goldens";
  std::vector<GoldenTrace> traces;
  for (const Workload& w : workloads()) traces.push_back(record(w));
  write_goldens(traces);
}

// The reference interpreter must reproduce every recorded step digest,
// in order — the failure message names the workload and the exact step
// where today's machine first diverges from the recorded machine.
TEST(GoldenTrace, SwitchCoreMatchesEveryRecordedStep) {
  if (regen_requested()) GTEST_SKIP() << "regen run";
  const std::vector<Workload> work = workloads();
  ASSERT_EQ(work.size(), kGoldenTraces.size()) << "workload set changed: regenerate goldens";
  for (std::size_t i = 0; i < work.size(); ++i) {
    const GoldenTrace& golden = kGoldenTraces[i];
    ASSERT_EQ(work[i].name, golden.name) << "workload set changed: regenerate goldens";
    Machine m(kMemBytes);
    m.set_core(Machine::Core::Switch);
    m.load(work[i].image);
    std::uint64_t chain = 1469598103934665603ULL;
    std::size_t steps = 0;
    while (!m.halted() && steps < kStepCap) {
      m.step();
      ++steps;
      const std::uint64_t d = state_digest(m);
      if (steps <= golden.digests.size()) {
        ASSERT_EQ(d, golden.digests[steps - 1])
            << golden.name << ": first divergent step is " << steps;
      }
      chain = fnv64(chain, d);
    }
    EXPECT_EQ(steps, golden.steps) << golden.name;
    EXPECT_EQ(chain, golden.chain) << golden.name << ": diverged after the recorded prefix";
    EXPECT_EQ(memory_digest(m), golden.final_memory) << golden.name;
  }
}

// The fast core, stopped by an instruction budget anywhere inside the
// recorded prefix, must land on the exact digest the reference core
// recorded for that step — run_limited's budget-exhaustion points are
// part of the identity contract.
TEST(GoldenTrace, FastCoreHitsRecordedDigestsAtBudgetStops) {
  if (regen_requested()) GTEST_SKIP() << "regen run";
  const std::vector<Workload> work = workloads();
  ASSERT_EQ(work.size(), kGoldenTraces.size()) << "workload set changed: regenerate goldens";
  for (std::size_t i = 0; i < work.size(); ++i) {
    const GoldenTrace& golden = kGoldenTraces[i];
    const std::size_t prefix = golden.digests.size();
    for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{7}, prefix / 3,
                                prefix / 2, prefix - 1, prefix}) {
      if (k < 1 || k > prefix) continue;
      Machine m(kMemBytes);
      m.load(work[i].image);
      ASSERT_EQ(m.core(), Machine::Core::Predecoded);
      const Machine::RunOutcome outcome = m.run_limited({k, 0.0});
      ASSERT_EQ(outcome.instructions, k) << golden.name << " budget=" << k;
      ASSERT_EQ(state_digest(m), golden.digests[k - 1])
          << golden.name << ": fast core diverges at budget stop " << k;
    }
  }
}

// A full fast-core run must land on the reference's final state.
TEST(GoldenTrace, FastCoreLandsOnFinalGoldenState) {
  if (regen_requested()) GTEST_SKIP() << "regen run";
  const std::vector<Workload> work = workloads();
  ASSERT_EQ(work.size(), kGoldenTraces.size()) << "workload set changed: regenerate goldens";
  for (std::size_t i = 0; i < work.size(); ++i) {
    const GoldenTrace& golden = kGoldenTraces[i];
    Machine m(kMemBytes);
    m.load(work[i].image);
    const std::size_t steps = m.run(kStepCap);
    EXPECT_EQ(steps, golden.steps) << golden.name;
    EXPECT_TRUE(m.halted()) << golden.name;
    EXPECT_EQ(memory_digest(m), golden.final_memory) << golden.name;
    if (!golden.digests.empty() && golden.steps <= golden.digests.size()) {
      EXPECT_EQ(state_digest(m), golden.digests[golden.steps - 1]) << golden.name;
    }
  }
}

}  // namespace
}  // namespace cs31::isa
