// Scheduler simulator tests: each policy against hand-computed schedules
// from the classic textbook examples, plus cross-policy properties.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "os/scheduler.hpp"

namespace cs31::os {
namespace {

const std::vector<Job> kClassic = {
    {"A", 0, 8, 2},
    {"B", 1, 4, 1},
    {"C", 2, 9, 3},
    {"D", 3, 5, 0},
};

JobMetrics find(const Schedule& s, const std::string& name) {
  for (const JobMetrics& j : s.jobs) {
    if (j.name == name) return j;
  }
  ADD_FAILURE() << "no job " << name;
  return {};
}

TEST(Scheduler, FifoRunsInArrivalOrder) {
  const Schedule s = schedule(kClassic, SchedPolicy::Fifo);
  EXPECT_EQ(s.timeline[0].job, "A");
  EXPECT_EQ(find(s, "A").completion, 8u);
  EXPECT_EQ(find(s, "B").completion, 12u);
  EXPECT_EQ(find(s, "C").completion, 21u);
  EXPECT_EQ(find(s, "D").completion, 26u);
  EXPECT_EQ(s.makespan, 26u);
  EXPECT_EQ(s.context_switches, 3u);
  // Convoy effect: B waits behind long A.
  EXPECT_EQ(find(s, "B").response, 7u);
}

TEST(Scheduler, SjfPicksShortestAtEachCompletion) {
  const Schedule s = schedule(kClassic, SchedPolicy::Sjf);
  // A runs 0-8 (only job at t=0; SJF here is non-preemptive-by-
  // completion since nothing shorter can interrupt under our Sjf rule
  // only at pick time)... B(4) then D(5) then C(9).
  EXPECT_EQ(find(s, "B").completion, 12u);
  EXPECT_EQ(find(s, "D").completion, 17u);
  EXPECT_EQ(find(s, "C").completion, 26u);
  EXPECT_LT(s.avg_turnaround(), schedule(kClassic, SchedPolicy::Fifo).avg_turnaround());
}

TEST(Scheduler, SrtfPreemptsForShorterWork) {
  const Schedule s = schedule(kClassic, SchedPolicy::Srtf);
  // B arrives at t=1 with 4 < A's remaining 7: preempts immediately.
  EXPECT_EQ(s.timeline[0].job, "A");
  EXPECT_EQ(s.timeline[0].end, 1u);
  EXPECT_EQ(s.timeline[1].job, "B");
  EXPECT_EQ(find(s, "B").completion, 5u);
  // SRTF is optimal for average turnaround among these policies.
  for (const SchedPolicy p : {SchedPolicy::Fifo, SchedPolicy::RoundRobin,
                              SchedPolicy::Sjf, SchedPolicy::Priority}) {
    EXPECT_LE(s.avg_turnaround(), schedule(kClassic, p).avg_turnaround())
        << policy_name(p);
  }
}

TEST(Scheduler, RoundRobinBoundsResponseTime) {
  const Schedule rr = schedule(kClassic, SchedPolicy::RoundRobin, 2);
  const Schedule fifo = schedule(kClassic, SchedPolicy::Fifo);
  EXPECT_LT(rr.avg_response(), fifo.avg_response())
      << "RR trades turnaround for responsiveness";
  EXPECT_GT(rr.context_switches, fifo.context_switches);
  // Every job starts within (n-1) * quantum of arriving once the CPU
  // has work (weak bound, checked directly).
  for (const JobMetrics& j : rr.jobs) EXPECT_LE(j.response, 3u * 2u);
}

TEST(Scheduler, PriorityPreemptsLowImportance) {
  const Schedule s = schedule(kClassic, SchedPolicy::Priority);
  // D (priority 0, arrives t=3) preempts everything until done.
  EXPECT_EQ(find(s, "D").response, 0u);
  EXPECT_EQ(find(s, "D").completion, 8u);
  // C (priority 3) finishes last.
  EXPECT_EQ(find(s, "C").completion, s.makespan);
}

TEST(Scheduler, MetricsIdentitiesHold) {
  for (const SchedPolicy p : {SchedPolicy::Fifo, SchedPolicy::RoundRobin,
                              SchedPolicy::Sjf, SchedPolicy::Srtf,
                              SchedPolicy::Priority}) {
    const Schedule s = schedule(kClassic, p, 3);
    std::uint64_t total_burst = 0;
    for (const Job& j : kClassic) total_burst += j.burst;
    EXPECT_EQ(s.makespan, total_burst) << "no idle time in this job set";
    for (std::size_t i = 0; i < kClassic.size(); ++i) {
      EXPECT_EQ(s.jobs[i].turnaround, s.jobs[i].waiting + kClassic[i].burst);
      EXPECT_GE(s.jobs[i].turnaround, kClassic[i].burst);
      EXPECT_LE(s.jobs[i].response, s.jobs[i].waiting);
    }
    // Timeline covers exactly the total burst.
    std::uint64_t covered = 0;
    for (const Slice& slice : s.timeline) covered += slice.end - slice.start;
    EXPECT_EQ(covered, total_burst);
  }
}

TEST(Scheduler, IdleGapsHandled) {
  const Schedule s = schedule({{"A", 0, 2, 0}, {"B", 10, 2, 0}}, SchedPolicy::Fifo);
  EXPECT_EQ(find(s, "A").completion, 2u);
  EXPECT_EQ(find(s, "B").completion, 12u);
  EXPECT_EQ(find(s, "B").response, 0u);
  EXPECT_EQ(s.makespan, 12u);
}

TEST(Scheduler, Validation) {
  EXPECT_THROW((void)schedule({}, SchedPolicy::Fifo), Error);
  EXPECT_THROW((void)schedule({{"A", 0, 0, 0}}, SchedPolicy::Fifo), Error);
  EXPECT_THROW((void)schedule({{"A", 0, 1, 0}, {"A", 0, 1, 0}}, SchedPolicy::Fifo),
               Error);
  EXPECT_THROW((void)schedule({{"A", 0, 1, 0}}, SchedPolicy::RoundRobin, 0), Error);
}

TEST(Scheduler, GanttRenders) {
  const std::string gantt = render_gantt(schedule(kClassic, SchedPolicy::RoundRobin, 2));
  EXPECT_NE(gantt.find("0-"), std::string::npos);
  EXPECT_NE(gantt.find("makespan"), std::string::npos);
}

// Property sweep: across random job sets, SRTF minimizes average
// turnaround among the implemented policies, and all policies conserve
// work.
class SchedulerProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SchedulerProperty, SrtfDominatesAndWorkIsConserved) {
  std::uint32_t state = GetParam() | 1u;
  auto rnd = [&](std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  };
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(Job{"J" + std::to_string(i), rnd(20), 1 + rnd(12),
                       static_cast<int>(rnd(5))});
  }
  const double srtf = schedule(jobs, SchedPolicy::Srtf).avg_turnaround();
  for (const SchedPolicy p : {SchedPolicy::Fifo, SchedPolicy::RoundRobin,
                              SchedPolicy::Sjf, SchedPolicy::Priority}) {
    const Schedule s = schedule(jobs, p, 2);
    EXPECT_GE(s.avg_turnaround() + 1e-9, srtf) << policy_name(p);
    std::uint64_t covered = 0;
    for (const Slice& slice : s.timeline) covered += slice.end - slice.start;
    std::uint64_t total = 0;
    for (const Job& j : jobs) total += j.burst;
    EXPECT_EQ(covered, total) << policy_name(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Values(3u, 17u, 42u, 99u, 123u));

}  // namespace
}  // namespace cs31::os
