// Lab 7 grader: every kit C-string function cross-checked against the
// host <cstring> implementation, including the corner cases the course
// quizzes on (strncpy padding, strncat termination, embedded searches).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/error.hpp"
#include "cstr/cstring.hpp"

namespace cs31::cstr {
namespace {

const char* kSamples[] = {"", "a", "ab", "hello", "hello world",
                          "a longer string, with punctuation!", "aaaabaaa"};

TEST(Cstr, LengthMatchesHost) {
  for (const char* s : kSamples) {
    EXPECT_EQ(str_length(s), std::strlen(s)) << s;
  }
  EXPECT_THROW((void)str_length(nullptr), Error);
}

TEST(Cstr, CopyMatchesHost) {
  for (const char* s : kSamples) {
    char mine[64], theirs[64];
    EXPECT_EQ(str_copy(mine, s), mine) << "returns dst";
    std::strcpy(theirs, s);
    EXPECT_STREQ(mine, theirs);
  }
}

// The host strncpy/strncat calls below truncate *on purpose* — that
// exact edge behaviour is what the tests compare against.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-truncation"

TEST(Cstr, NCopyPadsWithNulsAndMayNotTerminate) {
  char mine[8], theirs[8];
  // Shorter source: the trailing bytes must all be NUL.
  std::memset(mine, 'X', sizeof mine);
  std::memset(theirs, 'X', sizeof theirs);
  str_ncopy(mine, "ab", 6);
  std::strncpy(theirs, "ab", 6);
  EXPECT_EQ(std::memcmp(mine, theirs, 6), 0);
  EXPECT_EQ(mine[5], '\0');
  // Longer source: exactly n bytes, no terminator.
  str_ncopy(mine, "abcdefgh", 4);
  std::strncpy(theirs, "abcdefgh", 4);
  EXPECT_EQ(std::memcmp(mine, theirs, 4), 0);
  EXPECT_EQ(mine[4], '\0') << "leftover from previous copy, not written by strncpy";
}

TEST(Cstr, ConcatMatchesHost) {
  char mine[64] = "start-", theirs[64] = "start-";
  str_concat(mine, "finish");
  std::strcat(theirs, "finish");
  EXPECT_STREQ(mine, theirs);
}

TEST(Cstr, NConcatAlwaysTerminates) {
  char mine[64] = "ab", theirs[64] = "ab";
  str_nconcat(mine, "cdefgh", 3);
  std::strncat(theirs, "cdefgh", 3);
  EXPECT_STREQ(mine, theirs);
  EXPECT_STREQ(mine, "abcde");
}

#pragma GCC diagnostic pop

TEST(Cstr, CompareSignsMatchHost) {
  const std::pair<const char*, const char*> cases[] = {
      {"a", "a"}, {"a", "b"}, {"b", "a"}, {"abc", "abd"}, {"abc", "ab"},
      {"ab", "abc"}, {"", ""}, {"", "x"}, {"\x80", "\x01"},  // unsigned-compare case
  };
  for (const auto& [a, b] : cases) {
    const int mine = str_compare(a, b);
    const int theirs = std::strcmp(a, b);
    EXPECT_EQ(mine == 0, theirs == 0) << a << " vs " << b;
    EXPECT_EQ(mine < 0, theirs < 0) << a << " vs " << b;
    EXPECT_EQ(mine > 0, theirs > 0) << a << " vs " << b;
  }
}

TEST(Cstr, NCompareStopsAtN) {
  EXPECT_EQ(str_ncompare("abcX", "abcY", 3), 0);
  EXPECT_NE(str_ncompare("abcX", "abcY", 4), 0);
  EXPECT_EQ(str_ncompare("ab", "ab", 10), 0) << "stops at the NUL";
}

TEST(Cstr, FindCharMatchesHost) {
  for (const char* s : kSamples) {
    for (const char c : {'a', 'l', 'z', ' ', '\0'}) {
      const char* mine = str_find_char(s, c);
      const char* theirs = std::strchr(s, c);
      EXPECT_EQ(mine, theirs) << "strchr('" << s << "', '" << c << "')";
      EXPECT_EQ(str_rfind_char(s, c), std::strrchr(s, c)) << s;
    }
  }
}

TEST(Cstr, FindMatchesHost) {
  const std::pair<const char*, const char*> cases[] = {
      {"hello world", "world"}, {"hello", "hello"}, {"hello", ""},
      {"hello", "lo"}, {"hello", "xyz"}, {"aaaa", "aab"}, {"mississippi", "issip"},
  };
  for (const auto& [h, n] : cases) {
    EXPECT_EQ(str_find(h, n), std::strstr(h, n)) << h << " / " << n;
  }
}

TEST(Cstr, SpanMatchesHost) {
  EXPECT_EQ(str_span("abcde", "abc"), std::strspn("abcde", "abc"));
  EXPECT_EQ(str_span("xyz", "abc"), std::strspn("xyz", "abc"));
  EXPECT_EQ(str_cspan("hello world", " "), std::strcspn("hello world", " "));
  EXPECT_EQ(str_cspan("abc", "xyz"), std::strcspn("abc", "xyz"));
}

TEST(Cstr, TokenWalksLikeStrtokR) {
  char mine[64] = "  one two,three  ";
  char theirs[64] = "  one two,three  ";
  char *ms = nullptr, *ts = nullptr;
  char* mt = str_token(mine, " ,", &ms);
  char* tt = strtok_r(theirs, " ,", &ts);
  while (mt != nullptr || tt != nullptr) {
    ASSERT_NE(mt, nullptr);
    ASSERT_NE(tt, nullptr);
    EXPECT_STREQ(mt, tt);
    mt = str_token(nullptr, " ,", &ms);
    tt = strtok_r(nullptr, " ,", &ts);
  }
}

TEST(Cstr, TokenOnDelimiterOnlyStringYieldsNothing) {
  char buf[8] = "  ,, ";
  char* save = nullptr;
  EXPECT_EQ(str_token(buf, " ,", &save), nullptr);
}

TEST(Cstr, DuplicateOwnsACopy) {
  const auto dup = str_duplicate("copy me");
  EXPECT_STREQ(dup.get(), "copy me");
  EXPECT_THROW(str_duplicate(nullptr), Error);
}

TEST(Cstr, NullPointersAreDiagnosed) {
  char buf[4] = "x";
  EXPECT_THROW(str_copy(nullptr, "x"), Error);
  EXPECT_THROW(str_copy(buf, nullptr), Error);
  EXPECT_THROW((void)str_compare(nullptr, "x"), Error);
  EXPECT_THROW((void)str_find(nullptr, "x"), Error);
  char* save = nullptr;
  EXPECT_THROW(str_token(buf, nullptr, &save), Error);
  EXPECT_THROW(str_token(buf, " ", nullptr), Error);
}

}  // namespace
}  // namespace cs31::cstr
