// tsan_crosscheck — one scenario per invocation, built for the
// -DCS31_SANITIZE=thread tier (tests/CMakeLists.txt registers the ctest
// entries only there). Each mode first gets the cs31::race verdict from
// a traced run (deterministic, no real UB thanks to TracedVar's hidden
// guard), then executes the *real* program so ThreadSanitizer can rule
// on the same buggy/clean pair:
//
//   buggy — the unsynchronized shared counter. cs31::race must flag it;
//           TSan must abort the raw run (the ctest entry is WILL_FAIL
//           with TSAN_OPTIONS=exitcode=66).
//   clean — the mutexed counter plus a traced real-thread barrier'd
//           ParallelLife::run, first with the inline detector, then
//           again through a sharded AnalysisPipeline. Both detectors
//           and TSan must stay silent — which certifies the
//           TraceContext capture layer (per-thread buffers, sync-stream
//           stamping, barrier drains) AND the pipeline's own threading
//           (bounded queues, router handoff, shard workers, metrics
//           merge) as free of real races.
//   cv-clean — a producer/consumer handoff with correct wait/notify
//           discipline, traced through TracedCondVar (cs31::race must
//           be silent) and then raw through std::condition_variable
//           (TSan must be silent).
//   cv-buggy — the same handoff through a bare spin-on-a-flag, no
//           wait/notify: cs31::race must flag the payload, and the raw
//           run hands TSan an honest unsynchronized flag+payload pair.
//   storm — the lock-free capture design under pressure: concurrent
//           sync records on private and shared TracedMutexes, barrier-
//           free drains, and fork/join churn that exercises epoch-based
//           buffer reclamation. TSan rules on the capture machinery
//           itself.
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "life/life.hpp"
#include "parallel/sync.hpp"
#include "parallel/threads.hpp"
#include "trace/condvar.hpp"
#include "trace/context.hpp"
#include "trace/instrumented.hpp"
#include "trace/metrics.hpp"
#include "trace/pipeline.hpp"

namespace {

using SC = cs31::parallel::SharedCounter;

int run_buggy() {
  const auto traced = SC::run_traced(SC::Mode::Unsynchronized, 2, 2000);
  if (!traced.race_detected) {
    std::fprintf(stderr, "FAIL: cs31::race missed the unsynchronized counter\n");
    return 2;
  }
  // The real thing: an honestly racy read-modify-write for TSan.
  const auto value = SC::run(SC::Mode::Unsynchronized, 2, 20000);
  std::printf("buggy: cs31::race flagged it; raw final count %llu "
              "(under TSan this run must have produced a report)\n",
              static_cast<unsigned long long>(value));
  return 0;  // nonzero only via TSAN_OPTIONS=exitcode — that's the check
}

int run_clean() {
  const auto traced = SC::run_traced(SC::Mode::MutexPerIncrement, 2, 2000);
  if (traced.race_detected) {
    std::fprintf(stderr, "FAIL: cs31::race flagged the mutexed counter\n");
    return 2;
  }
  const auto value = SC::run(SC::Mode::MutexPerIncrement, 2, 20000);
  if (value != 40000) {
    std::fprintf(stderr, "FAIL: mutexed counter lost updates (%llu)\n",
                 static_cast<unsigned long long>(value));
    return 3;
  }

  // A traced real-thread run: the capture layer's own synchronization
  // (thread-local buffers, stamped sync stream, barrier drains) runs
  // under TSan here and must be silent.
  cs31::trace::TraceContext ctx;
  cs31::life::ParallelLife life(cs31::life::Grid::random(12, 12, 0.3, 3), 3);
  life.run(2, {.ctx = &ctx});
  ctx.flush();
  if (!ctx.detector().race_free()) {
    std::fprintf(stderr, "FAIL: cs31::race flagged the barrier'd Life run\n");
    return 4;
  }

  // The same run with analysis off the critical path: capture threads
  // publish into the pipeline's bounded queues while the router and two
  // shard workers consume — every handoff in that machinery is real
  // concurrency TSan must find clean, and the certificate must still be
  // byte-identical to the inline detector's.
  {
    cs31::trace::AnalysisPipeline pipeline(
        cs31::trace::AnalysisPipeline::Options{.shards = 2, .queue_capacity = 2});
    cs31::trace::MetricsSink metrics;
    pipeline.attach_metrics(metrics);
    cs31::trace::TraceContext piped_ctx(
        cs31::trace::TraceContext::Options{.own_detector = false});
    piped_ctx.attach_pipeline(pipeline);
    cs31::life::ParallelLife piped_life(cs31::life::Grid::random(12, 12, 0.3, 3), 3);
    piped_life.run(2, {.ctx = &piped_ctx});
    piped_ctx.flush();
    if (!pipeline.race_free()) {
      std::fprintf(stderr, "FAIL: the pipelined detector flagged the barrier'd Life run\n");
      return 5;
    }
    if (pipeline.summary() != ctx.detector().summary()) {
      std::fprintf(stderr, "FAIL: pipelined certificate differs from inline\n");
      return 6;
    }
    if (metrics.events() != pipeline.events()) {
      std::fprintf(stderr, "FAIL: merged metrics lost events\n");
      return 7;
    }
  }
  std::printf("clean: cs31::race, the pipeline, and the raw runs agree — race-free\n");
  return 0;
}

// Traced producer/consumer handoff; `use_condvar` picks the correct
// wait/notify pairing or the buggy spin. Returns the race verdict.
bool traced_handoff_races(bool use_condvar) {
  cs31::trace::TraceContext ctx;
  cs31::trace::TracedVar<int> payload("payload", ctx);
  if (use_condvar) {
    cs31::trace::TracedMutex mutex("cv_mutex", ctx);
    cs31::trace::TracedCondVar cv("cv:ready", ctx);
    bool ready = false;
    cs31::parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
      if (id == 0) {
        payload.store(42, "produce");
        std::unique_lock<cs31::trace::TracedMutex> lock(mutex);
        ready = true;
        cv.notify_one();
      } else {
        std::unique_lock<cs31::trace::TracedMutex> lock(mutex);
        cv.wait(lock, [&] { return ready; });
        (void)payload.load("consume");
      }
    });
    team.join();
  } else {
    cs31::trace::TracedVar<int> flag("ready_flag", ctx);
    cs31::parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
      if (id == 0) {
        payload.store(42, "produce");
        flag.store(1, "publish flag");
      } else {
        int spins = 0;
        while (flag.load("poll flag") == 0 && spins < 200000) {
          ++spins;
          std::this_thread::yield();
        }
        (void)payload.load("consume");
      }
    });
    team.join();
  }
  ctx.flush();
  return !ctx.detector().race_free();
}

int run_cv_clean() {
  if (traced_handoff_races(/*use_condvar=*/true)) {
    std::fprintf(stderr, "FAIL: cs31::race flagged the wait/notify handoff\n");
    return 2;
  }
  // The real thing: std::condition_variable with the same discipline.
  // TSan must stay silent.
  int payload = 0;
  bool ready = false;
  std::mutex mutex;
  std::condition_variable cv;
  std::thread consumer([&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return ready; });
    if (payload != 42) std::fprintf(stderr, "FAIL: lost the payload\n");
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    payload = 42;
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  std::printf("cv-clean: cs31::race and the raw wait/notify run agree — race-free\n");
  return 0;
}

int run_cv_buggy() {
  if (!traced_handoff_races(/*use_condvar=*/false)) {
    std::fprintf(stderr, "FAIL: cs31::race missed the spin-on-a-flag handoff\n");
    return 2;
  }
  // The real thing: an honest flag+payload pair with no synchronization
  // (volatile keeps the spin observing the store without making the
  // accesses atomic — TSan must report both variables).
  static int payload = 0;
  static volatile bool ready = false;
  std::thread producer([&] {
    payload = 42;
    ready = true;
  });
  int spins = 0;
  while (!ready && spins < 200000000) ++spins;
  const int got = payload;
  producer.join();
  std::printf("cv-buggy: cs31::race flagged it; raw spin read %d "
              "(under TSan this run must have produced a report)\n",
              got);
  return 0;  // nonzero only via TSAN_OPTIONS=exitcode — that's the check
}

// The lock-free capture layer under maximum concurrent pressure: real
// threads hammering sync records (the global stamp counter and the
// per-object seq counters via their traced primitives), interleaved
// drains (the barrier forces them mid-run), a joined-and-retired buffer
// per round of thread churn, and accesses riding the TLS-bound fast
// path — everything the refactor moved off the stream mutex. TSan must
// find no real race in the capture machinery itself, and the verdict
// must be race-free both capture modes.
int run_storm() {
  for (const auto mode : {cs31::trace::CaptureMode::lockfree,
                          cs31::trace::CaptureMode::mutex_stream}) {
    cs31::trace::TraceContext ctx(cs31::trace::TraceContext::Options{.capture = mode});
    constexpr std::size_t kThreads = 4;
    constexpr int kIters = 2000;
    std::vector<std::unique_ptr<cs31::trace::TracedMutex>> mutexes;
    for (std::size_t t = 0; t < kThreads; ++t) {
      mutexes.push_back(std::make_unique<cs31::trace::TracedMutex>(
          "storm_m" + std::to_string(t), ctx));
    }
    // One shared traced mutex too, so per-object seq counters see real
    // cross-thread contention, not just thread-private increments.
    auto shared = std::make_unique<cs31::trace::TracedMutex>("storm_shared", ctx);
    const cs31::trace::NameId var = ctx.intern_var("storm_var");
    const cs31::trace::NameId site = ctx.intern_site("storm");
    {
      cs31::parallel::ThreadTeam team(kThreads, ctx, [&](std::size_t who) {
        for (int i = 0; i < kIters; ++i) {
          mutexes[who]->lock();
          mutexes[who]->unlock();
          shared->lock();
          ctx.write(var, site);
          shared->unlock();
        }
      });
      team.join();
    }
    // Thread churn: fork/join cycles retire buffers while the main
    // thread keeps recording — epoch reclamation runs under TSan.
    for (int round = 0; round < 8; ++round) {
      cs31::parallel::ThreadTeam churn(2, ctx, [&](std::size_t) {
        shared->lock();
        ctx.write(var, site);
        shared->unlock();
      });
      churn.join();
    }
    ctx.flush();
    if (!ctx.detector().race_free()) {
      std::fprintf(stderr, "FAIL: cs31::race flagged the mutex-disciplined storm\n");
      return 2;
    }
    if (mode == cs31::trace::CaptureMode::lockfree && ctx.buffers_reclaimed() == 0) {
      std::fprintf(stderr, "FAIL: epoch reclamation never freed a retired buffer\n");
      return 3;
    }
  }
  std::printf("storm: lock-free capture, drains, and reclamation are TSan-clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "buggy") return run_buggy();
  if (mode == "clean") return run_clean();
  if (mode == "cv-buggy") return run_cv_buggy();
  if (mode == "cv-clean") return run_cv_clean();
  if (mode == "storm") return run_storm();
  std::fprintf(stderr, "usage: tsan_crosscheck buggy|clean|cv-buggy|cv-clean|storm\n");
  return 64;
}
