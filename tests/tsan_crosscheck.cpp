// tsan_crosscheck — one scenario per invocation, built for the
// -DCS31_SANITIZE=thread tier (tests/CMakeLists.txt registers the ctest
// entries only there). Each mode first gets the cs31::race verdict from
// a traced run (deterministic, no real UB thanks to TracedVar's hidden
// guard), then executes the *real* program so ThreadSanitizer can rule
// on the same buggy/clean pair:
//
//   buggy — the unsynchronized shared counter. cs31::race must flag it;
//           TSan must abort the raw run (the ctest entry is WILL_FAIL
//           with TSAN_OPTIONS=exitcode=66).
//   clean — the mutexed counter plus a traced real-thread barrier'd
//           ParallelLife::run, first with the inline detector, then
//           again through a sharded AnalysisPipeline. Both detectors
//           and TSan must stay silent — which certifies the
//           TraceContext capture layer (per-thread buffers, sync-stream
//           stamping, barrier drains) AND the pipeline's own threading
//           (bounded queues, router handoff, shard workers, metrics
//           merge) as free of real races.
#include <cstdio>
#include <string>

#include "life/life.hpp"
#include "parallel/sync.hpp"
#include "trace/context.hpp"
#include "trace/metrics.hpp"
#include "trace/pipeline.hpp"

namespace {

using SC = cs31::parallel::SharedCounter;

int run_buggy() {
  const auto traced = SC::run_traced(SC::Mode::Unsynchronized, 2, 2000);
  if (!traced.race_detected) {
    std::fprintf(stderr, "FAIL: cs31::race missed the unsynchronized counter\n");
    return 2;
  }
  // The real thing: an honestly racy read-modify-write for TSan.
  const auto value = SC::run(SC::Mode::Unsynchronized, 2, 20000);
  std::printf("buggy: cs31::race flagged it; raw final count %llu "
              "(under TSan this run must have produced a report)\n",
              static_cast<unsigned long long>(value));
  return 0;  // nonzero only via TSAN_OPTIONS=exitcode — that's the check
}

int run_clean() {
  const auto traced = SC::run_traced(SC::Mode::MutexPerIncrement, 2, 2000);
  if (traced.race_detected) {
    std::fprintf(stderr, "FAIL: cs31::race flagged the mutexed counter\n");
    return 2;
  }
  const auto value = SC::run(SC::Mode::MutexPerIncrement, 2, 20000);
  if (value != 40000) {
    std::fprintf(stderr, "FAIL: mutexed counter lost updates (%llu)\n",
                 static_cast<unsigned long long>(value));
    return 3;
  }

  // A traced real-thread run: the capture layer's own synchronization
  // (thread-local buffers, stamped sync stream, barrier drains) runs
  // under TSan here and must be silent.
  cs31::trace::TraceContext ctx;
  cs31::life::ParallelLife life(cs31::life::Grid::random(12, 12, 0.3, 3), 3);
  life.run(2, {.ctx = &ctx});
  ctx.flush();
  if (!ctx.detector().race_free()) {
    std::fprintf(stderr, "FAIL: cs31::race flagged the barrier'd Life run\n");
    return 4;
  }

  // The same run with analysis off the critical path: capture threads
  // publish into the pipeline's bounded queues while the router and two
  // shard workers consume — every handoff in that machinery is real
  // concurrency TSan must find clean, and the certificate must still be
  // byte-identical to the inline detector's.
  {
    cs31::trace::AnalysisPipeline pipeline(
        cs31::trace::AnalysisPipeline::Options{.shards = 2, .queue_capacity = 2});
    cs31::trace::MetricsSink metrics;
    pipeline.attach_metrics(metrics);
    cs31::trace::TraceContext piped_ctx(
        cs31::trace::TraceContext::Options{.own_detector = false});
    piped_ctx.attach_pipeline(pipeline);
    cs31::life::ParallelLife piped_life(cs31::life::Grid::random(12, 12, 0.3, 3), 3);
    piped_life.run(2, {.ctx = &piped_ctx});
    piped_ctx.flush();
    if (!pipeline.race_free()) {
      std::fprintf(stderr, "FAIL: the pipelined detector flagged the barrier'd Life run\n");
      return 5;
    }
    if (pipeline.summary() != ctx.detector().summary()) {
      std::fprintf(stderr, "FAIL: pipelined certificate differs from inline\n");
      return 6;
    }
    if (metrics.events() != pipeline.events()) {
      std::fprintf(stderr, "FAIL: merged metrics lost events\n");
      return 7;
    }
  }
  std::printf("clean: cs31::race, the pipeline, and the raw runs agree — race-free\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "buggy") return run_buggy();
  if (mode == "clean") return run_clean();
  std::fprintf(stderr, "usage: tsan_crosscheck buggy|clean\n");
  return 64;
}
