// Differential testing for the mini-C compiler: generate random
// expression programs, evaluate them with an independent reference
// evaluator (host integer arithmetic with C's wraparound semantics),
// and require the compiled program — running on the emulated IA-32
// subset — to produce the same value.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ccomp/codegen.hpp"

namespace cs31::cc {
namespace {

/// Deterministic RNG shared by the generator.
struct Rng {
  std::uint32_t state;
  std::uint32_t next(std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  }
};

/// Generates an expression string and, in lock-step, its value under
/// C's int semantics (two's complement wraparound via uint32).
struct GenResult {
  std::string text;
  std::uint32_t value;  // bit pattern of the int result
};

GenResult gen_expr(Rng& rng, std::uint32_t x, int depth);

GenResult gen_leaf(Rng& rng, std::uint32_t x) {
  if (rng.next(3) == 0) return {"x", x};
  const std::uint32_t v = rng.next(100);
  return {std::to_string(v), v};
}

GenResult gen_expr(Rng& rng, std::uint32_t x, int depth) {
  if (depth == 0) return gen_leaf(rng, x);
  switch (rng.next(10)) {
    case 0: {  // unary minus
      const GenResult a = gen_expr(rng, x, depth - 1);
      return {"(-" + a.text + ")", 0u - a.value};
    }
    case 1: {  // bit not
      const GenResult a = gen_expr(rng, x, depth - 1);
      return {"(~" + a.text + ")", ~a.value};
    }
    case 2: {  // logical not
      const GenResult a = gen_expr(rng, x, depth - 1);
      return {"(!" + a.text + ")", a.value == 0 ? 1u : 0u};
    }
    case 3: {  // shift by a small literal
      const GenResult a = gen_expr(rng, x, depth - 1);
      const std::uint32_t count = rng.next(9);
      if (rng.next(2) == 0) {
        return {"(" + a.text + " << " + std::to_string(count) + ")", a.value << count};
      }
      const std::int32_t shifted = static_cast<std::int32_t>(a.value) >> count;
      return {"(" + a.text + " >> " + std::to_string(count) + ")",
              static_cast<std::uint32_t>(shifted)};
    }
    default: {  // binary operator
      const GenResult a = gen_expr(rng, x, depth - 1);
      const GenResult b = gen_expr(rng, x, depth - 1);
      const std::int32_t sa = static_cast<std::int32_t>(a.value);
      const std::int32_t sb = static_cast<std::int32_t>(b.value);
      switch (rng.next(11)) {
        case 0: return {"(" + a.text + " + " + b.text + ")", a.value + b.value};
        case 1: return {"(" + a.text + " - " + b.text + ")", a.value - b.value};
        case 2: return {"(" + a.text + " * " + b.text + ")", a.value * b.value};
        case 3: return {"(" + a.text + " & " + b.text + ")", a.value & b.value};
        case 4: return {"(" + a.text + " | " + b.text + ")", a.value | b.value};
        case 5: return {"(" + a.text + " ^ " + b.text + ")", a.value ^ b.value};
        case 6: return {"(" + a.text + " < " + b.text + ")", sa < sb ? 1u : 0u};
        case 7: return {"(" + a.text + " >= " + b.text + ")", sa >= sb ? 1u : 0u};
        case 8: return {"(" + a.text + " == " + b.text + ")", sa == sb ? 1u : 0u};
        case 9:
          return {"(" + a.text + " && " + b.text + ")",
                  (a.value != 0 && b.value != 0) ? 1u : 0u};
        default:
          return {"(" + a.text + " || " + b.text + ")",
                  (a.value != 0 || b.value != 0) ? 1u : 0u};
      }
    }
  }
}

class CompilerFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CompilerFuzz, CompiledExpressionsMatchReferenceEvaluator) {
  Rng rng{GetParam() | 1u};
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint32_t x = rng.next(2000) - 1000;
    const GenResult expr = gen_expr(rng, x, 3);
    const std::string program =
        "int main(int x) { return " + expr.text + "; }";
    const std::int32_t got = run_mini_c(program, {static_cast<std::int32_t>(x)});
    ASSERT_EQ(static_cast<std::uint32_t>(got), expr.value)
        << "x=" << static_cast<std::int32_t>(x) << "\n" << program;
    // The optimizer must preserve the same semantics.
    const std::int32_t opt = run_mini_c(program, {static_cast<std::int32_t>(x)}, true);
    ASSERT_EQ(static_cast<std::uint32_t>(opt), expr.value)
        << "optimizer broke: x=" << static_cast<std::int32_t>(x) << "\n" << program;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(CompilerFuzz, StatementLevelDifferential) {
  // Random chains of assignments with a final accumulator, checked the
  // same way: the reference tracks variables in the test.
  Rng rng{0xF00D};
  for (int trial = 0; trial < 25; ++trial) {
    std::uint32_t a = rng.next(50), b = rng.next(50), c = rng.next(50);
    std::string body = "int a = " + std::to_string(a) + "; int b = " +
                       std::to_string(b) + "; int c = " + std::to_string(c) + ";\n";
    for (int step = 0; step < 6; ++step) {
      switch (rng.next(4)) {
        case 0: body += "a = a + b * c;\n"; a = a + b * c; break;
        case 1: body += "b = (b ^ a) - c;\n"; b = (b ^ a) - c; break;
        case 2: body += "c = c + (a & 255);\n"; c = c + (a & 255u); break;
        case 3: body += "if (a < b) { a = a + 1; } else { b = b + 1; }\n";
          if (static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)) ++a; else ++b;
          break;
      }
    }
    const std::string program = "int main() { " + body + " return a + b + c; }";
    const std::int32_t got = run_mini_c(program);
    ASSERT_EQ(static_cast<std::uint32_t>(got), a + b + c) << program;
  }
}

}  // namespace
}  // namespace cs31::cc
