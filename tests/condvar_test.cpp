// TracedCondVar: the signal -> waiter happens-before edge. The manual
// pair isolates the channel edge (no mutex events at all), the
// real-thread pairs run the producer/consumer unit both ways: correct
// wait/notify discipline comes back race-free, the spin-on-a-flag
// "missed wakeup" version is flagged. The same two programs run raw
// under ThreadSanitizer via tests/tsan_crosscheck.cpp (cv-buggy /
// cv-clean modes), and the verdicts must agree.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>

#include "parallel/threads.hpp"
#include "trace/condvar.hpp"
#include "trace/context.hpp"
#include "trace/instrumented.hpp"

namespace cs31::trace {
namespace {

bool mentions_variable(const std::vector<race::RaceReport>& races, const std::string& var) {
  for (const auto& r : races) {
    if (r.variable == var) return true;
  }
  return false;
}

TEST(CondVar, ChannelEdgeAloneOrdersAHandoff) {
  // The deterministic core of the condvar contract, with *no* mutex
  // events: the send/recv pair is the only thing ordering the payload.
  TraceContext ctx;
  const NameId payload = ctx.intern_var("payload");
  const NameId ch = ctx.intern_channel("cv:items");
  const ThreadId producer = ctx.fork_thread(0);
  const ThreadId consumer = ctx.fork_thread(0);
  ctx.write_as(producer, payload, ctx.intern_site("produce"));
  ctx.send_as(producer, ch);
  ctx.recv_as(consumer, ch);
  ctx.read_as(consumer, payload, ctx.intern_site("consume"));
  ctx.join_thread(0, producer);
  ctx.join_thread(0, consumer);
  ctx.flush();
  EXPECT_TRUE(ctx.detector().race_free());
}

TEST(CondVar, WithoutTheEdgeTheSameHandoffRaces) {
  TraceContext ctx;
  const NameId payload = ctx.intern_var("payload");
  const ThreadId producer = ctx.fork_thread(0);
  const ThreadId consumer = ctx.fork_thread(0);
  ctx.write_as(producer, payload, ctx.intern_site("produce"));
  ctx.read_as(consumer, payload, ctx.intern_site("consume"));
  ctx.join_thread(0, producer);
  ctx.join_thread(0, consumer);
  ctx.flush();
  EXPECT_TRUE(mentions_variable(ctx.detector().races(), "payload"));
}

TEST(CondVar, WaitNotifyProducerConsumerIsClean) {
  TraceContext ctx;
  TracedVar<int> payload("payload", ctx);
  TracedMutex mutex("cv_mutex", ctx);
  TracedCondVar cv("cv:ready", ctx);
  bool ready = false;  // protected by `mutex`; invisible to the trace
  int got = 0;
  parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
    if (id == 0) {
      payload.store(42, "produce");
      std::unique_lock<TracedMutex> lock(mutex);
      ready = true;
      cv.notify_one();  // publish state, then notify, as the course teaches
    } else {
      std::unique_lock<TracedMutex> lock(mutex);
      cv.wait(lock, [&] { return ready; });
      got = payload.load("consume");
    }
  });
  team.join();
  ctx.flush();
  EXPECT_EQ(got, 42);
  EXPECT_TRUE(ctx.detector().race_free());
}

TEST(CondVar, NotifyAllReleasesEveryWaiter) {
  TraceContext ctx;
  TracedVar<int> payload("payload", ctx);
  TracedMutex mutex("cv_mutex", ctx);
  TracedCondVar cv("cv:ready", ctx);
  bool ready = false;
  int sum = 0;
  TracedVar<int> tally("tally", ctx);
  parallel::ThreadTeam team(3, ctx, [&](std::size_t id) {
    if (id == 0) {
      payload.store(21, "produce");
      std::unique_lock<TracedMutex> lock(mutex);
      ready = true;
      cv.notify_all();
    } else {
      std::unique_lock<TracedMutex> lock(mutex);
      cv.wait(lock, [&] { return ready; });
      // Still holding the mutex: both waiters fold into the tally.
      tally.store(tally.load() + payload.load("consume"));
    }
  });
  team.join();
  sum = tally.load();
  ctx.flush();
  EXPECT_EQ(sum, 42);
  EXPECT_TRUE(ctx.detector().race_free());
}

TEST(CondVar, MissedWakeupSpinPairIsFlagged) {
  // The buggy contrast: the same handoff through a bare flag, no
  // wait/notify. TracedVar's hidden guard keeps the run well-defined,
  // but no happens-before edge exists and the detector must say so.
  TraceContext ctx;
  TracedVar<int> payload("payload", ctx);
  TracedVar<int> flag("ready_flag", ctx);
  parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
    if (id == 0) {
      payload.store(42, "produce");
      flag.store(1, "publish flag");
    } else {
      int spins = 0;
      while (flag.load("poll flag") == 0 && spins < 200000) {
        ++spins;
        std::this_thread::yield();
      }
      (void)payload.load("consume");
    }
  });
  team.join();
  ctx.flush();
  ASSERT_FALSE(ctx.detector().race_free());
  EXPECT_TRUE(mentions_variable(ctx.detector().races(), "payload"));
}

}  // namespace
}  // namespace cs31::trace
