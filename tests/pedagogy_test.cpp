// Peer-instruction model tests: the second vote never loses ground,
// discussion gain drives the improvement, and the question bank covers
// the curriculum.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "pedagogy/peer.hpp"

namespace cs31::pedagogy {
namespace {

TEST(QuestionBank, CoversEveryTcppTopic) {
  const auto& course = core::Curriculum::cs31();
  const auto bank = question_bank(course);
  EXPECT_EQ(bank.size(), course.topics().size());
  const auto doubled = question_bank(course, 2);
  EXPECT_EQ(doubled.size(), 2 * course.topics().size());
  for (const ClickerQuestion& q : bank) {
    EXPECT_NO_THROW((void)course.topic(q.topic)) << q.topic;
    EXPECT_FALSE(q.prompt.empty());
  }
  EXPECT_THROW((void)question_bank(course, 0), Error);
}

TEST(Session, SecondVoteNeverWorseThanFirst) {
  const auto bank = question_bank(core::Curriculum::cs31());
  for (const std::uint32_t seed : {1u, 7u, 31u, 99u}) {
    SessionConfig cfg;
    cfg.seed = seed;
    for (const PollResult& poll : run_session(bank, cfg)) {
      EXPECT_GE(poll.second_correct, poll.first_correct) << poll.topic;
      EXPECT_LE(poll.second_correct, poll.students);
      EXPECT_GE(poll.normalized_gain(), 0.0);
      EXPECT_LE(poll.normalized_gain(), 1.0);
    }
  }
}

TEST(Session, DiscussionGainDrivesImprovement) {
  const auto bank = question_bank(core::Curriculum::cs31());
  SessionConfig no_discussion;
  no_discussion.discussion_gain = 0.0;
  SessionConfig strong;
  strong.discussion_gain = 0.9;
  const SessionSummary none = summarize(run_session(bank, no_discussion));
  const SessionSummary lots = summarize(run_session(bank, strong));
  EXPECT_DOUBLE_EQ(none.mean_normalized_gain, 0.0)
      << "no discussion, no second-round movement";
  EXPECT_GT(lots.mean_normalized_gain, 0.3);
  EXPECT_GT(lots.mean_second_rate, lots.mean_first_rate);
}

TEST(Session, EmphasizedTopicsPollBetter) {
  const auto& course = core::Curriculum::cs31();
  const auto results = run_session(question_bank(course));
  double heavy = 0, light = 0;
  int heavy_n = 0, light_n = 0;
  for (const PollResult& poll : results) {
    const core::Emphasis e = course.topic(poll.topic).emphasis;
    if (e == core::Emphasis::Emphasize) {
      heavy += poll.first_rate();
      ++heavy_n;
    } else if (e == core::Emphasis::Mention) {
      light += poll.first_rate();
      ++light_n;
    }
  }
  ASSERT_GT(heavy_n, 0);
  ASSERT_GT(light_n, 0);
  EXPECT_GT(heavy / heavy_n, light / light_n);
}

TEST(Session, DeterministicPerSeedAndValidated) {
  const auto bank = question_bank(core::Curriculum::cs31());
  const auto a = run_session(bank);
  const auto b = run_session(bank);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first_correct, b[i].first_correct);
    EXPECT_EQ(a[i].second_correct, b[i].second_correct);
  }
  EXPECT_THROW((void)run_session({}), Error);
  SessionConfig bad;
  bad.students = 0;
  EXPECT_THROW((void)run_session(bank, bad), Error);
  bad = SessionConfig{};
  bad.discussion_gain = 1.5;
  EXPECT_THROW((void)run_session(bank, bad), Error);
  EXPECT_THROW((void)summarize({}), Error);
}

TEST(Session, GroupSizeOneMeansNoPeers) {
  const auto bank = question_bank(core::Curriculum::cs31());
  SessionConfig solo;
  solo.group_size = 1;
  const SessionSummary s = summarize(run_session(bank, solo));
  EXPECT_DOUBLE_EQ(s.mean_normalized_gain, 0.0)
      << "alone in your group, nobody can convince you";
}

TEST(NormalizedGain, EdgeCases) {
  PollResult p;
  p.students = 10;
  p.first_correct = 10;
  p.second_correct = 10;
  EXPECT_DOUBLE_EQ(p.normalized_gain(), 0.0) << "pre == 1 guard";
  p.first_correct = 5;
  p.second_correct = 10;
  EXPECT_DOUBLE_EQ(p.normalized_gain(), 1.0);
}

}  // namespace
}  // namespace cs31::pedagogy
