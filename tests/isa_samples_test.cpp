// Lab 4 assembly sample routines, exercised like a grader: staged
// memory, cdecl calls, results cross-checked against native computation.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "isa/machine.hpp"
#include "isa/samples.hpp"

namespace cs31::isa {
namespace {

TEST(Samples, LookupAndCatalog) {
  EXPECT_GE(lab4_samples().size(), 6u);
  EXPECT_EQ(sample("array_sum").name, "array_sum");
  EXPECT_THROW((void)sample("nope"), Error);
  for (const AsmSample& s : lab4_samples()) {
    EXPECT_FALSE(s.description.empty()) << s.name;
    EXPECT_NE(s.source.find(s.name + ":"), std::string::npos) << s.name;
  }
}

TEST(Samples, SwapMemSwapsInPlace) {
  // swap_mem takes two addresses; verify by reading memory afterwards —
  // call through a bespoke harness to inspect memory.
  const AsmSample& s = sample("swap_mem");
  Machine machine;
  machine.load(assemble("_start:\n    pushl $0x8004\n    pushl $0x8000\n"
                        "    call swap_mem\n    hlt\n" +
                        s.source));
  machine.store32(0x8000, 111);
  machine.store32(0x8004, 222);
  machine.run();
  EXPECT_EQ(machine.load32(0x8000), 222u);
  EXPECT_EQ(machine.load32(0x8004), 111u);
}

TEST(Samples, ArraySumMatchesNative) {
  const std::vector<std::uint32_t> data = {5, 10, 15, 20, 25, 30};
  const std::uint32_t got =
      call_sample(sample("array_sum"), {0x8000, static_cast<std::uint32_t>(data.size())},
                  data);
  EXPECT_EQ(got, 105u);
  EXPECT_EQ(call_sample(sample("array_sum"), {0x8000, 0}, data), 0u) << "empty range";
}

TEST(Samples, ArrayMaxHandlesNegatives) {
  const std::vector<std::uint32_t> data = {
      static_cast<std::uint32_t>(-50), static_cast<std::uint32_t>(-3),
      static_cast<std::uint32_t>(-999), static_cast<std::uint32_t>(-7)};
  const std::uint32_t got =
      call_sample(sample("array_max"), {0x8000, 4}, data);
  EXPECT_EQ(static_cast<std::int32_t>(got), -3);
}

TEST(Samples, AbsValueBothSigns) {
  EXPECT_EQ(call_sample(sample("abs_value"), {static_cast<std::uint32_t>(-42)}), 42u);
  EXPECT_EQ(call_sample(sample("abs_value"), {42}), 42u);
  EXPECT_EQ(call_sample(sample("abs_value"), {0}), 0u);
}

TEST(Samples, CountMatchingAndFindIndex) {
  const std::vector<std::uint32_t> data = {7, 3, 7, 1, 7, 9};
  EXPECT_EQ(call_sample(sample("count_matching"), {0x8000, 6, 7}, data), 3u);
  EXPECT_EQ(call_sample(sample("count_matching"), {0x8000, 6, 8}, data), 0u);
  EXPECT_EQ(call_sample(sample("find_index"), {0x8000, 6, 1}, data), 3u);
  EXPECT_EQ(static_cast<std::int32_t>(
                call_sample(sample("find_index"), {0x8000, 6, 42}, data)),
            -1);
}

TEST(Samples, RandomizedArraySumSweep) {
  std::uint32_t state = 5;
  auto rnd = [&](std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  };
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint32_t> data;
    const std::uint32_t n = 1 + rnd(40);
    std::uint32_t expect_sum = 0;
    std::int32_t expect_max = INT32_MIN;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t v = rnd(10000) - 5000;
      data.push_back(v);
      expect_sum += v;
      expect_max = std::max(expect_max, static_cast<std::int32_t>(v));
    }
    EXPECT_EQ(call_sample(sample("array_sum"), {0x8000, n}, data), expect_sum);
    EXPECT_EQ(static_cast<std::int32_t>(
                  call_sample(sample("array_max"), {0x8000, n}, data)),
              expect_max);
  }
}

}  // namespace
}  // namespace cs31::isa
