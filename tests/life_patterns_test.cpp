// Pattern-catalog tests: the engine verified against the documented
// dynamics of canonical patterns — still lifes hold, oscillators cycle
// with their period, ships translate by their displacement, and the
// methuselah stays chaotic; all on both engines.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "life/life.hpp"
#include "life/patterns.hpp"

namespace cs31::life {
namespace {

/// Shift a grid by (dr, dc) on the torus.
Grid shifted(const Grid& g, int dr, int dc) {
  Grid out(g.rows(), g.cols());
  const auto rows = static_cast<std::int64_t>(g.rows());
  const auto cols = static_cast<std::int64_t>(g.cols());
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t c = 0; c < g.cols(); ++c) {
      if (!g.alive(r, c)) continue;
      const std::size_t nr = static_cast<std::size_t>(
          (static_cast<std::int64_t>(r) + dr % rows + rows) % rows);
      const std::size_t nc = static_cast<std::size_t>(
          (static_cast<std::int64_t>(c) + dc % cols + cols) % cols);
      out.set(nr, nc, true);
    }
  }
  return out;
}

class PatternDynamics : public ::testing::TestWithParam<Pattern> {};

TEST_P(PatternDynamics, SerialEngineMatchesCatalog) {
  const Pattern& p = GetParam();
  const Grid initial = pattern_grid(p);
  SerialLife sim(initial, EdgeRule::Torus);
  switch (p.kind) {
    case PatternKind::Still:
      sim.run(6);
      EXPECT_EQ(sim.grid(), initial) << p.name;
      break;
    case PatternKind::Oscillator: {
      sim.run(static_cast<std::size_t>(p.period));
      EXPECT_EQ(sim.grid(), initial) << p.name << " after one period";
      // And it actually oscillates (differs mid-period).
      SerialLife half(initial, EdgeRule::Torus);
      half.run(1);
      EXPECT_NE(half.grid(), initial) << p.name;
      break;
    }
    case PatternKind::Ship: {
      sim.run(static_cast<std::size_t>(p.period));
      EXPECT_EQ(sim.grid(), shifted(initial, p.dr, p.dc)) << p.name;
      // Two periods: twice the displacement.
      sim.run(static_cast<std::size_t>(p.period));
      EXPECT_EQ(sim.grid(), shifted(initial, 2 * p.dr, 2 * p.dc)) << p.name;
      break;
    }
    case PatternKind::Methuselah:
      sim.run(100);
      EXPECT_GT(sim.grid().population(), 5u) << p.name << " must grow";
      EXPECT_NE(sim.grid(), initial);
      break;
  }
}

TEST_P(PatternDynamics, ParallelEngineAgreesWithSerial) {
  const Pattern& p = GetParam();
  const Grid initial = pattern_grid(p);
  const std::size_t generations = p.kind == PatternKind::Methuselah
                                      ? 30
                                      : static_cast<std::size_t>(p.period) * 3;
  SerialLife serial(initial, EdgeRule::Torus);
  const std::size_t threads = std::min<std::size_t>(4, initial.rows());
  ParallelLife parallel_sim(initial, threads, parallel::GridSplit::Horizontal,
                            EdgeRule::Torus);
  serial.run(generations);
  parallel_sim.run(generations);
  EXPECT_EQ(parallel_sim.grid(), serial.grid()) << p.name;
}

INSTANTIATE_TEST_SUITE_P(Catalog, PatternDynamics,
                         ::testing::ValuesIn(pattern_catalog()),
                         [](const ::testing::TestParamInfo<Pattern>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PatternCatalog, LookupAndParse) {
  EXPECT_GE(pattern_catalog().size(), 8u);
  EXPECT_EQ(pattern("glider").kind, PatternKind::Ship);
  EXPECT_THROW((void)pattern("galaxy"), cs31::Error);
  for (const Pattern& p : pattern_catalog()) {
    const Grid g = pattern_grid(p);
    EXPECT_GT(g.population(), 0u) << p.name;
  }
}

}  // namespace
}  // namespace cs31::life
