// cs31::analyze tests: CFG partition structure over both program
// representations, each dataflow check positive + negative, a
// seeded-bug corpus with annotated expectations, self-lint over every
// bundled sample/maze/compiled fixture, and the driver/debugger wiring.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analyze/cfg.hpp"
#include "analyze/checks_c.hpp"
#include "analyze/checks_isa.hpp"
#include "analyze/dataflow.hpp"
#include "analyze/diagnostic.hpp"
#include "ccomp/codegen.hpp"
#include "ccomp/driver.hpp"
#include "ccomp/parser.hpp"
#include "common/error.hpp"
#include "isa/assembler.hpp"
#include "isa/debugger.hpp"
#include "isa/machine.hpp"
#include "isa/maze.hpp"
#include "isa/samples.hpp"

namespace cs31::analyze {
namespace {

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

/// Analyze a mini-C source and match the findings against its own
/// "expect:" annotations (none = must be clean).
void check_c_fixture(const std::string& source) {
  const auto diags = analyze_program(cc::parse(source));
  const auto complaints = verify_expected(diags, parse_expectations(source));
  EXPECT_TRUE(complaints.empty()) << joined(complaints) << "\nsource:\n" << source;
}

/// Lint an assembly source and match against its annotations.
void check_isa_fixture(const std::string& source) {
  const auto diags = lint_image(isa::assemble(source));
  const auto complaints = verify_expected(diags, parse_expectations(source));
  EXPECT_TRUE(complaints.empty()) << joined(complaints) << "\nsource:\n" << source;
}

bool has_pass(const std::vector<Diagnostic>& diags, const std::string& pass) {
  for (const Diagnostic& d : diags) {
    if (d.pass == pass) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CFG structure: mini-C
// ---------------------------------------------------------------------------

TEST(CfgC, PartitionsEveryStatementExactlyOnce) {
  const cc::ProgramAst p = cc::parse(
      "int main(int a, int b) {\n"
      "  int s = 0;\n"
      "  int i = 0;\n"
      "  while (i < a) {\n"
      "    if (i > b || !(i & 1)) { s = s + i; } else { s = s - 1; }\n"
      "    i = i + 1;\n"
      "  }\n"
      "  return s;\n"
      "}\n");
  const cc::Function& fn = p.functions[0];
  const CFuncCfg cfg = build_cfg(fn);
  const std::vector<const cc::Stmt*> universe = all_statements(fn);
  ASSERT_FALSE(universe.empty());

  // Every statement has exactly one home block.
  for (const cc::Stmt* stmt : universe) {
    ASSERT_TRUE(cfg.home.contains(stmt));
    const int b = cfg.home.at(stmt);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, static_cast<int>(cfg.blocks.size()));
  }
  EXPECT_EQ(cfg.home.size(), universe.size());

  // Straight-line statements appear in exactly one block's stmt list,
  // and that block is their home; control statements own terminators.
  for (const cc::Stmt* stmt : universe) {
    std::size_t appearances = 0;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      for (const cc::Stmt* s : cfg.blocks[b].stmts) {
        if (s == stmt) {
          ++appearances;
          EXPECT_EQ(cfg.home.at(stmt), static_cast<int>(b));
        }
      }
    }
    if (stmt->kind == cc::Stmt::Kind::Decl || stmt->kind == cc::Stmt::Kind::ExprStmt) {
      EXPECT_EQ(appearances, 1u);
    } else {
      EXPECT_EQ(appearances, 0u);
      const CBlock& home = cfg.blocks[static_cast<std::size_t>(cfg.home.at(stmt))];
      EXPECT_EQ(home.owner, stmt);
    }
  }

  // Entry/exit invariants and pred/succ symmetry.
  EXPECT_EQ(cfg.blocks[1].term, CBlock::Term::Exit);
  EXPECT_TRUE(cfg.blocks[1].succs().empty());
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const int s : cfg.blocks[b].succs()) {
      const auto& preds = cfg.blocks[static_cast<std::size_t>(s)].preds;
      EXPECT_NE(std::find(preds.begin(), preds.end(), static_cast<int>(b)), preds.end());
    }
  }
}

TEST(CfgC, ShortCircuitLowersToBranchChains) {
  const cc::ProgramAst p = cc::parse(
      "int f(int a, int b) {\n"
      "  if (a && !b) { return 1; }\n"
      "  return 0;\n"
      "}\n");
  const CFuncCfg cfg = build_cfg(p.functions[0]);
  // Two condition leaves (a; b), each its own block, same owner.
  std::vector<const CBlock*> conds;
  for (const CBlock& b : cfg.blocks) {
    if (b.term == CBlock::Term::Cond) conds.push_back(&b);
  }
  ASSERT_EQ(conds.size(), 2u);
  EXPECT_EQ(conds[0]->owner, conds[1]->owner);
  // `a` true goes to the `b` leaf; `!b` swaps the leaf's targets, so
  // its *true* edge (b is true, i.e. !b false) skips the then-branch —
  // the same place `a` false goes.
  const int b_leaf = conds[0]->on_true;
  EXPECT_EQ(&cfg.blocks[static_cast<std::size_t>(b_leaf)], conds[1]);
  EXPECT_NE(conds[1]->on_true, conds[1]->on_false);
  EXPECT_EQ(conds[0]->on_false, conds[1]->on_true)
      << "a-false and b-true (i.e. !b false) both skip the then-branch";
}

TEST(CfgC, ReturnAndFallOffEdgesAreDistinguishable) {
  const cc::ProgramAst p = cc::parse(
      "int f(int a) {\n"
      "  if (a) { return 1; }\n"
      "}\n");
  const CFuncCfg cfg = build_cfg(p.functions[0]);
  bool saw_return_edge = false, saw_falloff_edge = false;
  for (const CBlock& b : cfg.blocks) {
    if (b.term == CBlock::Term::Return && b.next == 1) saw_return_edge = true;
    if (b.term == CBlock::Term::Jump && b.next == 1) saw_falloff_edge = true;
  }
  EXPECT_TRUE(saw_return_edge);
  EXPECT_TRUE(saw_falloff_edge);
}

// ---------------------------------------------------------------------------
// CFG structure: teaching ISA
// ---------------------------------------------------------------------------

TEST(CfgIsa, PartitionsEveryInstructionExactlyOnce) {
  const isa::Image image = isa::assemble(isa::sample("find_index").source);
  const IsaCfg cfg = build_cfg(image);

  std::set<std::uint32_t> seen;
  for (const IsaBlock& b : cfg.blocks) {
    ASSERT_FALSE(b.instrs.empty());
    EXPECT_EQ(b.instrs.front().addr, b.start);
    std::uint32_t expect_addr = b.start;
    for (const IsaInstr& ii : b.instrs) {
      EXPECT_EQ(ii.addr, expect_addr) << "blocks hold contiguous instructions";
      EXPECT_TRUE(seen.insert(ii.addr).second) << "instruction in two blocks";
      expect_addr += isa::kInstrBytes;
    }
  }
  EXPECT_EQ(seen.size(), image.instruction_count());

  // block_at and block_containing agree.
  for (int i = 0; i < static_cast<int>(cfg.blocks.size()); ++i) {
    const IsaBlock& b = cfg.blocks[static_cast<std::size_t>(i)];
    EXPECT_EQ(cfg.block_at.at(b.start), i);
    for (const IsaInstr& ii : b.instrs) {
      EXPECT_EQ(cfg.block_containing(ii.addr), i);
    }
  }

  // Edge symmetry.
  for (int i = 0; i < static_cast<int>(cfg.blocks.size()); ++i) {
    for (const int s : cfg.blocks[static_cast<std::size_t>(i)].succs) {
      const auto& preds = cfg.blocks[static_cast<std::size_t>(s)].preds;
      EXPECT_NE(std::find(preds.begin(), preds.end(), i), preds.end());
    }
  }
}

TEST(CfgIsa, RootsCallGraphAndReturns) {
  const std::string src =
      "_start:\n"
      "    pushl $3\n"
      "    call helper\n"
      "    hlt\n"
      "helper:\n"
      "    pushl %ebp\n"
      "    movl %esp, %ebp\n"
      "    movl 8(%ebp), %eax\n"
      "    leave\n"
      "    ret\n"
      "loner:\n"
      "    movl $1, %eax\n"
      "    hlt\n";
  const isa::Image image = isa::assemble(src);
  const IsaCfg cfg = build_cfg(image);

  EXPECT_EQ(cfg.entry, image.symbol("_start"));
  ASSERT_EQ(cfg.call_targets.size(), 1u);
  EXPECT_EQ(cfg.call_targets[0], image.symbol("helper"));

  std::set<std::string> root_names;
  for (const IsaRoot& r : cfg.roots) root_names.insert(r.name);
  EXPECT_EQ(root_names, (std::set<std::string>{"_start", "helper", "loner"}));
  for (const IsaRoot& r : cfg.roots) {
    EXPECT_EQ(r.is_call_target, r.name == "helper") << r.name;
  }

  // function_blocks stays intraprocedural: _start's slice must not
  // absorb helper's body through the call edge.
  const std::vector<int> start_fn = function_blocks(cfg, cfg.entry);
  for (const int b : start_fn) {
    EXPECT_NE(cfg.blocks[static_cast<std::size_t>(b)].start, image.symbol("helper"));
  }
  EXPECT_TRUE(function_returns(cfg, image.symbol("helper")));
  EXPECT_FALSE(function_returns(cfg, cfg.entry));
}

TEST(CfgIsa, CompilerLocalLabelsAreNotRoots) {
  const std::string assembly =
      cc::compile_to_assembly("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }");
  const IsaCfg cfg = build_cfg(isa::assemble(assembly));
  for (const IsaRoot& r : cfg.roots) {
    EXPECT_NE(r.name.front(), '.') << r.name;
  }
}

// ---------------------------------------------------------------------------
// Dataflow engine
// ---------------------------------------------------------------------------

TEST(Dataflow, ReverseFlipsEdgesAndReachabilityRespectsEntries) {
  FlowGraph g;
  g.succs = {{1}, {2}, {}, {2}};  // 3 is disconnected from entry 0
  g.preds = {{}, {0}, {1, 3}, {}};
  g.entries = {0};
  const std::vector<bool> fwd = reachable(g);
  EXPECT_TRUE(fwd[0] && fwd[1] && fwd[2]);
  EXPECT_FALSE(fwd[3]);

  const FlowGraph r = reverse(g, {2});
  EXPECT_EQ(r.succs[2], (std::vector<int>{1, 3}));
  const std::vector<bool> bwd = reachable(r);
  EXPECT_TRUE(bwd[0] && bwd[1] && bwd[2] && bwd[3]);
}

// ---------------------------------------------------------------------------
// Mini-C checks: positive and negative per pass
// ---------------------------------------------------------------------------

TEST(UseBeforeInit, FlagsAReadOfAnUnassignedLocal) {
  check_c_fixture(
      "int main() {\n"
      "  int x;\n"
      "  return x;  // expect: use-before-init@3\n"
      "}\n");
}

TEST(UseBeforeInit, FlagsAMaybePathAndSaysMaybe) {
  const std::string src =
      "int f(int a) {\n"
      "  int x;\n"
      "  if (a) { x = 1; }\n"
      "  return x;  // expect: use-before-init@4\n"
      "}\n";
  check_c_fixture(src);
  const auto diags = analyze_program(cc::parse(src));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("may"), std::string::npos) << diags[0].message;
  EXPECT_EQ(diags[0].function, "f");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(UseBeforeInit, ShortCircuitAssignmentIsPrecise) {
  // x is assigned exactly on the paths that reach the then-branch.
  check_c_fixture(
      "int f(int c) {\n"
      "  int x;\n"
      "  if (c && (x = 5)) { return x; }\n"
      "  return 0;\n"
      "}\n");
}

TEST(UseBeforeInit, ParamsAndInitializedLocalsAreClean) {
  check_c_fixture(
      "int f(int a) {\n"
      "  int x = a + 1;\n"
      "  return x;\n"
      "}\n");
}

TEST(DeadStore, FlagsAnOverwrittenInitializer) {
  const std::string src =
      "int main() {\n"
      "  int x = 1;  // expect: dead-store@2\n"
      "  x = 2;\n"
      "  return x;\n"
      "}\n";
  check_c_fixture(src);
  const auto diags = analyze_program(cc::parse(src));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("initial value"), std::string::npos);
}

TEST(DeadStore, FlagsAStoreNoReadObserves) {
  check_c_fixture(
      "int main(int a) {\n"
      "  int x = a;\n"
      "  if (a > 0) { x = 7; return 1; }  // expect: dead-store@3\n"
      "  return x;\n"
      "}\n");
}

TEST(DeadStore, LoopCarriedStoresAreLive) {
  check_c_fixture(
      "int main() {\n"
      "  int s = 0;\n"
      "  int i = 0;\n"
      "  while (i < 3) { s = s + i; i = i + 1; }\n"
      "  return s;\n"
      "}\n");
}

TEST(Unreachable, FlagsCodeAfterReturnOnce) {
  const std::string src =
      "int main() {\n"
      "  return 1;\n"
      "  return 2;  // expect: unreachable@3\n"
      "}\n";
  check_c_fixture(src);
}

TEST(Unreachable, ReachableBranchesAreClean) {
  check_c_fixture(
      "int f(int a) {\n"
      "  if (a) { return 1; } else { return 2; }\n"
      "}\n");
}

TEST(ConstantCondition, FlagsAFoldableCondition) {
  const std::string src =
      "int main(int a) {\n"
      "  if (2 > 1) { return a; }  // expect: constant-condition@2\n"
      "  return 0;\n"
      "}\n";
  check_c_fixture(src);
  const auto diags = analyze_program(cc::parse(src));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("always true"), std::string::npos);
}

TEST(ConstantCondition, VariableConditionsAreClean) {
  check_c_fixture(
      "int main(int a) {\n"
      "  while (a > 0) { a = a - 1; }\n"
      "  return a;\n"
      "}\n");
}

TEST(MissingReturn, FlagsAFallOffPathInAnIntFunction) {
  const std::string src =
      "int f(int a) {  // expect: missing-return@1\n"
      "  if (a) { return 1; }\n"
      "}\n";
  check_c_fixture(src);
  const auto diags = analyze_program(cc::parse(src));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1);
}

TEST(MissingReturn, VoidFunctionsAndFullCoverageAreClean) {
  check_c_fixture(
      "void ping() { return; }\n"
      "int f(int a) {\n"
      "  if (a) { return 1; } else { return 2; }\n"
      "}\n");
}

// ---------------------------------------------------------------------------
// ISA checks: positive and negative per pass
// ---------------------------------------------------------------------------

TEST(StackBalance, FlagsARetWithALeftoverPushAtTheRightAddress) {
  const std::string src =
      "_start:\n"
      "    call leaky\n"
      "    hlt\n"
      "leaky:\n"
      "    pushl $1\n"
      "    ret\n"
      "# expect: stack-balance\n";
  check_isa_fixture(src);
  const isa::Image image = isa::assemble(src);
  const auto diags = lint_image(image);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].pass, "stack-balance");
  EXPECT_TRUE(diags[0].has_addr);
  EXPECT_EQ(diags[0].addr, image.symbol("leaky") + isa::kInstrBytes)
      << "the finding points at the ret instruction";
  EXPECT_EQ(diags[0].function, "leaky");
}

TEST(StackBalance, FlagsAMergeWhereBranchesDisagree) {
  check_isa_fixture(
      "branchy:\n"
      "    cmpl $0, %eax\n"
      "    je branchy_skip\n"
      "    pushl %eax\n"
      "branchy_skip:\n"
      "    popl %eax\n"
      "    ret\n"
      "# expect: stack-balance\n");
}

TEST(StackBalance, FramedRoutinesAndCleanLoopsPass) {
  check_isa_fixture(
      "_start:\n"
      "    pushl $9\n"
      "    call framed\n"
      "    hlt\n"
      "framed:\n"
      "    pushl %ebp\n"
      "    movl %esp, %ebp\n"
      "    pushl %ebx\n"
      "    movl 8(%ebp), %ebx\n"
      "    movl %ebx, %eax\n"
      "    popl %ebx\n"
      "    leave\n"
      "    ret\n");
}

TEST(UninitRegister, FlagsACalleeReadingAnUnwrittenRegister) {
  const std::string src =
      "_start:\n"
      "    call victim\n"
      "    hlt\n"
      "victim:\n"
      "    movl %ebx, %eax\n"
      "    ret\n"
      "# expect: uninit-register\n";
  check_isa_fixture(src);
  const isa::Image image = isa::assemble(src);
  const auto diags = lint_image(image);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].addr, image.symbol("victim"));
  EXPECT_NE(diags[0].message.find("%ebx"), std::string::npos);
}

TEST(UninitRegister, FlagsAMissingPrologue) {
  // 8(%ebp) without `movl %esp, %ebp` first: %ebp is the caller's.
  check_isa_fixture(
      "_start:\n"
      "    pushl $7\n"
      "    call no_prologue\n"
      "    hlt\n"
      "no_prologue:\n"
      "    movl 8(%ebp), %eax\n"
      "    ret\n"
      "# expect: uninit-register\n");
}

TEST(UninitRegister, EntryFragmentsAndZeroIdiomsAreClean) {
  // Un-jumped labels are entered with staged registers (maze floors);
  // xorl %r,%r defines without reading.
  check_isa_fixture(
      "fragment:\n"
      "    movl %eax, %ebx\n"
      "    xorl %ecx, %ecx\n"
      "    addl %ebx, %ecx\n"
      "    hlt\n");
}

TEST(CalleeSave, FlagsACallerRelyingOnAClobberedRegister) {
  const std::string src =
      "_start:\n"
      "    movl $5, %ebx\n"
      "    call clobber\n"
      "    movl %ebx, %eax\n"
      "    hlt\n"
      "clobber:\n"
      "    movl $9, %ebx\n"
      "    ret\n"
      "# expect: callee-save\n";
  check_isa_fixture(src);
  const isa::Image image = isa::assemble(src);
  const auto diags = lint_image(image);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].addr, image.symbol("_start") + 2 * isa::kInstrBytes);
}

TEST(CalleeSave, FlagsCallerSavedRegistersAcrossAnyCall) {
  check_isa_fixture(
      "_start:\n"
      "    movl $5, %ecx\n"
      "    call quiet\n"
      "    movl %ecx, %eax\n"
      "    hlt\n"
      "quiet:\n"
      "    ret\n"
      "# expect: callee-save\n");
}

TEST(CalleeSave, SaveIdiomAndTransitiveSavesAreClean) {
  // inner clobbers %ebx; middle saves it around its own call, so
  // calling middle is safe.
  check_isa_fixture(
      "_start:\n"
      "    movl $5, %ebx\n"
      "    call middle\n"
      "    movl %ebx, %eax\n"
      "    hlt\n"
      "middle:\n"
      "    pushl %ebx\n"
      "    call inner\n"
      "    popl %ebx\n"
      "    ret\n"
      "inner:\n"
      "    movl $9, %ebx\n"
      "    ret\n");
}

TEST(CalleeSave, TransitiveClobberPropagatesThroughWrappers) {
  // wrapper itself never writes %ebx but calls inner, which does.
  check_isa_fixture(
      "_start:\n"
      "    movl $5, %ebx\n"
      "    call wrapper\n"
      "    movl %ebx, %eax\n"
      "    hlt\n"
      "wrapper:\n"
      "    call inner\n"
      "    ret\n"
      "inner:\n"
      "    movl $9, %ebx\n"
      "    ret\n"
      "# expect: callee-save\n");
}

TEST(UnreachableBlock, FlagsCodeNoRootReaches) {
  const std::string src =
      "orphan_entry:\n"
      "    jmp orphan_end\n"
      "    movl $1, %eax\n"
      "    movl $2, %eax\n"
      "orphan_end:\n"
      "    hlt\n"
      "# expect: unreachable-block\n";
  check_isa_fixture(src);
  const isa::Image image = isa::assemble(src);
  const auto diags = lint_image(image);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].addr, image.symbol("orphan_entry") + isa::kInstrBytes);
  EXPECT_NE(diags[0].message.find("2 instruction(s)"), std::string::npos)
      << diags[0].message;
}

// ---------------------------------------------------------------------------
// Seeded-bug corpus: ten distinct bugs, every one caught where seeded.
// ---------------------------------------------------------------------------

TEST(SeededCorpus, EveryMiniCBugIsCaughtWithLineAttribution) {
  const std::vector<std::string> corpus = {
      // 1: straight use-before-init
      "int main() {\n"
      "  int x;\n"
      "  int y = x + 1;  // expect: use-before-init@3\n"
      "  return y;\n"
      "}\n",
      // 2: maybe-uninit through one arm of an if
      "int f(int a) {\n"
      "  int x;\n"
      "  if (a > 0) { x = a; }\n"
      "  return x;  // expect: use-before-init@4\n"
      "}\n",
      // 3: dead initializer
      "int main() {\n"
      "  int x = 41;  // expect: dead-store@2\n"
      "  x = 42;\n"
      "  return x;\n"
      "}\n",
      // 4: dead store on an early-return path
      "int f(int a) {\n"
      "  int x = a;\n"
      "  if (a) { x = 9; return a; }  // expect: dead-store@3\n"
      "  return x;\n"
      "}\n",
      // 5: unreachable tail
      "int main() {\n"
      "  return 0;\n"
      "  int x = 1;  // expect: unreachable@3\n"
      "  return x;\n"
      "}\n",
      // 6: constant condition (always false)\n
      "int main(int a) {\n"
      "  if (1 > 2) { return a; }  // expect: constant-condition@2\n"
      "  return 0;\n"
      "}\n",
      // 7: missing return
      "int f(int a) {  // expect: missing-return@1\n"
      "  if (a > 0) { return a; }\n"
      "}\n",
  };
  for (const std::string& src : corpus) check_c_fixture(src);
}

TEST(SeededCorpus, EveryIsaBugIsCaught) {
  const std::vector<std::string> corpus = {
      // 8: leftover push before ret
      "_start:\n"
      "    call leaky\n"
      "    hlt\n"
      "leaky:\n"
      "    pushl %ebp\n"
      "    movl %esp, %ebp\n"
      "    pushl $5\n"
      "    movl %ebp, %esp\n"  // manual teardown forgets the saved ebp
      "    ret\n"
      "# expect: stack-balance\n",
      // 9: pop on only one branch
      "branchy:\n"
      "    cmpl $1, %eax\n"
      "    pushl %eax\n"
      "    je branchy_done\n"
      "    popl %ebx\n"
      "branchy_done:\n"
      "    ret\n"
      "# expect: stack-balance\n",
      // 10: read of a never-written register in a called routine
      "_start:\n"
      "    call summer\n"
      "    hlt\n"
      "summer:\n"
      "    addl %edx, %eax\n"
      "    ret\n"
      "# expect: uninit-register\n"
      "# expect: uninit-register\n",  // both %edx and %eax are unwritten
      // 11: forgotten prologue
      "_start:\n"
      "    pushl $1\n"
      "    call f\n"
      "    hlt\n"
      "f:\n"
      "    movl 8(%ebp), %eax\n"
      "    ret\n"
      "# expect: uninit-register\n",
      // 12: caller relies on a clobbered callee-save register
      "_start:\n"
      "    movl $3, %esi\n"
      "    call smash\n"
      "    movl %esi, %eax\n"
      "    hlt\n"
      "smash:\n"
      "    movl $0, %esi\n"
      "    ret\n"
      "# expect: callee-save\n",
      // 13: dead code after an unconditional jump
      "top:\n"
      "    jmp bottom\n"
      "    movl $7, %eax\n"
      "bottom:\n"
      "    hlt\n"
      "# expect: unreachable-block\n",
  };
  for (const std::string& src : corpus) check_isa_fixture(src);
}

// ---------------------------------------------------------------------------
// Self-lint: every bundled artifact must come back clean.
// ---------------------------------------------------------------------------

TEST(SelfLint, AllLab4SamplesAreClean) {
  for (const isa::AsmSample& s : isa::lab4_samples()) {
    // Standalone routine...
    const auto alone = lint_image(isa::assemble(s.source));
    EXPECT_TRUE(alone.empty()) << s.name << ":\n" << render(alone);
    // ...and under a call harness, where the routine is a call target
    // and the strict cdecl boundary applies.
    const std::string harness =
        "_start:\n    pushl $2\n    pushl $4096\n    pushl $4096\n    call " + s.name +
        "\n    hlt\n" + s.source;
    const auto called = lint_image(isa::assemble(harness));
    EXPECT_TRUE(called.empty()) << s.name << " (called):\n" << render(called);
  }
}

TEST(SelfLint, MazeImagesAreClean) {
  for (const unsigned floors : {1u, 5u, 10u}) {
    const isa::Maze maze(floors);
    const auto diags = lint_image(maze.image());
    EXPECT_TRUE(diags.empty()) << floors << " floors:\n" << render(diags);
  }
}

const std::vector<std::string>& clean_mini_c_corpus() {
  static const std::vector<std::string> kCorpus = {
      "int main() { return 42; }\n",
      "int main() { int x = 1; return x; }\n",
      "int add(int a, int b) { return a + b; }\n"
      "int main() { return add(40, 2); }\n",
      "int fact(int n) {\n"
      "  if (n < 2) { return 1; }\n"
      "  return n * fact(n - 1);\n"
      "}\n"
      "int main() { return fact(5); }\n",
      "int main(int a) {\n"
      "  int s = 0;\n"
      "  int i = 0;\n"
      "  while (i < a) { s = s + i; i = i + 1; }\n"
      "  return s;\n"
      "}\n",
      "int sign(int x) {\n"
      "  if (x > 0) { return 1; } else { if (x < 0) { return 0 - 1; } else { return 0; } }\n"
      "}\n"
      "int main(int a) { return sign(a); }\n",
      "int popcount(int v) {\n"
      "  int n = 0;\n"
      "  while (v != 0) { n = n + (v & 1); v = v >> 1; }\n"
      "  return n;\n"
      "}\n"
      "int main(int a) { return popcount(a); }\n",
      "int both(int a, int b) { return a && b || !a; }\n"
      "int main(int a, int b) { return both(a, b); }\n",
  };
  return kCorpus;
}

TEST(SelfLint, CompiledMiniCFixturesAreCleanAtBothLevels) {
  for (const std::string& src : clean_mini_c_corpus()) {
    for (const bool optimize : {false, true}) {
      cc::PipelineOptions opts;
      opts.optimize = optimize;
      opts.werror = true;  // C-level findings would throw here
      const cc::PipelineResult result = cc::compile_pipeline(src, opts);
      EXPECT_TRUE(result.diagnostics.empty()) << src << render(result.diagnostics);
      const auto isa_diags = lint_image(result.image);
      EXPECT_TRUE(isa_diags.empty())
          << "(optimize=" << optimize << ")\n" << src << render(isa_diags) << result.assembly;
    }
  }
}

TEST(SelfLint, CompiledImagesWithEntryStubsAreClean) {
  const auto image = cc::compile_with_entry(
      "int main(int a, int b) {\n"
      "  int best = a;\n"
      "  if (b > a) { best = b; }\n"
      "  return best;\n"
      "}\n",
      {3, 9});
  const auto diags = lint_image(image);
  EXPECT_TRUE(diags.empty()) << render(diags);
}

// ---------------------------------------------------------------------------
// Diagnostic model
// ---------------------------------------------------------------------------

TEST(DiagnosticModel, StableOrderDedupAndRenderers) {
  Diagnostic a;
  a.pass = "dead-store";
  a.line = 4;
  a.function = "main";
  a.message = "m";
  Diagnostic b = a;
  b.line = 2;
  Diagnostic c;  // ISA-side
  c.pass = "stack-balance";
  c.addr = 0x1040;
  c.has_addr = true;
  c.function = "leaky";
  c.message = "off";
  std::vector<Diagnostic> diags = {a, c, b, a};  // duplicate `a`
  normalize(diags);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_TRUE(diags[0].has_addr) << "address findings carry line 0, so they sort first";
  EXPECT_EQ(diags[1].line, 2);
  EXPECT_EQ(diags[2].line, 4);

  EXPECT_NE(diags[0].to_string().find("0x1040"), std::string::npos);
  const std::string json = render_json(diags);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"pass\":\"dead-store\""), std::string::npos);
  EXPECT_NE(json.find("\"addr\":\"0x1040\""), std::string::npos);
}

TEST(DiagnosticModel, ExpectationsParseAndVerify) {
  const auto exps = parse_expectations(
      "// expect: use-before-init@7\n# expect: callee-save\nint x; // no tag\n");
  ASSERT_EQ(exps.size(), 2u);
  EXPECT_EQ(exps[0].pass, "use-before-init");
  EXPECT_EQ(exps[0].line, 7);
  EXPECT_EQ(exps[1].pass, "callee-save");
  EXPECT_EQ(exps[1].line, 0);

  Diagnostic d;
  d.pass = "use-before-init";
  d.line = 7;
  d.message = "m";
  EXPECT_TRUE(verify_expected({d}, exps).size() == 1u)
      << "the wildcard callee-save expectation goes unclaimed";
  d.line = 8;
  EXPECT_EQ(verify_expected({d}, exps).size(), 3u)
      << "wrong line: unexpected diagnostic + two unclaimed expectations";
}

// ---------------------------------------------------------------------------
// Driver + debugger wiring
// ---------------------------------------------------------------------------

TEST(Driver, AnalyzeStageIsOnByDefaultAndWerrorThrows) {
  const std::string buggy = "int main() {\n  int x;\n  return x;\n}\n";
  const cc::PipelineResult result = cc::compile_pipeline(buggy);
  ASSERT_TRUE(has_pass(result.diagnostics, "use-before-init"));
  EXPECT_GT(result.image.instruction_count(), 0u) << "warnings do not block codegen";

  cc::PipelineOptions strict;
  strict.werror = true;
  try {
    (void)cc::compile_pipeline(buggy, strict);
    FAIL() << "werror must turn findings into errors";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("use-before-init"), std::string::npos) << e.what();
  }

  cc::PipelineOptions off;
  off.analyze = false;
  EXPECT_TRUE(cc::compile_pipeline(buggy, off).diagnostics.empty());
}

TEST(Debugger, LintCommandReportsAndCleanImageSaysSo) {
  const isa::Image buggy = isa::assemble(
      "_start:\n"
      "    call leaky\n"
      "    hlt\n"
      "leaky:\n"
      "    pushl %eax\n"
      "    ret\n");
  isa::Machine machine;
  machine.load(buggy);
  isa::Debugger dbg(machine);
  attach_lint(dbg, buggy);
  const std::string out = dbg.execute("lint");
  EXPECT_NE(out.find("stack-balance"), std::string::npos) << out;

  const isa::Image clean = isa::assemble(isa::sample("abs_value").source);
  isa::Machine machine2;
  machine2.load(clean);
  isa::Debugger dbg2(machine2);
  attach_lint(dbg2, clean);
  EXPECT_NE(dbg2.execute("lint").find("no findings"), std::string::npos);
  EXPECT_THROW((void)dbg2.execute("lint extra-arg"), Error);
}

}  // namespace
}  // namespace cs31::analyze
