// cs31::grader tests: the toolchain verdicts, the content-hash cache
// (determinism, accounting, in-flight collapse), the service's
// determinism contract — byte-identical report streams across worker
// counts and queue capacities — poison resilience, and the toolchain
// re-entrancy audit (concurrent compiles byte-identical to serial).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "ccomp/codegen.hpp"
#include "common/error.hpp"
#include "grader/cache.hpp"
#include "grader/loadgen.hpp"
#include "grader/service.hpp"
#include "grader/submission.hpp"
#include "grader/toolchain.hpp"

namespace cs31::grader {
namespace {

/// Fast deterministic budget for tests: poison spins cost ~20k emulated
/// instructions instead of the service default 2M.
ToolchainLimits test_limits() { return ToolchainLimits{20'000, 10.0}; }

// --- content hash ------------------------------------------------------

TEST(Hash, DeterministicAndContentSensitive) {
  const std::string body = mini_c_body(7);
  EXPECT_EQ(content_hash(SubmissionKind::MiniC, body),
            content_hash(SubmissionKind::MiniC, body));
  EXPECT_NE(content_hash(SubmissionKind::MiniC, body),
            content_hash(SubmissionKind::MiniC, body + " "));
  // Same bytes under a different toolchain must not share a verdict.
  EXPECT_NE(content_hash(SubmissionKind::MiniC, body),
            content_hash(SubmissionKind::Assembly, body));
  EXPECT_EQ(hash_hex(content_hash(SubmissionKind::MiniC, body)).size(), 18u);
}

TEST(Hash, IgnoresTheSubmissionId) {
  Submission a{"alice/try1", SubmissionKind::Assembly, assembly_body(3)};
  Submission b{"bob/try9", SubmissionKind::Assembly, assembly_body(3)};
  EXPECT_EQ(content_hash(a), content_hash(b));
}

// --- toolchain verdicts ------------------------------------------------

TEST(Toolchain, MiniCCleanRunMatchesDirectExecution) {
  const std::string body = mini_c_body(1);
  const Verdict v = run_toolchain({"s", SubmissionKind::MiniC, body}, test_limits());
  EXPECT_EQ(v.status, "ok") << v.to_json();
  EXPECT_EQ(v.score, 100);
  EXPECT_GT(v.instructions, 0u);
  EXPECT_EQ(v.result, cc::run_mini_c(body));
}

TEST(Toolchain, MiniCArgsDirectiveFeedsMain) {
  const std::string body = "// args: 30 12\nint main(int a, int b) { return a + b; }\n";
  const Verdict v = run_toolchain({"s", SubmissionKind::MiniC, body}, test_limits());
  EXPECT_EQ(v.status, "ok") << v.to_json();
  EXPECT_EQ(v.result, 42);
}

TEST(Toolchain, MiniCSyntaxErrorIsAVerdict) {
  const Verdict v =
      run_toolchain({"s", SubmissionKind::MiniC, poison_bad_mini_c()}, test_limits());
  EXPECT_EQ(v.status, "compile_error");
  EXPECT_EQ(v.score, 0);
  ASSERT_FALSE(v.notes.empty());
}

TEST(Toolchain, MiniCLintFindingsDeductButRun) {
  const std::string body =
      "int main() {\n  int x = 5;\n  x = 6;\n  return x;\n}\n";  // dead store on line 2
  const Verdict v = run_toolchain({"s", SubmissionKind::MiniC, body}, test_limits());
  EXPECT_EQ(v.status, "ok_with_findings") << v.to_json();
  EXPECT_LT(v.score, 100);
  EXPECT_GE(v.score, 60);
  EXPECT_EQ(v.result, 6);
  ASSERT_FALSE(v.notes.empty());
  EXPECT_NE(v.notes[0].find("dead-store"), std::string::npos) << v.notes[0];
}

TEST(Toolchain, MiniCPoisonSpinTimesOutDeterministically) {
  const Verdict v =
      run_toolchain({"s", SubmissionKind::MiniC, poison_spin_mini_c()}, test_limits());
  EXPECT_EQ(v.status, "timeout") << v.to_json();
  EXPECT_EQ(v.instructions, test_limits().max_instructions);
  ASSERT_FALSE(v.notes.empty());
  EXPECT_NE(v.notes[0].find("instruction budget"), std::string::npos);
}

TEST(Toolchain, AssemblyCleanRun) {
  // assembly_body sums base + iters + iters-1 + ... + 1.
  const Verdict v =
      run_toolchain({"s", SubmissionKind::Assembly, assembly_body(0)}, test_limits());
  EXPECT_EQ(v.status, "ok") << v.to_json();
  EXPECT_EQ(v.score, 100);
  EXPECT_EQ(v.result, 0 + 3 + 2 + 1);
}

TEST(Toolchain, AssemblySpinTimesOut) {
  const Verdict v =
      run_toolchain({"s", SubmissionKind::Assembly, poison_spin_assembly()}, test_limits());
  EXPECT_EQ(v.status, "timeout");
  EXPECT_EQ(v.score, 5);
}

TEST(Toolchain, AssemblySegfaultIsRuntimeError) {
  const std::string body =
      "_start:\n    movl $0, %eax\n    movl 2000000000(%eax), %ebx\n    hlt\n";
  const Verdict v = run_toolchain({"s", SubmissionKind::Assembly, body}, test_limits());
  EXPECT_EQ(v.status, "runtime_error") << v.to_json();
  EXPECT_EQ(v.score, 10);
  ASSERT_FALSE(v.notes.empty());
  EXPECT_NE(v.notes.back().find("segmentation"), std::string::npos) << v.notes.back();
}

TEST(Toolchain, LifeBarrieredScenarioIsRaceFree) {
  const Verdict v = run_toolchain(
      {"s", SubmissionKind::LifeTrace, life_body(4, /*with_barrier=*/true)}, test_limits());
  EXPECT_EQ(v.status, "race_free") << v.to_json();
  EXPECT_EQ(v.score, 100);
  EXPECT_EQ(v.races, 0u);
  EXPECT_GT(v.events, 0u);
}

TEST(Toolchain, LifeForgottenBarrierIsCaught) {
  const Verdict v = run_toolchain(
      {"s", SubmissionKind::LifeTrace, life_body(4, /*with_barrier=*/false)}, test_limits());
  EXPECT_EQ(v.status, "race_found") << v.to_json();
  EXPECT_GT(v.races, 0u);
  ASSERT_FALSE(v.notes.empty());
  EXPECT_NE(v.notes[0].find("race on"), std::string::npos);
}

TEST(Toolchain, LifeMalformedConfigIsInvalid) {
  const Verdict v =
      run_toolchain({"s", SubmissionKind::LifeTrace, poison_bad_life()}, test_limits());
  EXPECT_EQ(v.status, "invalid");
  EXPECT_EQ(v.score, 0);
}

TEST(Toolchain, ScriptCleanIsCertifiedRaceFree) {
  const Verdict v = run_toolchain(
      {"s", SubmissionKind::Script, script_body_clean(4)}, test_limits());
  EXPECT_EQ(v.status, "race_free") << v.to_json();
  EXPECT_EQ(v.score, 100);
  EXPECT_EQ(v.races, 0u);
  EXPECT_GT(v.result, 0) << "schedules replayed";
  EXPECT_GT(v.events, 0u);
}

TEST(Toolchain, ScriptForgottenLockIsCaughtAndExplained) {
  const Verdict v = run_toolchain(
      {"s", SubmissionKind::Script, script_body_racy(4)}, test_limits());
  EXPECT_EQ(v.status, "race_found") << v.to_json();
  EXPECT_EQ(v.score, 30);
  EXPECT_GT(v.races, 0u);
  // Both the static prediction and the dynamic confirmation ride along
  // as notes: the analyzer's candidate first, the explorer's site pair
  // last.
  bool static_note = false, dynamic_note = false;
  for (const std::string& note : v.notes) {
    if (note.find("static-race") != std::string::npos) static_note = true;
    if (note.find("race on c") != std::string::npos) dynamic_note = true;
  }
  EXPECT_TRUE(static_note) << v.to_json();
  EXPECT_TRUE(dynamic_note) << v.to_json();
}

TEST(Toolchain, ScriptAbbaNestIsADeadlockVerdict) {
  const Verdict v = run_toolchain(
      {"s", SubmissionKind::Script, script_body_deadlock(4)}, test_limits());
  EXPECT_EQ(v.status, "deadlock_found") << v.to_json();
  EXPECT_EQ(v.score, 20);
  bool cycle_note = false;
  for (const std::string& note : v.notes) {
    if (note.find("lock-order-cycle") != std::string::npos) cycle_note = true;
  }
  EXPECT_TRUE(cycle_note) << "static prediction missing: " << v.to_json();
}

TEST(Toolchain, ScriptMalformedOpIsInvalid) {
  const Verdict v = run_toolchain(
      {"s", SubmissionKind::Script, poison_bad_script()}, test_limits());
  EXPECT_EQ(v.status, "invalid") << v.to_json();
  EXPECT_EQ(v.score, 0);
  ASSERT_FALSE(v.notes.empty());
}

TEST(Toolchain, ScriptVerdictIsDeterministic) {
  for (const std::string& body :
       {script_body_clean(11), script_body_racy(11), script_body_deadlock(11)}) {
    const Verdict a = run_toolchain({"a", SubmissionKind::Script, body}, test_limits());
    const Verdict b = run_toolchain({"b", SubmissionKind::Script, body}, test_limits());
    EXPECT_EQ(a.to_json(), b.to_json());
  }
}

TEST(Toolchain, VerdictJsonIsStable) {
  const Verdict v =
      run_toolchain({"s", SubmissionKind::Assembly, assembly_body(9)}, test_limits());
  EXPECT_EQ(v.to_json(), run_toolchain({"other-id", SubmissionKind::Assembly,
                                        assembly_body(9)}, test_limits())
                             .to_json());
  EXPECT_EQ(v.to_json().find("{\"status\":"), 0u);
}

// --- verdict cache -----------------------------------------------------

TEST(Cache, HitMissAccounting) {
  VerdictCache cache;
  const ContentHash h1 = 11, h2 = 22;
  const auto make = [](int score) {
    return [score] {
      Verdict v;
      v.status = "ok";
      v.score = score;
      return v;
    };
  };
  EXPECT_EQ(cache.get_or_compute(h1, make(100)).score, 100);
  EXPECT_EQ(cache.get_or_compute(h1, make(50)).score, 100) << "hit must not recompute";
  EXPECT_EQ(cache.get_or_compute(h2, make(70)).score, 70);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.collapsed, 0u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(Cache, ConcurrentIdenticalLookupsComputeOnce) {
  // The duplicate-storm kernel: N threads race on one hash; exactly one
  // runs the (slow) compute, the rest either collapse onto it or hit
  // the finished entry.
  VerdictCache cache;
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Verdict> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t] = cache.get_or_compute(777, [&] {
        computes.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        Verdict v;
        v.status = "ok";
        v.score = 88;
        return v;
      });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), 1);
  for (const Verdict& v : seen) EXPECT_EQ(v.score, 88);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.collapsed, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(Cache, ComputeExceptionBecomesCachedGraderError) {
  VerdictCache cache;
  const Verdict v = cache.get_or_compute(5, []() -> Verdict {
    throw std::runtime_error("toolchain bug");
  });
  EXPECT_EQ(v.status, "grader_error");
  ASSERT_FALSE(v.notes.empty());
  EXPECT_EQ(v.notes[0], "toolchain bug");
  // Waiters and later lookups get the same verdict — no deadlock, no
  // retry storm.
  EXPECT_EQ(cache.get_or_compute(5, [] { return Verdict{}; }).status, "grader_error");
  EXPECT_EQ(cache.stats().hits, 1u);
}

// --- the service: determinism, storms, poison --------------------------

std::string grade_stream(const LoadPlan& plan, GraderService::Options options) {
  GraderService service(options);
  service.submit_all(plan.submissions);
  service.wait_idle();
  return service.report_stream();
}

GraderService::Options test_options(std::size_t workers, std::size_t capacity = 64,
                                    bool use_cache = true) {
  GraderService::Options options;
  options.workers = workers;
  options.queue_capacity = capacity;
  options.use_cache = use_cache;
  options.limits = test_limits();
  return options;
}

TEST(Service, ReportStreamByteIdenticalAcrossWorkerCounts) {
  // The acceptance bar: same batch -> byte-identical stream for any
  // worker count, any queue capacity, cache on or off.
  const LoadPlan plan = make_scenario("steady", 48, /*seed=*/3);
  const std::string reference = grade_stream(plan, test_options(1));
  ASSERT_FALSE(reference.empty());
  for (const std::size_t workers : {2u, 4u, 8u}) {
    EXPECT_EQ(grade_stream(plan, test_options(workers)), reference)
        << workers << " workers diverged";
  }
  EXPECT_EQ(grade_stream(plan, test_options(4, /*capacity=*/2)), reference)
      << "capacity-2 backpressured queue diverged";
  EXPECT_EQ(grade_stream(plan, test_options(4, 64, /*use_cache=*/false)), reference)
      << "cache off diverged";
}

TEST(Service, StreamCoversEverySubmissionInArrivalOrder) {
  const LoadPlan plan = make_scenario("steady", 30, 1);
  GraderService service(test_options(4));
  service.submit_all(plan.submissions);
  service.wait_idle();
  const auto lines = service.report_lines();
  ASSERT_EQ(lines.size(), plan.submissions.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("{\"id\":" + json_quote(plan.submissions[i].id)), 0u)
        << "line " << i << " out of arrival order: " << lines[i];
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, plan.submissions.size());
  EXPECT_EQ(stats.graded, plan.submissions.size());
  std::uint64_t per_worker_total = 0;
  for (const std::uint64_t graded : stats.graded_per_worker) per_worker_total += graded;
  EXPECT_EQ(per_worker_total, stats.graded);
}

TEST(Service, DuplicateStormCollapsesToOneToolchainRun) {
  // N identical bodies -> 1 toolchain run, N reports identical except
  // for the envelope id.
  constexpr std::size_t kCount = 64;
  std::vector<Submission> storm;
  const std::string body = mini_c_body(12);
  for (std::size_t i = 0; i < kCount; ++i) {
    storm.push_back({"storm/" + std::to_string(i), SubmissionKind::MiniC, body});
  }
  GraderService service(test_options(4));
  service.submit_all(std::move(storm));
  service.wait_idle();
  const auto stats = service.stats();
  EXPECT_EQ(stats.graded, kCount);
  EXPECT_EQ(stats.toolchain_runs, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits + stats.cache.collapsed, kCount - 1);
  // Identical verdicts: strip the id field (everything from "kind" on
  // must match byte-for-byte).
  const auto lines = service.report_lines();
  const auto tail = [](const std::string& line) {
    return line.substr(line.find("\"kind\""));
  };
  for (const std::string& line : lines) EXPECT_EQ(tail(line), tail(lines[0]));
}

TEST(Service, MixedStormStillCollapsesPerBody) {
  const LoadPlan plan = make_scenario("duplicate_storm", 96, 2);
  std::set<ContentHash> distinct;
  for (const Submission& s : plan.submissions) distinct.insert(content_hash(s));
  GraderService service(test_options(4));
  service.submit_all(plan.submissions);
  service.wait_idle();
  const auto stats = service.stats();
  EXPECT_EQ(stats.graded, plan.submissions.size());
  EXPECT_EQ(stats.toolchain_runs, distinct.size());
  EXPECT_EQ(stats.cache.misses, distinct.size());
}

TEST(Service, PoisonSubmissionsNeverTakeDownThePool) {
  // Spins, syntax errors, and malformed configs ride along with good
  // submissions; every single one must come back with a report and the
  // service must stay usable afterwards.
  const LoadPlan plan = make_scenario("poison", 48, 5);
  GraderService service(test_options(4, /*capacity=*/8));
  service.submit_all(plan.submissions);
  service.wait_idle();
  const auto lines = service.report_lines();
  ASSERT_EQ(lines.size(), plan.submissions.size());
  std::size_t timeouts = 0, invalids = 0, compile_errors = 0, good = 0;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    if (line.find("\"status\":\"timeout\"") != std::string::npos) ++timeouts;
    if (line.find("\"status\":\"invalid\"") != std::string::npos) ++invalids;
    if (line.find("\"status\":\"compile_error\"") != std::string::npos) ++compile_errors;
    if (line.find("\"status\":\"ok\"") != std::string::npos ||
        line.find("\"status\":\"ok_with_findings\"") != std::string::npos ||
        line.find("\"status\":\"race_free\"") != std::string::npos ||
        line.find("\"status\":\"race_found\"") != std::string::npos) {
      ++good;
    }
  }
  EXPECT_GT(timeouts, 0u);
  EXPECT_GT(invalids, 0u);
  EXPECT_GT(compile_errors, 0u);
  EXPECT_EQ(good, plan.submissions.size() - timeouts - invalids - compile_errors);
  // The pool survived: a fresh submission still grades.
  service.submit({"after/0", SubmissionKind::Assembly, assembly_body(1)});
  service.wait_idle();
  EXPECT_EQ(service.stats().graded, plan.submissions.size() + 1);
  EXPECT_NE(service.report_lines().back().find("\"status\":\"ok\""), std::string::npos);
}

TEST(Service, ScriptReviewBatchGradesEveryVerdictKind) {
  // The concurrency homework batch end to end: clean, racy, deadlocking,
  // and malformed scripts all come back with the right verdicts, and
  // the stream stays byte-identical across worker counts like every
  // other scenario.
  const LoadPlan plan = make_scenario("script_review", 24, 6);
  const std::string reference = grade_stream(plan, test_options(1));
  EXPECT_EQ(grade_stream(plan, test_options(4)), reference) << "4 workers diverged";
  GraderService service(test_options(4));
  service.submit_all(plan.submissions);
  service.wait_idle();
  const auto lines = service.report_lines();
  ASSERT_EQ(lines.size(), plan.submissions.size());
  std::size_t race_free = 0, race_found = 0, deadlock_found = 0, invalid = 0;
  for (const std::string& line : lines) {
    if (line.find("\"status\":\"race_free\"") != std::string::npos) ++race_free;
    if (line.find("\"status\":\"race_found\"") != std::string::npos) ++race_found;
    if (line.find("\"status\":\"deadlock_found\"") != std::string::npos) ++deadlock_found;
    if (line.find("\"status\":\"invalid\"") != std::string::npos) ++invalid;
  }
  EXPECT_GT(race_free, 0u);
  EXPECT_GT(race_found, 0u);
  EXPECT_GT(deadlock_found, 0u);
  EXPECT_GT(invalid, 0u);
  EXPECT_EQ(race_free + race_found + deadlock_found + invalid, lines.size());
}

TEST(Service, SingleWorkerCapacityOneBackpressures) {
  GraderService service(test_options(1, /*capacity=*/1));
  std::vector<Submission> batch;
  for (std::size_t i = 0; i < 16; ++i) {
    batch.push_back({"bp/" + std::to_string(i), SubmissionKind::MiniC, mini_c_body(i)});
  }
  service.submit_all(std::move(batch));
  service.wait_idle();
  EXPECT_EQ(service.stats().graded, 16u);
}

TEST(Service, BurstyPlanGradesEveryBurst) {
  const LoadPlan plan = make_scenario("bursty", 40, 4);
  std::size_t total = 0;
  for (const std::size_t burst : plan.bursts) total += burst;
  ASSERT_EQ(total, plan.submissions.size());
  GraderService service(test_options(2, /*capacity=*/4));
  std::size_t next = 0;
  for (const std::size_t burst : plan.bursts) {
    for (std::size_t i = 0; i < burst; ++i) {
      service.submit(plan.submissions[next++]);
    }
    service.wait_idle();  // the lull between deadline spikes
  }
  EXPECT_EQ(service.stats().graded, plan.submissions.size());
}

// --- toolchain re-entrancy audit (satellite: shared-state check) -------

TEST(Reentrancy, EightConcurrentCompileRunsMatchSerialByteForByte) {
  // The audit's executable form: 8 distinct submissions compiled and
  // executed from 8 threads at once must produce the same assembly text
  // and the same results as the serial pass. Any hidden shared state in
  // the lexer/parser/codegen/assembler/machine would show up here (and
  // under TSan in the sanitizer tier).
  constexpr std::size_t kThreads = 8;
  std::vector<std::string> sources;
  for (std::size_t i = 0; i < kThreads; ++i) sources.push_back(mini_c_body(100 + i));

  std::vector<std::string> serial_asm(kThreads);
  std::vector<std::int32_t> serial_result(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    serial_asm[i] = cc::compile_to_assembly(sources[i]);
    serial_result[i] = cc::run_mini_c(sources[i]);
  }

  std::vector<std::string> threaded_asm(kThreads);
  std::vector<std::int32_t> threaded_result(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      threaded_asm[i] = cc::compile_to_assembly(sources[i]);
      threaded_result[i] = cc::run_mini_c(sources[i]);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(threaded_asm[i], serial_asm[i]) << "source " << i;
    EXPECT_EQ(threaded_result[i], serial_result[i]) << "source " << i;
  }
}

TEST(Reentrancy, ConcurrentFullToolchainVerdictsMatchSerial) {
  // Same audit one level up: the whole grading toolchain (including
  // lint, the assembler, and traced Life) from 8 threads at once.
  const LoadPlan plan = make_scenario("steady", 8, 9);
  std::vector<Verdict> serial;
  serial.reserve(plan.submissions.size());
  for (const Submission& s : plan.submissions) {
    serial.push_back(run_toolchain(s, test_limits()));
  }
  std::vector<Verdict> threaded(plan.submissions.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < plan.submissions.size(); ++i) {
    threads.emplace_back(
        [&, i] { threaded[i] = run_toolchain(plan.submissions[i], test_limits()); });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < plan.submissions.size(); ++i) {
    EXPECT_EQ(threaded[i].to_json(), serial[i].to_json()) << "submission " << i;
  }
}

// --- load generator ----------------------------------------------------

TEST(LoadGen, ScenariosAreDeterministicInSeed) {
  for (const std::string& name : scenario_names()) {
    const LoadPlan a = make_scenario(name, 24, 7);
    const LoadPlan b = make_scenario(name, 24, 7);
    ASSERT_EQ(a.submissions.size(), 24u) << name;
    EXPECT_EQ(a.bursts, b.bursts) << name;
    for (std::size_t i = 0; i < a.submissions.size(); ++i) {
      EXPECT_EQ(a.submissions[i].id, b.submissions[i].id) << name;
      EXPECT_EQ(a.submissions[i].body, b.submissions[i].body) << name;
    }
  }
  EXPECT_THROW((void)make_scenario("no-such-scenario", 4, 1), Error);
}

TEST(LoadGen, SteadyBodiesAreDistinct) {
  const LoadPlan plan = make_scenario("steady", 30, 1);
  std::set<ContentHash> hashes;
  for (const Submission& s : plan.submissions) hashes.insert(content_hash(s));
  EXPECT_EQ(hashes.size(), plan.submissions.size());
}

TEST(LoadGen, DuplicateStormIsMostlyDuplicates) {
  const LoadPlan plan = make_scenario("duplicate_storm", 128, 1);
  std::set<ContentHash> hashes;
  for (const Submission& s : plan.submissions) hashes.insert(content_hash(s));
  EXPECT_LT(hashes.size(), plan.submissions.size() / 8);
}

}  // namespace
}  // namespace cs31::grader
