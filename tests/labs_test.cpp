// Lab 2 (sorting) and Lab 4.1 (file statistics) tests, with a
// parameterized sweep comparing every sort against std::sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "labs/filestats.hpp"
#include "labs/sorting.hpp"

namespace cs31::labs {
namespace {

using SortFn = std::function<void(std::span<int>)>;

struct SortCase {
  const char* name;
  SortFn fn;
};

class SortProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {
 public:
  static std::vector<SortCase> sorts() {
    return {
        {"bubble", [](std::span<int> d) { bubble_sort(d); }},
        {"insertion", [](std::span<int> d) { insertion_sort(d); }},
        {"selection", [](std::span<int> d) { selection_sort(d); }},
        {"pmerge1", [](std::span<int> d) { parallel_merge_sort(d, 1); }},
        {"pmerge4", [](std::span<int> d) { parallel_merge_sort(d, 4); }},
        {"pmerge3-cutoff1", [](std::span<int> d) { parallel_merge_sort(d, 3, 1); }},
    };
  }
};

TEST_P(SortProperty, MatchesStdSortOnRandomData) {
  const auto [seed, n] = GetParam();
  for (const SortCase& sc : sorts()) {
    std::vector<int> data(n);
    fill_random(data, static_cast<std::uint32_t>(seed));
    std::vector<int> expected = data;
    std::sort(expected.begin(), expected.end());
    sc.fn(data);
    EXPECT_EQ(data, expected) << sc.name << " n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0u, 1u, 2u, 17u, 100u,
                                                              1000u)));

TEST(Sorts, HandleSortedAndReversedInput) {
  std::vector<int> asc = {1, 2, 3, 4, 5};
  std::vector<int> desc = {5, 4, 3, 2, 1};
  bubble_sort(asc);
  EXPECT_TRUE(is_sorted(asc));
  bubble_sort(desc);
  EXPECT_EQ(desc, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Sorts, StableUnderDuplicates) {
  std::vector<int> dups = {3, 1, 3, 1, 3, 1};
  insertion_sort(dups);
  EXPECT_EQ(dups, (std::vector<int>{1, 1, 1, 3, 3, 3}));
}

TEST(Sorts, IsSortedPredicate) {
  EXPECT_TRUE(is_sorted(std::vector<int>{}));
  EXPECT_TRUE(is_sorted(std::vector<int>{7}));
  EXPECT_TRUE(is_sorted(std::vector<int>{1, 1, 2}));
  EXPECT_FALSE(is_sorted(std::vector<int>{2, 1}));
}

TEST(Sorts, ParallelMergeSortValidation) {
  std::vector<int> d = {3, 1, 2};
  EXPECT_THROW(parallel_merge_sort(d, 0), cs31::Error);
}

TEST(Stats, ComputesMeanMedianMinMax) {
  const Stats s = compute_stats({4, 1, 3, 2});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 4);
  const Stats odd = compute_stats({9, 1, 5});
  EXPECT_DOUBLE_EQ(odd.median, 5);
  EXPECT_THROW((void)compute_stats({}), cs31::Error);
}

TEST(Stats, ParsesLabFileFormat) {
  const std::vector<double> v = parse_values("3\n1.5 2.5\n3.5\n");
  EXPECT_EQ(v, (std::vector<double>{1.5, 2.5, 3.5}));
  EXPECT_THROW(parse_values(""), cs31::Error);
  EXPECT_THROW(parse_values("3\n1 2\n"), cs31::Error);   // count mismatch
  EXPECT_THROW(parse_values("2\n1 2 3\n"), cs31::Error); // too many
}

TEST(Stats, EndToEndFromText) {
  const Stats s = stats_from_text("5\n10 20 30 40 50\n");
  EXPECT_DOUBLE_EQ(s.mean, 30);
  EXPECT_DOUBLE_EQ(s.median, 30);
}

}  // namespace
}  // namespace cs31::labs
