// Simulated-kernel tests: fork/exec/wait/exit, zombies and orphans,
// signals and handlers, round-robin scheduling, and the concurrent-
// output interleaving enumerator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>

#include "common/error.hpp"
#include "os/interleave.hpp"
#include "os/kernel.hpp"

namespace cs31::os {
namespace {

TEST(Kernel, RunsASimpleProgramToCompletion) {
  Kernel k;
  const std::uint32_t pid = k.spawn(ProgramBuilder().print("hello").exit(0).build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"hello"}));
  EXPECT_EQ(k.info(pid).state, ProcState::Reaped);  // init reaps top-level
  EXPECT_EQ(k.info(pid).exit_status, 0);
}

TEST(Kernel, FallingOffTheEndExitsZero) {
  Kernel k;
  const std::uint32_t pid = k.spawn(ProgramBuilder().print("x").build());
  k.run();
  EXPECT_EQ(k.info(pid).exit_status, 0);
}

TEST(Kernel, ForkCreatesChildWithParentLink) {
  Kernel k;
  const std::uint32_t pid = k.spawn(
      ProgramBuilder()
          .fork(ProgramBuilder().print("child").build())
          .print("parent")
          .wait()
          .build());
  k.run();
  // Both lines appear, in some order.
  auto out = k.output();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::string>{"child", "parent"}));
  // The fork event recorded the child pid, parented to `pid`.
  bool found_fork = false;
  for (const Event& e : k.events()) {
    if (e.pid == pid && e.what.rfind("fork:", 0) == 0) found_fork = true;
  }
  EXPECT_TRUE(found_fork);
}

TEST(Kernel, WaitReapsZombie) {
  Kernel k;
  // Parent computes before waiting, so the child exits first and sits
  // as a zombie until the wait.
  const std::uint32_t parent = k.spawn(
      ProgramBuilder()
          .fork(ProgramBuilder().exit(7).build())
          .compute(10)
          .wait()
          .print("reaped")
          .build());
  k.run();
  EXPECT_EQ(k.output().back(), "reaped");
  // The child must have passed through zombie state: find the reap event.
  bool reaped_by_parent = false;
  for (const Event& e : k.events()) {
    if (e.pid == parent && e.what.rfind("reap:", 0) == 0) reaped_by_parent = true;
  }
  EXPECT_TRUE(reaped_by_parent);
}

TEST(Kernel, WaitBlocksUntilChildExits) {
  Kernel k;
  k.spawn(ProgramBuilder()
              .fork(ProgramBuilder().compute(20).print("slow child").build())
              .wait()
              .print("after wait")
              .build());
  k.run();
  const auto& out = k.output();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "slow child");
  EXPECT_EQ(out[1], "after wait");
}

TEST(Kernel, WaitWithNoChildrenReturnsImmediately) {
  Kernel k;
  k.spawn(ProgramBuilder().wait().print("done").build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"done"}));
}

TEST(Kernel, OrphansReparentToInit) {
  Kernel k;
  // Parent exits immediately; the slow child becomes an orphan and is
  // eventually reaped by init.
  k.spawn(ProgramBuilder()
              .fork(ProgramBuilder().compute(30).print("orphan done").build())
              .exit(0)
              .build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"orphan done"}));
  // Every non-init process ends Reaped (no zombie leaks).
  for (const ProcessInfo& p : k.all_processes()) {
    if (p.pid == Kernel::kInitPid) continue;
    EXPECT_EQ(p.state, ProcState::Reaped) << "pid " << p.pid;
  }
}

TEST(Kernel, ForkBothRunsRestOfProgramTwice) {
  Kernel k;
  k.spawn(ProgramBuilder().fork_both().print("twice").build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"twice", "twice"}));
}

TEST(Kernel, ExecReplacesProgram) {
  Kernel k;
  k.spawn(ProgramBuilder()
              .print("before exec")
              .exec(ProgramBuilder().print("new image").build())
              .print("never printed")
              .build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"before exec", "new image"}));
}

TEST(Kernel, SigchldHandlerRunsOnChildExit) {
  Kernel k;
  k.spawn(ProgramBuilder()
              .handler(Signal::Chld, ProgramBuilder().print("SIGCHLD!").build())
              .fork(ProgramBuilder().exit(0).build())
              .compute(10)
              .print("parent done")
              .build());
  k.run();
  const auto& out = k.output();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "SIGCHLD!") << "handler interrupts before the next instruction";
  EXPECT_EQ(out[1], "parent done");
}

TEST(Kernel, SigintDefaultTerminates) {
  Kernel k;
  const std::uint32_t pid =
      k.spawn(ProgramBuilder().compute(50).print("never").build());
  k.tick();  // let it start
  k.deliver(pid, Signal::Int);
  k.run();
  EXPECT_TRUE(k.output().empty());
  EXPECT_EQ(k.info(pid).state, ProcState::Reaped);
  EXPECT_EQ(k.info(pid).exit_status, -2);
}

TEST(Kernel, SigintHandlerOverridesDefault) {
  Kernel k;
  const std::uint32_t pid = k.spawn(
      ProgramBuilder()
          .handler(Signal::Int, ProgramBuilder().print("caught").build())
          .compute(5)
          .print("survived")
          .build());
  k.tick();  // runs the handler-install instruction
  k.deliver(pid, Signal::Int);
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"caught", "survived"}));
}

TEST(Kernel, SigkillCannotBeCaught) {
  Kernel k;
  const std::uint32_t pid = k.spawn(
      ProgramBuilder()
          .handler(Signal::Kill, ProgramBuilder().print("nope").build())
          .compute(50)
          .build());
  k.tick();
  k.deliver(pid, Signal::Kill);
  k.run();
  EXPECT_TRUE(k.output().empty());
}

TEST(Kernel, KillInstructionTargetsChild) {
  Kernel k;
  k.spawn(ProgramBuilder()
              .fork(ProgramBuilder().compute(100).print("never").build())
              .kill(Target::LastChild, Signal::Kill)
              .wait()
              .print("killed it")
              .build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"killed it"}));
}

TEST(Kernel, ForkThenExecInChild) {
  // The shell pattern: fork, child execs a fresh image, parent waits.
  Kernel k;
  k.spawn(ProgramBuilder()
              .fork(ProgramBuilder()
                        .print("child before exec")
                        .exec(ProgramBuilder().print("execed image").exit(3).build())
                        .print("unreachable")
                        .build())
              .wait()
              .print("parent saw exit")
              .build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"child before exec", "execed image",
                                                  "parent saw exit"}));
}

TEST(Kernel, HandlerRunsOncePerDelivery) {
  Kernel k;
  const std::uint32_t pid = k.spawn(
      ProgramBuilder()
          .handler(Signal::Usr1, ProgramBuilder().print("usr1").build())
          .compute(20)
          .print("done")
          .build());
  k.tick();  // install the handler
  k.deliver(pid, Signal::Usr1);
  k.deliver(pid, Signal::Usr1);
  k.run();
  ASSERT_EQ(k.output().size(), 3u);
  EXPECT_EQ(k.output()[0], "usr1");
  EXPECT_EQ(k.output()[1], "usr1");
  EXPECT_EQ(k.output()[2], "done");
}

TEST(Kernel, KillSelfTerminatesImmediately) {
  Kernel k;
  const std::uint32_t pid = k.spawn(ProgramBuilder()
                                        .kill(Target::Self, Signal::Kill)
                                        .print("never")
                                        .build());
  k.run();
  EXPECT_TRUE(k.output().empty());
  EXPECT_EQ(k.info(pid).state, ProcState::Reaped);
}

TEST(Kernel, SignalToZombieIsDropped) {
  Kernel k;
  const std::uint32_t parent = k.spawn(ProgramBuilder()
                                           .fork(ProgramBuilder().exit(0).build())
                                           .compute(30)
                                           .wait()
                                           .build());
  // Run until the child is a zombie (parent still computing).
  std::uint32_t child = 0;
  for (int i = 0; i < 50 && child == 0; ++i) {
    k.tick();
    for (const ProcessInfo& p : k.all_processes()) {
      if (p.ppid == parent && p.state == ProcState::Zombie) child = p.pid;
    }
  }
  ASSERT_NE(child, 0u);
  k.deliver(child, Signal::Int);  // must be a no-op, not a crash
  k.run();
  EXPECT_EQ(k.info(child).state, ProcState::Reaped);
}

TEST(Kernel, RoundRobinInterleavesComputeBoundProcesses) {
  KernelConfig cfg;
  cfg.time_slice = 1;
  Kernel k(cfg);
  k.spawn(ProgramBuilder().print("a1").print("a2").build());
  k.spawn(ProgramBuilder().print("b1").print("b2").build());
  k.run();
  // Slice of 1 alternates strictly: a1 b1 a2 b2.
  EXPECT_EQ(k.output(), (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
  EXPECT_GT(k.context_switches(), 2u);
}

TEST(Kernel, LargerSliceRunsChunks) {
  KernelConfig cfg;
  cfg.time_slice = 2;
  Kernel k(cfg);
  k.spawn(ProgramBuilder().print("a1").print("a2").build());
  k.spawn(ProgramBuilder().print("b1").print("b2").build());
  k.run();
  EXPECT_EQ(k.output(), (std::vector<std::string>{"a1", "a2", "b1", "b2"}));
}

TEST(Kernel, HierarchyRendersTree) {
  Kernel k;
  k.spawn(ProgramBuilder()
              .fork(ProgramBuilder().compute(100).build())
              .compute(2)
              .build());
  k.tick();
  k.tick();
  const std::string tree = k.hierarchy();
  EXPECT_NE(tree.find("pid 1"), std::string::npos);
  EXPECT_NE(tree.find("  pid 2"), std::string::npos);
  EXPECT_NE(tree.find("    pid 3"), std::string::npos);
}

TEST(Kernel, RunawayGuard) {
  Kernel k;
  // A process that forks children forever would never go idle;
  // approximate with a long compute and a tiny budget.
  k.spawn(ProgramBuilder().compute(1000000).build());
  EXPECT_THROW(k.run(100), Error);
}

TEST(Kernel, InfoOnUnknownPidThrows) {
  Kernel k;
  EXPECT_THROW((void)k.info(42), Error);
  EXPECT_THROW(k.deliver(42, Signal::Int), Error);
}

// ---------- interleaving enumeration ----------

TEST(Interleave, TwoByTwoProducesSixOrderings) {
  const std::vector<std::vector<std::string>> seqs = {{"a1", "a2"}, {"b1", "b2"}};
  const auto all = all_interleavings(seqs);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(interleaving_count(seqs), 6u);
  for (const auto& order : all) {
    // Program order within each process must hold.
    const auto a1 = std::find(order.begin(), order.end(), "a1");
    const auto a2 = std::find(order.begin(), order.end(), "a2");
    EXPECT_LT(a1, a2);
  }
}

TEST(Interleave, PossibilityCheckMatchesEnumeration) {
  const std::vector<std::vector<std::string>> seqs = {{"p", "q"}, {"x"}};
  EXPECT_TRUE(is_possible_output(seqs, {"p", "x", "q"}));
  EXPECT_TRUE(is_possible_output(seqs, {"x", "p", "q"}));
  EXPECT_FALSE(is_possible_output(seqs, {"q", "p", "x"}));
  EXPECT_FALSE(is_possible_output(seqs, {"p", "q"}));  // wrong length
}

TEST(Interleave, MemoizedCheckHandlesSizesEnumerationCannot) {
  // 3 sequences of 8 identical items: multinomial is huge, but the
  // check is polynomial.
  std::vector<std::vector<std::string>> seqs(3, std::vector<std::string>(8, "x"));
  std::vector<std::string> claimed(24, "x");
  EXPECT_TRUE(is_possible_output(seqs, claimed));
  EXPECT_EQ(interleaving_count(seqs), 9465511770u);  // 24!/(8!8!8!)
}

TEST(Interleave, EnumerationLimitGuard) {
  std::vector<std::vector<std::string>> seqs;
  for (int s = 0; s < 4; ++s) {
    std::vector<std::string> seq;
    for (int i = 0; i < 6; ++i) seq.push_back(std::to_string(s) + ":" + std::to_string(i));
    seqs.push_back(seq);
  }
  EXPECT_THROW((void)all_interleavings(seqs, 1000), Error);
}

TEST(Interleave, StreamingVisitsEveryPathAndMatchesMaterialized) {
  // Sequences sharing an item: position-choice paths outnumber distinct
  // orderings (the documented streaming caveat), but the path count is
  // exactly the multinomial and the visited SET is all_interleavings.
  const std::vector<std::vector<std::string>> seqs = {{"a", "b"}, {"a", "c"}};
  std::set<std::vector<std::string>> seen;
  std::uint64_t paths = 0;
  EXPECT_TRUE(for_each_interleaving(seqs, [&](const std::vector<std::string>& order) {
    seen.insert(order);
    ++paths;
    return true;
  }));
  EXPECT_EQ(paths, interleaving_count(seqs));
  const auto all = all_interleavings(seqs);
  EXPECT_EQ(seen, std::set<std::vector<std::string>>(all.begin(), all.end()));
  EXPECT_LT(all.size(), paths);  // "aabc" reachable two ways
}

TEST(Interleave, StreamingStopsOnFalseAndHonorsTheLimit) {
  const std::vector<std::vector<std::string>> seqs = {{"a1", "a2"}, {"b1", "b2"}};
  std::uint64_t visited = 0;
  EXPECT_FALSE(for_each_interleaving(seqs, [&](const std::vector<std::string>&) {
    return ++visited < 3;  // callback vetoes the walk after 3
  }));
  EXPECT_EQ(visited, 3u);

  visited = 0;
  EXPECT_FALSE(for_each_interleaving(
      seqs, [&](const std::vector<std::string>&) { ++visited; return true; }, 4));
  EXPECT_EQ(visited, 4u);  // limit cut the walk short

  // A limit the space fits inside (or exactly fills) is not a stop.
  visited = 0;
  EXPECT_TRUE(for_each_interleaving(
      seqs, [&](const std::vector<std::string>&) { ++visited; return true; }, 6));
  EXPECT_EQ(visited, 6u);
}

TEST(Interleave, CountSaturatesWithAFlagInsteadOfWrappingAround) {
  // C(80,40) ~ 1.08e23 overflows uint64: the count must latch at the
  // ceiling and say so, not silently wrap to a small number.
  const std::vector<std::vector<std::string>> big(2, std::vector<std::string>(40, "x"));
  bool saturated = false;
  EXPECT_EQ(interleaving_count(big, saturated), UINT64_MAX);
  EXPECT_TRUE(saturated);

  const std::vector<std::vector<std::string>> small = {{"a", "b"}, {"c"}, {"d"}};
  saturated = true;
  EXPECT_EQ(interleaving_count(small, saturated), 12u);  // 4!/(2!1!1!)
  EXPECT_FALSE(saturated);
  EXPECT_EQ(interleaving_count(small), 12u);  // convenience overload agrees
}

TEST(Interleave, PossibilityCheckAgreesWithEnumerationOnRandomScripts) {
  // Property: is_possible_output(claimed) is exactly membership in
  // all_interleavings — for every true member, and for shuffled
  // same-multiset candidates that may or may not respect program order.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const std::vector<std::string> alphabet = {"a", "b", "c"};

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::vector<std::string>> seqs(2 + next() % 2);
    std::vector<std::string> pool;
    for (auto& seq : seqs) {
      const std::size_t len = 2 + next() % 3;
      for (std::size_t i = 0; i < len; ++i) {
        seq.push_back(alphabet[next() % alphabet.size()]);  // duplicates welcome
        pool.push_back(seq.back());
      }
    }
    const auto all = all_interleavings(seqs);
    const std::set<std::vector<std::string>> members(all.begin(), all.end());
    for (const auto& order : all) {
      EXPECT_TRUE(is_possible_output(seqs, order)) << "trial " << trial;
    }
    for (int candidate = 0; candidate < 20; ++candidate) {
      std::vector<std::string> claimed = pool;  // right multiset, random order
      for (std::size_t i = claimed.size(); i > 1; --i) {
        std::swap(claimed[i - 1], claimed[next() % i]);
      }
      EXPECT_EQ(is_possible_output(seqs, claimed), members.count(claimed) != 0)
          << "trial " << trial;
    }
  }
}

TEST(Interleave, KernelOutputIsAlwaysAPossibleInterleaving) {
  // Property: whatever the scheduler does, the observed output is one of
  // the legal interleavings of the two processes' print sequences.
  for (const std::uint32_t slice : {1u, 2u, 3u, 5u}) {
    KernelConfig cfg;
    cfg.time_slice = slice;
    Kernel k(cfg);
    k.spawn(ProgramBuilder().print("a1").print("a2").print("a3").build());
    k.spawn(ProgramBuilder().print("b1").print("b2").build());
    k.run();
    EXPECT_TRUE(is_possible_output({{"a1", "a2", "a3"}, {"b1", "b2"}}, k.output()))
        << "slice=" << slice;
  }
}

}  // namespace
}  // namespace cs31::os
