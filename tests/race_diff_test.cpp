// Differential trace fuzzing: the proof-by-bombardment that the
// FastTrack-compressed Detector and the PR 1 ReferenceDetector are the
// same detector. Thousands of seeded random traces (fork/join trees,
// lock sections, barrier cycles, channel handoffs) are replayed into
// both implementations through the shared EventSink interface, and the
// verdicts must be bit-identical: same race_free bit, same race_count,
// same event count, and report-for-report identical text.
//
// Reproducing a divergence: every failure message carries the seed and
// the full trace listing. `generate_trace(seed, config_for(seed))`
// regenerates the exact trace; shrink it by hand from the printed op
// list (the ops are one line each, in replay order).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "life/traced.hpp"
#include "os/interleave.hpp"
#include "race/detector.hpp"
#include "race/reference.hpp"
#include "race/replay.hpp"
#include "race/trace_gen.hpp"

namespace cs31::race {
namespace {

/// Everything observable about a detector run, as comparable values.
struct Verdict {
  bool race_free = true;
  std::uint64_t race_count = 0;
  std::uint64_t events = 0;
  std::size_t threads = 0;
  std::vector<std::string> reports;  // full to_string of each report, in order

  friend bool operator==(const Verdict&, const Verdict&) = default;
};

Verdict harvest(const EventSink& sink) {
  Verdict v;
  v.race_free = sink.race_free();
  v.race_count = sink.race_count();
  v.events = sink.events();
  v.threads = sink.threads();
  for (const RaceReport& r : sink.races()) v.reports.push_back(r.to_string());
  return v;
}

Verdict drive(const Trace& trace, EventSink& sink) {
  run_trace(trace, sink);
  return harvest(sink);
}

/// Vary the generator knobs with the seed so the fuzz sweep covers
/// thread counts 1..6 (1 = the degenerate single-thread trace, which
/// must come out race-free), variable pools 1..4, and trace lengths
/// 32..96 — not just one shape of trace. Deterministic: the config is
/// part of the repro recipe.
TraceGenConfig config_for(std::uint64_t seed) {
  TraceGenConfig cfg;
  cfg.ops = 32 + seed % 65;                // 32..96
  cfg.max_threads = 1 + (seed / 7) % 6;    // 1..6
  cfg.vars = 1 + (seed / 11) % 4;          // 1..4
  cfg.locks = 1 + (seed / 13) % 2;         // 1..2
  cfg.channels = 1 + (seed / 17) % 2;      // 1..2
  return cfg;
}

// The acceptance-criterion sweep: >= 1000 seeded traces, zero verdict
// divergence. This is also the tier-1 `race_diff_fuzz_smoke` ctest
// entry (fixed seeds, so it is exactly as deterministic as any unit
// test). ~1200 traces x ~70 ops is well under a second per detector.
TEST(DiffFuzz, ThousandSeededTraces) {
  constexpr std::uint64_t kTraces = 1200;
  std::size_t racy = 0, clean = 0;
  for (std::uint64_t seed = 1; seed <= kTraces; ++seed) {
    const Trace trace = generate_trace(seed, config_for(seed));
    Detector fast;
    ReferenceDetector reference;
    const Verdict fast_verdict = drive(trace, fast);
    const Verdict ref_verdict = drive(trace, reference);

    ASSERT_EQ(fast_verdict.race_free, ref_verdict.race_free)
        << "seed=" << seed << "\n" << trace.to_string();
    ASSERT_EQ(fast_verdict.race_count, ref_verdict.race_count)
        << "seed=" << seed << "\n" << trace.to_string();
    ASSERT_EQ(fast_verdict.events, ref_verdict.events)
        << "seed=" << seed << "\n" << trace.to_string();
    ASSERT_EQ(fast_verdict.threads, ref_verdict.threads)
        << "seed=" << seed << "\n" << trace.to_string();
    ASSERT_EQ(fast_verdict.reports, ref_verdict.reports)
        << "seed=" << seed << "\n" << trace.to_string();

    (fast_verdict.race_free ? clean : racy) += 1;
  }
  // The sweep only proves equivalence where it exercises both outcomes.
  EXPECT_GT(racy, kTraces / 10) << "generator must produce racy traces";
  EXPECT_GT(clean, kTraces / 10) << "and race-free ones";
}

TEST(DiffFuzz, GeneratorIsDeterministicFromItsSeed) {
  for (const std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    const Trace a = generate_trace(seed, config_for(seed));
    const Trace b = generate_trace(seed, config_for(seed));
    EXPECT_EQ(a.to_string(), b.to_string()) << "same seed, same trace";
    EXPECT_EQ(a.threads, b.threads);

    // And the replay of a trace is itself deterministic: two fresh
    // detectors fed the same trace agree with themselves.
    Detector d1, d2;
    EXPECT_EQ(drive(a, d1), drive(b, d2));
  }
  EXPECT_NE(generate_trace(1, config_for(1)).to_string(),
            generate_trace(2, config_for(2)).to_string())
      << "different seeds explore different traces";
}

TEST(DiffFuzz, ReplayPathAgrees) {
  // The replay(schedule, sink) entry point — the homework tool — through
  // both detectors, over every interleaving of a racy script pair and a
  // locked one. C(4,2) + C(6,3) = 26 schedules.
  const std::vector<std::vector<std::string>> racy = {
      {"read x", "write x"},
      {"read x", "write x"},
  };
  const std::vector<std::vector<std::string>> locked = {
      {"lock m", "write x", "unlock m"},
      {"lock m", "write x", "unlock m"},
  };
  for (const auto& scripts : {racy, locked}) {
    for (const auto& schedule : os::all_interleavings(tag_threads(scripts))) {
      Detector fast;
      ReferenceDetector reference;
      const ReplayResult fast_result = replay(schedule, fast);
      const ReplayResult ref_result = replay(schedule, reference);
      ASSERT_EQ(harvest(fast), harvest(reference))
          << "schedule: " << testing::PrintToString(schedule);
      ASSERT_EQ(fast_result.events, ref_result.events);
      ASSERT_EQ(fast_result.races.size(), ref_result.races.size());
    }
  }
}

TEST(DiffFuzz, InflateDeflateDirected) {
  // Directed walk through the adaptive read representation: one reader
  // (epoch), a second reader (inflate to read-shared), a racy write
  // against both readers, then an ordered write (deflate back to
  // epochs). The reference must agree at every step, and the inflated
  // state must actually be bigger than the deflated one.
  Detector fast;
  ReferenceDetector reference;
  const auto step = [&](auto&& op) {
    op(static_cast<EventSink&>(fast));
    op(static_cast<EventSink&>(reference));
    ASSERT_EQ(harvest(fast), harvest(reference));
  };

  ThreadId f1 = 0, f2 = 0, r1 = 0, r2 = 0;
  step([&](EventSink& s) {
    ThreadId id = s.register_thread();
    (&s == &fast ? f1 : r1) = id;
  });
  step([&](EventSink& s) {
    ThreadId id = s.register_thread();
    (&s == &fast ? f2 : r2) = id;
  });
  ASSERT_EQ(f1, r1);
  ASSERT_EQ(f2, r2);

  step([&](EventSink& s) { s.read(0, "v", "reader A"); });
  step([&](EventSink& s) { s.read(0, "v", "reader A again"); });  // epoch overwrite
  // Pre-intern the writer's site label so the inflate/deflate byte
  // comparison below only sees the read-state change, not interner
  // growth. (Interning is not an event; the verdicts are unaffected.)
  (void)fast.intern_site("racy writer");
  const std::size_t exclusive_bytes = fast.shadow_bytes();
  step([&](EventSink& s) { s.read(f1, "v", "reader B"); });  // inflate
  step([&](EventSink& s) { s.read(f2, "v", "reader C"); });
  const std::size_t inflated_bytes = fast.shadow_bytes();
  EXPECT_GT(inflated_bytes, exclusive_bytes) << "read-shared state costs real bytes";

  step([&](EventSink& s) { s.write(f2, "v", "racy writer"); });  // races readers A and B
  ASSERT_EQ(fast.races().size(), 2u) << "one report per surviving reader";
  EXPECT_EQ(fast.races()[0].second.where, "racy writer");

  // The write deflated the read state; the next reads start a fresh
  // exclusive epoch.
  const std::size_t deflated_bytes = fast.shadow_bytes();
  EXPECT_LT(deflated_bytes, inflated_bytes) << "write deflates read-shared back to epochs";
  step([&](EventSink& s) { s.read(f2, "v", "reader C after write"); });
  ASSERT_EQ(harvest(fast), harvest(reference));
}

TEST(DiffFuzz, LifeWorkloadAgreesAndCompresses) {
  // The real workload, not a synthetic trace: the Lab 10 Life access
  // pattern through both detectors via the generic sink entry point.
  // Verdicts agree in both the correct and the buggy variant, and the
  // compressed detector never holds more shadow state than the
  // reference on the same event stream. (The headline >= 2x number is
  // tracing *overhead*, recorded by bench_race_overhead; end-of-run
  // bytes understate the compression because the final swap writes
  // deflate both detectors' read state.)
  const life::Grid initial = life::Grid::random(16, 16, 0.35, 9);
  for (const bool use_barrier : {true, false}) {
    Detector fast;
    ReferenceDetector reference;
    const auto fast_run = life::traced_life_check_with(fast, initial, 4, 2, use_barrier);
    const auto ref_run = life::traced_life_check_with(reference, initial, 4, 2, use_barrier);
    EXPECT_EQ(fast_run.race_free, use_barrier);
    ASSERT_EQ(harvest(fast), harvest(reference)) << "use_barrier=" << use_barrier;
    EXPECT_EQ(fast_run.grid, ref_run.grid) << "the simulation itself is detector-independent";
    EXPECT_LT(fast.shadow_bytes(), reference.shadow_bytes())
        << "compressed shadow state must not regress past the reference";
  }
}

}  // namespace
}  // namespace cs31::race
