// The Lab 3 grader: exercise the gate-level ALU across all eight
// operations and cross-check results and all five flags against the
// bits-module arithmetic reference.
#include <gtest/gtest.h>

#include <bit>
#include <tuple>

#include "bits/integer.hpp"
#include "common/error.hpp"
#include "logic/alu.hpp"

namespace cs31::logic {
namespace {

std::uint64_t reference_result(AluOp op, std::uint64_t a, std::uint64_t b, int w) {
  const std::uint64_t mask = bits::low_mask(w);
  switch (op) {
    case AluOp::Add: return (a + b) & mask;
    case AluOp::Sub: return (a - b) & mask;
    case AluOp::And: return a & b;
    case AluOp::Or: return a | b;
    case AluOp::Xor: return a ^ b;
    case AluOp::Not: return ~a & mask;
    case AluOp::Shl: return (a << 1) & mask;
    case AluOp::Sra: {
      std::uint64_t r = a >> 1;
      if ((a >> (w - 1)) & 1u) r |= std::uint64_t{1} << (w - 1);
      return r;
    }
  }
  return 0;
}

class AluExhaustive
    : public ::testing::TestWithParam<std::tuple<int, AluOp>> {};

TEST_P(AluExhaustive, MatchesReferenceAtWidth4) {
  const auto [w, op] = GetParam();
  Circuit c;
  const Alu alu = build_alu(c, w);
  const std::uint64_t limit = 1ull << w;
  for (std::uint64_t a = 0; a < limit; ++a) {
    for (std::uint64_t b = 0; b < limit; ++b) {
      const AluReading r = run_alu(c, alu, op, a, b);
      const std::uint64_t expect = reference_result(op, a, b, w);
      ASSERT_EQ(r.result, expect)
          << "op=" << static_cast<int>(op) << " a=" << a << " b=" << b << " w=" << w;
      ASSERT_EQ(r.zero, expect == 0);
      ASSERT_EQ(r.negative, (expect >> (w - 1)) & 1u);
      ASSERT_EQ(r.parity, std::popcount(expect) % 2 == 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsAndWidths, AluExhaustive,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values(AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or,
                                         AluOp::Xor, AluOp::Not, AluOp::Shl, AluOp::Sra)));

TEST(Alu, AddSubFlagsMatchBitsReference) {
  constexpr int w = 8;
  Circuit c;
  const Alu alu = build_alu(c, w);
  const std::uint64_t samples[] = {0, 1, 2, 0x7E, 0x7F, 0x80, 0x81, 0xFE, 0xFF};
  for (const std::uint64_t a : samples) {
    for (const std::uint64_t b : samples) {
      const bits::ArithResult ref_add = bits::add(bits::Word(a, w), bits::Word(b, w));
      const AluReading add_r = run_alu(c, alu, AluOp::Add, a, b);
      EXPECT_EQ(add_r.carry, ref_add.flags.carry) << a << "+" << b;
      EXPECT_EQ(add_r.overflow, ref_add.flags.overflow) << a << "+" << b;

      const bits::ArithResult ref_sub = bits::sub(bits::Word(a, w), bits::Word(b, w));
      const AluReading sub_r = run_alu(c, alu, AluOp::Sub, a, b);
      EXPECT_EQ(sub_r.result, ref_sub.pattern) << a << "-" << b;
      EXPECT_EQ(sub_r.carry, ref_sub.flags.carry) << a << "-" << b;
      EXPECT_EQ(sub_r.overflow, ref_sub.flags.overflow) << a << "-" << b;
    }
  }
}

TEST(Alu, ShiftCarriesOutTheEdgeBit) {
  Circuit c;
  const Alu alu = build_alu(c, 8);
  EXPECT_TRUE(run_alu(c, alu, AluOp::Shl, 0x80, 0).carry);
  EXPECT_FALSE(run_alu(c, alu, AluOp::Shl, 0x40, 0).carry);
  EXPECT_TRUE(run_alu(c, alu, AluOp::Sra, 0x01, 0).carry);
  EXPECT_FALSE(run_alu(c, alu, AluOp::Sra, 0x02, 0).carry);
}

TEST(Alu, LogicOpsClearOverflow) {
  Circuit c;
  const Alu alu = build_alu(c, 8);
  for (const AluOp op : {AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Not}) {
    EXPECT_FALSE(run_alu(c, alu, op, 0xFF, 0xFF).overflow);
    EXPECT_FALSE(run_alu(c, alu, op, 0xFF, 0xFF).carry);
  }
}

TEST(Alu, SixteenBitSpotChecks) {
  Circuit c;
  const Alu alu = build_alu(c, 16);
  EXPECT_EQ(run_alu(c, alu, AluOp::Add, 0xFFFF, 1).result, 0u);
  EXPECT_TRUE(run_alu(c, alu, AluOp::Add, 0xFFFF, 1).carry);
  EXPECT_EQ(run_alu(c, alu, AluOp::Sub, 5, 7).result, 0xFFFEu);
  EXPECT_EQ(run_alu(c, alu, AluOp::Not, 0xAAAA, 0).result, 0x5555u);
}

TEST(Alu, RejectsBadWidthAndWideOperands) {
  Circuit c;
  EXPECT_THROW(build_alu(c, 1), cs31::Error);
  EXPECT_THROW(build_alu(c, 65), cs31::Error);
  Circuit c2;
  const Alu alu = build_alu(c2, 8);
  EXPECT_THROW((void)run_alu(c2, alu, AluOp::Add, 0x100, 0), cs31::Error);
}

}  // namespace
}  // namespace cs31::logic
