// Assembler tests: AT&T operand parsing, two-pass label resolution,
// encode/decode round trips, disassembly, and diagnostics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/assembler.hpp"
#include "isa/ia32.hpp"

namespace cs31::isa {
namespace {

TEST(Operands, ParsesImmediates) {
  EXPECT_EQ(parse_operand("$5"), Operand::immediate(5));
  EXPECT_EQ(parse_operand("$-12"), Operand::immediate(-12));
  EXPECT_EQ(parse_operand("$0x10"), Operand::immediate(16));
}

TEST(Operands, ParsesRegisters) {
  EXPECT_EQ(parse_operand("%eax"), Operand::of_reg(Reg::Eax));
  EXPECT_EQ(parse_operand("%ebp"), Operand::of_reg(Reg::Ebp));
  EXPECT_THROW((void)parse_operand("%rax"), Error);
}

TEST(Operands, ParsesMemoryForms) {
  {
    const Operand o = parse_operand("8(%ebp)");
    ASSERT_EQ(o.kind, Operand::Kind::Mem);
    EXPECT_EQ(o.mem.disp, 8);
    EXPECT_EQ(o.mem.base, Reg::Ebp);
    EXPECT_FALSE(o.mem.index.has_value());
  }
  {
    const Operand o = parse_operand("-4(%ebp)");
    EXPECT_EQ(o.mem.disp, -4);
  }
  {
    const Operand o = parse_operand("(%eax,%ebx,4)");
    EXPECT_EQ(o.mem.disp, 0);
    EXPECT_EQ(o.mem.base, Reg::Eax);
    EXPECT_EQ(o.mem.index, Reg::Ebx);
    EXPECT_EQ(o.mem.scale, 4);
  }
  {
    const Operand o = parse_operand("16(,%ecx,2)");
    EXPECT_FALSE(o.mem.base.has_value());
    EXPECT_EQ(o.mem.index, Reg::Ecx);
    EXPECT_EQ(o.mem.scale, 2);
    EXPECT_EQ(o.mem.disp, 16);
  }
  {
    const Operand o = parse_operand("0x1000");  // absolute
    EXPECT_EQ(o.kind, Operand::Kind::Mem);
    EXPECT_EQ(o.mem.disp, 0x1000);
  }
}

TEST(Operands, RejectsMalformedMemory) {
  EXPECT_THROW((void)parse_operand("8(%ebp"), Error);
  EXPECT_THROW((void)parse_operand("(%eax,%ebx,3)"), Error);  // bad scale
  EXPECT_THROW((void)parse_operand("()"), Error);
  EXPECT_THROW((void)parse_operand(""), Error);
}

TEST(Assembler, AssemblesStraightLine) {
  const Image img = assemble("movl $1, %eax\naddl $2, %eax\nhlt\n");
  EXPECT_EQ(img.instruction_count(), 3u);
  EXPECT_EQ(img.base, 0x1000u);
  const Instruction first = decode(img.bytes.data());
  EXPECT_EQ(first.op, Mnemonic::Mov);
  EXPECT_EQ(first.src, Operand::immediate(1));
  EXPECT_EQ(first.dst, Operand::of_reg(Reg::Eax));
}

TEST(Assembler, ResolvesForwardAndBackwardLabels) {
  const Image img = assemble(R"(
start:
    jmp forward
back:
    hlt
forward:
    jmp back
)");
  EXPECT_EQ(img.symbol("start"), img.base);
  const Instruction j1 = decode(img.bytes.data());
  EXPECT_EQ(j1.target, img.symbol("forward"));
  const Instruction j2 = decode(img.bytes.data() + 2 * kInstrBytes);
  EXPECT_EQ(j2.target, img.symbol("back"));
}

TEST(Assembler, CommentsAndBlankLinesIgnored) {
  const Image img = assemble("# full comment\n\n  movl $1, %eax  # tail comment\n");
  EXPECT_EQ(img.instruction_count(), 1u);
}

TEST(Assembler, DiagnosticsCarryLineNumbers) {
  try {
    (void)assemble("movl $1, %eax\nbogus %eax\n");
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(Assembler, RejectsDuplicateLabelsAndUndefinedTargets) {
  EXPECT_THROW((void)assemble("a:\na:\n"), Error);
  EXPECT_THROW((void)assemble("jmp nowhere\n"), Error);
}

TEST(Assembler, RejectsWrongOperandCounts) {
  EXPECT_THROW((void)assemble("movl $1\n"), Error);
  EXPECT_THROW((void)assemble("pushl %eax, %ebx\n"), Error);
  EXPECT_THROW((void)assemble("ret %eax\n"), Error);
}

TEST(Assembler, EncodeDecodeRoundTripsEveryMnemonic) {
  const Image img = assemble(R"(
top:
    movl $5, %eax
    addl %eax, %ebx
    subl $1, %ecx
    imull %edx, %eax
    andl $15, %eax
    orl %ebx, %eax
    xorl %eax, %eax
    notl %eax
    negl %ebx
    incl %ecx
    decl %ecx
    shll $2, %eax
    shrl $1, %ebx
    sarl $1, %ecx
    leal 4(%eax,%ebx,2), %edx
    cmpl $0, %eax
    testl %eax, %eax
    pushl %eax
    popl %ebx
    call top
    leave
    jmp top
    je top
    jne top
    jg top
    jge top
    jl top
    jle top
    ja top
    jae top
    jb top
    jbe top
    js top
    jns top
    nop
    ret
    hlt
)");
  // Decoding every slot must succeed and re-encode identically.
  for (std::size_t off = 0; off < img.bytes.size(); off += kInstrBytes) {
    const Instruction ins = decode(img.bytes.data() + off);
    const std::vector<std::uint8_t> re = encode(ins);
    for (std::size_t i = 0; i < kInstrBytes; ++i) {
      ASSERT_EQ(re[i], img.bytes[off + i]) << "offset " << off;
    }
  }
}

TEST(Disassembler, ShowsLabelsAndResolvedTargets) {
  const Image img = assemble("main:\n  movl $3, %eax\nloop:\n  jmp loop\n");
  const std::vector<DisasmLine> lines = disassemble(img);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].label, "main");
  EXPECT_EQ(lines[0].text, "movl $3, %eax");
  EXPECT_EQ(lines[1].label, "loop");
  EXPECT_EQ(lines[1].text, "jmp loop");
}

TEST(Disassembler, RendersAttOperandOrderAndAddressing) {
  const Image img = assemble("movl 8(%ebp), %eax\nleal (%eax,%ebx,4), %ecx\n");
  const std::vector<DisasmLine> lines = disassemble(img);
  EXPECT_EQ(lines[0].text, "movl 8(%ebp), %eax");
  EXPECT_EQ(lines[1].text, "leal (%eax,%ebx,4), %ecx");
}

TEST(Image, SymbolLookupThrowsOnUnknown) {
  const Image img = assemble("nop\n");
  EXPECT_THROW((void)img.symbol("missing"), Error);
}

}  // namespace
}  // namespace cs31::isa
