// Tests for the mini-CPU (instruction encoding, execution through the
// gate-level ALU, control flow, memory) and the pipeline timing model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "logic/cpu.hpp"
#include "logic/pipeline.hpp"

namespace cs31::logic {
namespace {

TEST(Encoding, RoundTripsRegisterFormat) {
  const std::uint16_t word = encode_reg(Op::Add, 3, 4, 5);
  const Decoded d = decode(word);
  EXPECT_EQ(d.op, Op::Add);
  EXPECT_EQ(d.rd, 3u);
  EXPECT_EQ(d.rs, 4u);
  EXPECT_EQ(d.rt, 5u);
}

TEST(Encoding, RoundTripsImmediates) {
  for (const int imm : {-256, -1, 0, 1, 255}) {
    const Decoded d = decode(encode_imm(Op::LoadI, 2, imm));
    EXPECT_EQ(d.op, Op::LoadI);
    EXPECT_EQ(d.rd, 2u);
    EXPECT_EQ(d.imm, imm);
  }
  EXPECT_THROW((void)encode_imm(Op::LoadI, 0, 256), cs31::Error);
  EXPECT_THROW((void)encode_imm(Op::LoadI, 0, -257), cs31::Error);
  EXPECT_THROW((void)encode_imm(Op::LoadI, 8, 0), cs31::Error);
}

TEST(Encoding, RejectsUnknownOpcode) {
  EXPECT_THROW((void)decode(0xF000), cs31::Error);
}

TEST(Encoding, ToStringShowsAssembly) {
  EXPECT_EQ(to_string(decode(encode_reg(Op::Add, 1, 2, 3))), "add R1, R2, R3");
  EXPECT_EQ(to_string(decode(encode_imm(Op::LoadI, 4, -7))), "loadi R4, -7");
  EXPECT_EQ(to_string(decode(encode_jump(100))), "jmp 100");
}

TEST(MiniCpu, AluInstructionsComputeThroughGates) {
  MiniCpu cpu;
  cpu.load_program({
      encode_imm(Op::LoadI, 1, 20),
      encode_imm(Op::LoadI, 2, 22),
      encode_reg(Op::Add, 3, 1, 2),
      encode_reg(Op::Sub, 4, 1, 2),
      encode_reg(Op::Xor, 5, 1, 2),
      encode_reg(Op::Halt, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(3), 42u);
  EXPECT_EQ(cpu.reg(4), static_cast<std::uint16_t>(-2));
  EXPECT_EQ(cpu.reg(5), 20u ^ 22u);
  EXPECT_TRUE(cpu.halted());
}

TEST(MiniCpu, LoadStoreRoundTrip) {
  MiniCpu cpu;
  cpu.load_program({
      encode_imm(Op::LoadI, 1, 100),   // address
      encode_imm(Op::LoadI, 2, 77),    // value
      encode_reg(Op::Store, 1, 2, 0),  // mem[R1] = R2
      encode_reg(Op::Load, 3, 1, 0),   // R3 = mem[R1]
      encode_reg(Op::Halt, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.mem(100), 77u);
  EXPECT_EQ(cpu.reg(3), 77u);
}

TEST(MiniCpu, BranchAndJumpControlFlow) {
  // Countdown loop: R1 = 3; while (R1) R1 -= 1; R2 = 9.
  MiniCpu cpu;
  cpu.load_program({
      encode_imm(Op::LoadI, 1, 3),
      encode_imm(Op::LoadI, 5, 1),
      encode_branch(Op::Beqz, 1, 5),  // 2: if R1 == 0 goto 5
      encode_reg(Op::Sub, 1, 1, 5),   // 3
      encode_jump(2),                 // 4
      encode_imm(Op::LoadI, 2, 9),    // 5
      encode_reg(Op::Halt, 0, 0, 0),
  });
  cpu.run();
  EXPECT_EQ(cpu.reg(1), 0u);
  EXPECT_EQ(cpu.reg(2), 9u);
}

TEST(MiniCpu, SampleSumProgramSumsArray) {
  MiniCpu cpu;
  const unsigned base = 200, count = 10;
  std::uint16_t expected = 0;
  for (unsigned i = 0; i < count; ++i) {
    cpu.set_mem(base + i, static_cast<std::uint16_t>(i * 3 + 1));
    expected = static_cast<std::uint16_t>(expected + i * 3 + 1);
  }
  cpu.load_program(sample_sum_program(base, count));
  cpu.run();
  EXPECT_EQ(cpu.reg(3), expected);
}

TEST(MiniCpu, TraceRecordsDataflow) {
  MiniCpu cpu;
  cpu.load_program({
      encode_imm(Op::LoadI, 1, 5),
      encode_reg(Op::Add, 2, 1, 1),
      encode_reg(Op::Halt, 0, 0, 0),
  });
  cpu.run();
  const auto& trace = cpu.trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_TRUE(trace[0].wrote_reg);
  EXPECT_EQ(trace[0].dest, 1u);
  EXPECT_EQ(trace[1].sources, (std::vector<unsigned>{1, 1}));
  EXPECT_FALSE(trace[2].wrote_reg);
}

TEST(MiniCpu, RunawayProgramThrows) {
  MiniCpu cpu;
  cpu.load_program({encode_jump(0)});
  EXPECT_THROW(cpu.run(1000), cs31::Error);
}

TEST(MiniCpu, MemoryBoundsChecked) {
  MiniCpu cpu;
  EXPECT_THROW(cpu.set_mem(MiniCpu::kMemWords, 0), cs31::Error);
  EXPECT_THROW((void)cpu.mem(MiniCpu::kMemWords), cs31::Error);
  EXPECT_THROW((void)cpu.reg(8), cs31::Error);
  cpu.load_program({
      encode_imm(Op::LoadI, 1, -1),    // 0xFFFF as address
      encode_reg(Op::Load, 2, 1, 0),
  });
  EXPECT_THROW(cpu.run(), cs31::Error);
}

TEST(MiniCpu, ConditionFlagsLatchedFromAlu) {
  MiniCpu cpu;
  cpu.load_program({
      encode_imm(Op::LoadI, 1, 1),
      encode_reg(Op::Sub, 2, 1, 1),  // 1 - 1 = 0
      encode_reg(Op::Halt, 0, 0, 0),
  });
  cpu.run();
  EXPECT_TRUE(cpu.last_alu().zero);
  EXPECT_FALSE(cpu.last_alu().negative);
}

// ---------- pipeline timing model ----------

std::vector<ExecRecord> straightline(std::size_t n) {
  std::vector<ExecRecord> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i].wrote_reg = true;
    t[i].dest = static_cast<unsigned>(i % 8);
    // No sources: fully independent instructions.
  }
  return t;
}

TEST(Pipeline, SequentialTakesOneLongCyclePerInstruction) {
  const StageLatencies stages;
  const TimingResult r = time_sequential(straightline(100), stages);
  EXPECT_EQ(r.cycles, 100u);
  EXPECT_DOUBLE_EQ(r.cycle_time_ps, stages.total());
  EXPECT_DOUBLE_EQ(r.ipc(), 1.0);
}

TEST(Pipeline, IndependentCodeApproachesIpcOne) {
  PipelineConfig cfg;
  const TimingResult r = time_pipelined(straightline(1000), cfg);
  EXPECT_EQ(r.stall_cycles, 0u);
  EXPECT_GT(r.ipc(), 0.99);
  EXPECT_LE(r.ipc(), 1.0);
}

TEST(Pipeline, PipelinedBeatsSequentialOnTime) {
  const std::vector<ExecRecord> trace = straightline(1000);
  const StageLatencies stages;
  const double seq = time_sequential(trace, stages).time_ps();
  const double pipe = time_pipelined(trace, PipelineConfig{stages, true, 2}).time_ps();
  // Ideal ratio approaches total/max = 1000/300; with fill/drain ~3.3x.
  EXPECT_GT(seq / pipe, 3.0);
}

TEST(Pipeline, LoadUseHazardCostsOneBubbleWithForwarding) {
  std::vector<ExecRecord> trace(2);
  trace[0].wrote_reg = true;
  trace[0].dest = 1;
  trace[0].is_load = true;
  trace[1].wrote_reg = true;
  trace[1].dest = 2;
  trace[1].sources = {1};
  const TimingResult r = time_pipelined(trace, PipelineConfig{});
  EXPECT_EQ(r.stall_cycles, 1u);
}

TEST(Pipeline, AluDependencyFreeWithForwardingCostlyWithout) {
  std::vector<ExecRecord> trace(2);
  trace[0].wrote_reg = true;
  trace[0].dest = 1;
  trace[1].sources = {1};
  PipelineConfig fwd;
  EXPECT_EQ(time_pipelined(trace, fwd).stall_cycles, 0u);
  PipelineConfig no_fwd;
  no_fwd.forwarding = false;
  EXPECT_EQ(time_pipelined(trace, no_fwd).stall_cycles, 2u);
}

TEST(Pipeline, TakenBranchesFlush) {
  std::vector<ExecRecord> trace(10);
  trace[4].is_branch = true;
  trace[4].taken = true;
  PipelineConfig cfg;
  cfg.branch_penalty = 2;
  const TimingResult r = time_pipelined(trace, cfg);
  EXPECT_EQ(r.flush_cycles, 2u);
  const TimingResult base = time_pipelined(straightline(10), cfg);
  EXPECT_EQ(r.cycles, base.cycles + 2);
}

TEST(Pipeline, RealCpuTraceShowsIpcGain) {
  // Run the sample-sum program and time its real trace both ways.
  MiniCpu cpu;
  for (unsigned i = 0; i < 20; ++i) cpu.set_mem(100 + i, 1);
  cpu.load_program(sample_sum_program(100, 20));
  cpu.run();
  const StageLatencies stages;
  const double seq = time_sequential(cpu.trace(), stages).time_ps();
  const double pipe = time_pipelined(cpu.trace(), PipelineConfig{stages, true, 2}).time_ps();
  EXPECT_GT(seq / pipe, 1.5) << "pipelining must pay off even with loop hazards";
}

TEST(Pipeline, EmptyTraceIsZeroCycles) {
  EXPECT_EQ(time_pipelined({}, PipelineConfig{}).cycles, 0u);
  EXPECT_EQ(time_sequential({}, StageLatencies{}).cycles, 0u);
}

}  // namespace
}  // namespace cs31::logic
