// MSI coherence protocol tests: the canonical state-transition table,
// invalidation/downgrade behaviour, false-sharing accounting, and a
// single-writer-or-readers invariant checked under random traffic.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "memhier/coherence.hpp"

namespace cs31::memhier {
namespace {

TEST(Msi, ReadThenReadIsSharedEverywhere) {
  MsiSystem sys(2);
  const CoherenceResult r0 = sys.access(0, 0x100, false);
  EXPECT_FALSE(r0.hit);
  EXPECT_EQ(r0.new_state, MsiState::Shared);
  const CoherenceResult r1 = sys.access(1, 0x100, false);
  EXPECT_FALSE(r1.hit) << "first touch per core misses";
  EXPECT_EQ(sys.state(0, 0x100), MsiState::Shared);
  EXPECT_EQ(sys.state(1, 0x100), MsiState::Shared);
  // Subsequent reads hit locally.
  EXPECT_TRUE(sys.access(0, 0x100, false).hit);
  EXPECT_TRUE(sys.access(1, 0x100, false).hit);
}

TEST(Msi, WriteInvalidatesOtherCopies) {
  MsiSystem sys(3);
  sys.access(0, 0x200, false);
  sys.access(1, 0x200, false);
  sys.access(2, 0x200, false);
  const CoherenceResult w = sys.access(0, 0x200, true);
  EXPECT_TRUE(w.invalidated_others);
  EXPECT_EQ(sys.state(0, 0x200), MsiState::Modified);
  EXPECT_EQ(sys.state(1, 0x200), MsiState::Invalid);
  EXPECT_EQ(sys.state(2, 0x200), MsiState::Invalid);
  EXPECT_EQ(sys.stats().invalidations, 2u);
}

TEST(Msi, ReadDowngradesModifiedWithWriteback) {
  MsiSystem sys(2);
  sys.access(0, 0x300, true);  // core 0: M
  const CoherenceResult r = sys.access(1, 0x300, false);
  EXPECT_TRUE(r.downgraded_other);
  EXPECT_EQ(sys.state(0, 0x300), MsiState::Shared);
  EXPECT_EQ(sys.state(1, 0x300), MsiState::Shared);
  EXPECT_EQ(sys.stats().writebacks, 1u);
}

TEST(Msi, SharedToModifiedUpgradeCostsABusTransaction) {
  MsiSystem sys(2);
  sys.access(0, 0x400, false);  // S
  const std::uint64_t rdx_before = sys.stats().bus_read_exclusives;
  const CoherenceResult w = sys.access(0, 0x400, true);
  EXPECT_FALSE(w.hit) << "S->M upgrade is not a silent hit";
  EXPECT_EQ(sys.stats().bus_read_exclusives, rdx_before + 1);
  // After M, writes are free.
  EXPECT_TRUE(sys.access(0, 0x400, true).hit);
  EXPECT_TRUE(sys.access(0, 0x400, false).hit);
}

TEST(Msi, PingPongOnSharedCounter) {
  // The lecture's shared-counter picture at the protocol level: two
  // cores alternately writing one block never hit.
  MsiSystem sys(2);
  for (int round = 0; round < 10; ++round) {
    EXPECT_FALSE(sys.access(round % 2 == 0 ? 0u : 1u, 0x500, true).hit);
  }
  EXPECT_EQ(sys.stats().invalidations, 9u) << "every write after the first kills a copy";
}

TEST(Msi, FalseSharingVsPaddedCounters) {
  // Two counters in ONE block ping-pong; padded to separate blocks they
  // coexist in M. This is the ablation bench's kernel, verified.
  MsiSystem shared_block(2, 64);
  MsiSystem padded(2, 64);
  for (int i = 0; i < 100; ++i) {
    shared_block.access(0, 0x00, true);   // counter A, offset 0
    shared_block.access(1, 0x04, true);   // counter B, offset 4 (same block!)
    padded.access(0, 0x00, true);         // counter A, block 0
    padded.access(1, 0x40, true);         // counter B, its own block
  }
  EXPECT_GT(shared_block.stats().invalidations, 150u);
  EXPECT_EQ(padded.stats().invalidations, 0u);
  EXPECT_GT(padded.stats().hit_rate(), 0.98);
  EXPECT_LT(shared_block.stats().hit_rate(), 0.02);
}

TEST(Msi, EvictionOfModifiedLineWritesBack) {
  MsiSystem sys(1, 64, 4);  // 4 lines: blocks 64*4 apart collide
  sys.access(0, 0x000, true);
  const std::uint64_t wb = sys.stats().writebacks;
  sys.access(0, 64 * 4, false);  // same index, different tag
  EXPECT_EQ(sys.stats().writebacks, wb + 1);
}

TEST(Msi, Validation) {
  EXPECT_THROW(MsiSystem(0), Error);
  EXPECT_THROW(MsiSystem(2, 48), Error);
  MsiSystem sys(2);
  EXPECT_THROW(sys.access(2, 0, false), Error);
  EXPECT_THROW((void)sys.state(9, 0), Error);
  EXPECT_FALSE(sys.dump().empty());
}

// Protocol invariant under random traffic: a block is either Modified
// in exactly one cache (and Invalid elsewhere), or Shared/Invalid
// everywhere — never two writers.
class MsiInvariant : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MsiInvariant, SingleWriterOrManyReaders) {
  MsiSystem sys(4);
  std::uint32_t state = GetParam() | 1u;
  auto rnd = [&](std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  };
  const std::uint32_t blocks[] = {0x000, 0x040, 0x080, 0x1000};
  for (int step = 0; step < 3000; ++step) {
    sys.access(rnd(4), blocks[rnd(4)] + rnd(16) * 4, rnd(3) == 0);
    for (const std::uint32_t block : blocks) {
      int modified = 0, shared = 0;
      for (unsigned core = 0; core < 4; ++core) {
        const MsiState s = sys.state(core, block);
        if (s == MsiState::Modified) ++modified;
        if (s == MsiState::Shared) ++shared;
      }
      ASSERT_LE(modified, 1) << "two writers at step " << step;
      if (modified == 1) {
        ASSERT_EQ(shared, 0) << "writer coexisting with readers at step " << step;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsiInvariant, ::testing::Values(1u, 9u, 33u, 71u));

}  // namespace
}  // namespace cs31::memhier
