// Cross-module integration tests: the vertical slice the course itself
// teaches — assembly programs feeding the cache simulator, the shell on
// the kernel, parallel Life visualized through ParaVis, the ALU inside
// the mini-CPU, and curriculum metadata pointing at real kit components.
#include <gtest/gtest.h>

#include <set>

#include "ccomp/codegen.hpp"
#include "core/curriculum.hpp"
#include "heap/memcheck.hpp"
#include "homework/homework.hpp"
#include "isa/debugger.hpp"
#include "isa/machine.hpp"
#include "life/life.hpp"
#include "logic/cpu.hpp"
#include "logic/pipeline.hpp"
#include "memhier/cache.hpp"
#include "memhier/trace.hpp"
#include "os/interleave.hpp"
#include "os/kernel.hpp"
#include "paravis/paravis.hpp"
#include "parallel/speedup.hpp"
#include "shell/shell.hpp"
#include "survey/survey.hpp"
#include "vm/paging.hpp"

namespace cs31 {
namespace {

TEST(Integration, AssemblyProgramDrivesCacheSimulator) {
  // Run an IA-32 subset program that scans an array, capture the
  // addresses it touches, and replay them through a cache — a student's
  // end-to-end "why is my loop slow" investigation.
  isa::Machine machine;
  machine.load(isa::assemble(R"(
    movl $0x4000, %esi     # base
    movl $0, %ecx          # i
loop:
    cmpl $64, %ecx
    je done
    movl (%esi,%ecx,4), %eax
    incl %ecx
    jmp loop
done:
    hlt
)"));
  // Instrument: track every data address by stepping and recomputing
  // the effective address of the load each iteration.
  memhier::Trace trace;
  isa::Debugger dbg(machine);
  dbg.break_at("loop");
  while (dbg.cont() == isa::StopReason::Breakpoint) {
    const std::uint32_t i = machine.reg(isa::Reg::Ecx);
    if (i < 64) {
      trace.push_back({machine.reg(isa::Reg::Esi) + i * 4, false});
    }
  }
  ASSERT_EQ(trace.size(), 64u);
  memhier::CacheConfig cfg;
  cfg.block_bytes = 16;
  cfg.num_lines = 16;
  memhier::Cache cache(cfg);
  const memhier::CacheStats stats = memhier::replay(cache, trace);
  EXPECT_EQ(stats.misses, 16u) << "sequential scan: one miss per 16-byte block";
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.75);
}

TEST(Integration, MiniCpuTraceTimedOnPipeline) {
  // The architecture module's full story: a program executes on the
  // gate-level CPU, and its real trace shows the pipelining win.
  logic::MiniCpu cpu;
  for (unsigned i = 0; i < 32; ++i) cpu.set_mem(150 + i, 2);
  cpu.load_program(logic::sample_sum_program(150, 32));
  cpu.run();
  EXPECT_EQ(cpu.reg(3), 64u);
  const logic::StageLatencies stages;
  const auto seq = logic::time_sequential(cpu.trace(), stages);
  const auto pipe = logic::time_pipelined(cpu.trace(), logic::PipelineConfig{stages, true, 2});
  EXPECT_GT(seq.time_ps() / pipe.time_ps(), 1.5);
  EXPECT_GT(pipe.ipc(), seq.instructions == 0 ? 0 : 0.3);
}

TEST(Integration, ShellForegroundBackgroundAndProcessTree) {
  os::Kernel kernel;
  shell::Shell sh(kernel);
  sh.install_standard_commands();
  sh.run_line("countdown 3 &");
  sh.run_line("echo fg done");
  // Drain the background job (an interactive shell would keep ticking
  // the kernel between prompts).
  while (!kernel.idle()) kernel.tick();
  // The kernel's event log shows spawn/exit for both commands, and the
  // output interleaves legally.
  EXPECT_TRUE(os::is_possible_output(
      {{"3", "2", "1", "liftoff"}, {"fg done"}}, kernel.output()));
  sh.reap_background();
  ASSERT_EQ(sh.jobs().size(), 1u);
  EXPECT_TRUE(sh.jobs()[0].finished);
}

TEST(Integration, ParallelLifeRenderedThroughParaVis) {
  const life::Grid initial = life::Grid::random(16, 16, 0.3, 5);
  life::ParallelLife sim(initial, 4);
  sim.run(3);
  paravis::VisConfig cfg;
  cfg.ansi_colors = true;
  paravis::FrameSource frame{
      16, 16, [&](std::size_t r, std::size_t c) { return sim.grid().alive(r, c); },
      [&](std::size_t r, std::size_t c) { return sim.owner(r, c); }};
  const std::string out = paravis::render(frame, cfg);
  // All four thread regions appear as distinct colors.
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(out.find("\x1b[" + std::to_string(41 + t) + "m"), std::string::npos) << t;
  }
  // And the simulation result matches the serial reference.
  life::SerialLife reference(initial);
  reference.run(3);
  EXPECT_EQ(sim.grid(), reference.grid());
}

TEST(Integration, VmBackedByCacheEatNumbers) {
  // Combine the VM's fault rate with the hierarchy EAT formula, the way
  // the course's VM unit chains its examples.
  vm::PagingConfig cfg;
  cfg.page_bytes = 256;
  cfg.virtual_pages = 32;
  cfg.physical_frames = 8;
  cfg.tlb_entries = 4;
  vm::PagingSystem vmm(cfg);
  vmm.create_process();
  for (std::uint32_t pass = 0; pass < 4; ++pass) {
    for (std::uint32_t page = 0; page < 8; ++page) {
      vmm.access(page * 256 + pass, false);
    }
  }
  const double fault_rate = vmm.stats().fault_rate();
  EXPECT_NEAR(fault_rate, 8.0 / 32.0, 1e-9) << "8 cold faults over 32 accesses";
  const double eat =
      vm::effective_access_time_ns(vmm.tlb_stats()->hit_rate(), fault_rate, 100, 1, 8e6);
  EXPECT_GT(eat, 100.0);
}

TEST(Integration, CurriculumKitComponentsExist) {
  // The curriculum names kit modules; every named module is one of the
  // source libraries this repository builds.
  const std::set<std::string> kit = {"bits", "logic", "isa",  "memhier", "vm",
                                     "os",   "cstr",  "shell", "parallel", "life",
                                     "paravis", "labs", "core", "survey"};
  for (const core::CourseModule& m : core::Curriculum::cs31().modules()) {
    EXPECT_TRUE(kit.contains(m.kit_module)) << m.name << " -> " << m.kit_module;
  }
}

TEST(Integration, CurriculumEmphasisDrivesSurveyOrdering) {
  // The evaluation pipeline end to end: curriculum emphasis -> survey
  // simulation -> the Figure 1 property that pthreads (emphasized)
  // outranks Amdahl's Law (mentioned).
  const auto results = survey::simulate(survey::figure1_topics());
  double pthreads_avg = -1, amdahl_avg = -1;
  for (const auto& r : results) {
    if (r.name == "pthreads") pthreads_avg = r.average;
    if (r.name == "Amdahl's Law") amdahl_avg = r.average;
  }
  ASSERT_GE(pthreads_avg, 0);
  ASSERT_GE(amdahl_avg, 0);
  EXPECT_GT(pthreads_avg, amdahl_avg);
}

TEST(Integration, MiniCProgramThroughMachineIntoCache) {
  // The full vertical slice, then one level deeper: compile C to the
  // teaching ISA, execute it while recording data-memory traffic, and
  // replay that traffic through the cache simulator. Recursive calls
  // hammer a small stack window, so the cache should love it.
  const char* source =
      "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } "
      "int main() { return fib(14); }";
  isa::Machine machine;
  machine.load(cc::compile_with_entry(source, {}));
  machine.set_trace_memory(true);
  machine.run(5'000'000);
  EXPECT_EQ(static_cast<std::int32_t>(machine.reg(isa::Reg::Eax)), 377);

  const auto& accesses = machine.memory_trace();
  ASSERT_GT(accesses.size(), 1000u) << "recursion generates real stack traffic";
  memhier::CacheConfig cfg;
  cfg.block_bytes = 64;
  cfg.num_lines = 64;  // 4 KiB
  memhier::Cache cache(cfg);
  for (const auto& a : accesses) cache.access(a.address, a.is_write);
  EXPECT_GT(cache.stats().hit_rate(), 0.95)
      << "stack reuse is the course's temporal-locality example";
}

TEST(Integration, HomeworkKeysAgreeWithSubstratesEndToEnd) {
  // The worksheet generator is only trustworthy if its keys re-derive
  // from the same substrates the students' tools use.
  const homework::CacheTraceProblem p = homework::cache_trace_problem(77, 2);
  memhier::Cache cache(p.config);
  for (std::size_t i = 0; i < p.addresses.size(); ++i) {
    EXPECT_EQ(cache.read(p.addresses[i]).hit, p.key[i].hit);
  }
  const homework::ForkProblem fork_p = homework::fork_problem(5);
  os::Kernel kernel;
  // Execute the fork program for real; the kernel's output must be one
  // of the enumerated possibilities.
  os::ProgramBuilder child;
  for (const std::string& line : fork_p.sequences[1]) child.print(line);
  os::ProgramBuilder parent;
  parent.fork(child.exit(0).build());
  for (const std::string& line : fork_p.sequences[0]) parent.print(line);
  kernel.spawn(parent.wait().build());
  kernel.run();
  EXPECT_TRUE(homework::grade_fork_answer(fork_p, kernel.output()));
}

TEST(Integration, AllocatorBacksAStringWorkload) {
  // cstr + heap together: build strings inside the teaching heap via
  // checked byte accesses, and leave one allocation behind for memcheck.
  heap::MemCheck mc(4096);
  const std::uint32_t a = mc.alloc(16, "greeting");
  const char* text = "hello";
  for (int i = 0; text[i] != '\0'; ++i) {
    mc.write8(a + static_cast<std::uint32_t>(i), static_cast<std::uint8_t>(text[i]));
  }
  mc.write8(a + 5, 0);
  // Read it back through the checked interface.
  std::string read;
  for (std::uint32_t i = 0;; ++i) {
    const char c = static_cast<char>(mc.read8(a + i));
    if (c == '\0') break;
    read.push_back(c);
  }
  EXPECT_EQ(read, "hello");
  (void)mc.alloc(32, "leaked_on_purpose");
  mc.release(a);
  const heap::LeakReport report = mc.report();
  EXPECT_EQ(report.leaked_blocks, 1u);
  EXPECT_EQ(report.leak_labels.at(0), "leaked_on_purpose");
  EXPECT_TRUE(report.diagnostics.empty());
}

TEST(Integration, AmdahlPredictsLifeModelSerialBehavior) {
  // Tie E3 to E7: a Life-like workload with per-round serial swap time
  // behaves like Amdahl up to the barrier overhead.
  parallel::WorkloadModel model;
  model.total_work = 512 * 512;
  model.rounds = 1;
  model.serial_work = static_cast<std::uint64_t>(512 * 512 * 0.02);
  const double modeled = parallel::modeled_speedup(model, 8);
  const double amdahl = parallel::amdahl_speedup(0.02 / 1.02, 8);
  EXPECT_NEAR(modeled, amdahl, amdahl * 0.05);
}

}  // namespace
}  // namespace cs31
