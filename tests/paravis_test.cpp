// ParaVis-substitute tests: rendering variants, region colors, custom
// glyphs, the recorder, and validation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "paravis/paravis.hpp"

namespace cs31::paravis {
namespace {

FrameSource checkerboard(std::size_t n) {
  return FrameSource{n, n,
                     [](std::size_t r, std::size_t c) { return (r + c) % 2 == 0; },
                     nullptr};
}

TEST(Render, PlainAsciiShape) {
  const std::string out = render(checkerboard(3));
  EXPECT_EQ(out, "@.@\n.@.\n@.@\n");
}

TEST(Render, CustomGlyphs) {
  VisConfig cfg;
  cfg.alive = '#';
  cfg.dead = ' ';
  const std::string out = render(checkerboard(2), cfg);
  EXPECT_EQ(out, "# \n #\n");
}

TEST(Render, AnsiWithoutOwnerCallbackEmitsNoColors) {
  VisConfig cfg;
  cfg.ansi_colors = true;
  const std::string out = render(checkerboard(2), cfg);
  EXPECT_EQ(out.find("\x1b[4"), std::string::npos) << "no owner -> no region colors";
  EXPECT_NE(out.find("\x1b[0m"), std::string::npos) << "line resets still emitted";
}

TEST(Render, ColorChangesOnlyAtRegionBoundaries) {
  FrameSource frame{1, 6, [](std::size_t, std::size_t) { return true; },
                    [](std::size_t, std::size_t c) { return c < 3 ? 0 : 1; }};
  VisConfig cfg;
  cfg.ansi_colors = true;
  const std::string out = render(frame, cfg);
  // Exactly two color escapes (one per region) plus the reset.
  std::size_t color_count = 0;
  for (std::size_t pos = out.find("\x1b[4"); pos != std::string::npos;
       pos = out.find("\x1b[4", pos + 1)) {
    ++color_count;
  }
  EXPECT_EQ(color_count, 2u);
}

TEST(Render, Validation) {
  EXPECT_THROW((void)render(FrameSource{2, 2, nullptr, nullptr}), Error);
  EXPECT_THROW((void)render(FrameSource{0, 2, [](std::size_t, std::size_t) { return true; },
                                        nullptr}),
               Error);
}

TEST(RegionColor, CyclesAndHandlesNoOwner) {
  EXPECT_EQ(region_color(-1), 49);
  for (int owner = 0; owner < 16; ++owner) {
    const int color = region_color(owner);
    EXPECT_GE(color, 41);
    EXPECT_LE(color, 48);
    EXPECT_EQ(color, region_color(owner + 8)) << "palette cycles mod 8";
  }
}

TEST(Recorder, AccumulatesDistinctFrames) {
  Recorder rec;
  rec.record(checkerboard(2));
  FrameSource inverted{2, 2, [](std::size_t r, std::size_t c) { return (r + c) % 2 == 1; },
                       nullptr};
  rec.record(inverted);
  ASSERT_EQ(rec.frame_count(), 2u);
  EXPECT_NE(rec.frames()[0], rec.frames()[1]);
}

}  // namespace
}  // namespace cs31::paravis
