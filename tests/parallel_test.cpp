// Core parallel-runtime tests: barrier semantics with real threads, the
// shared-counter race demonstration, the bounded buffer under real
// producer/consumer load, partitioning properties, speedup/Amdahl math,
// the multicore cost model, and the deadlock detector.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <thread>

#include "common/error.hpp"
#include "parallel/deadlock.hpp"
#include "parallel/speedup.hpp"
#include "parallel/sync.hpp"
#include "parallel/threads.hpp"

namespace cs31::parallel {
namespace {

TEST(Barrier, AllThreadsLeaveTogetherEachCycle) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 50;
  Barrier barrier(kThreads);
  std::atomic<int> in_phase{0};
  std::atomic<bool> violation{false};

  ThreadTeam team(kThreads, [&](std::size_t) {
    for (std::size_t r = 0; r < kRounds; ++r) {
      in_phase.fetch_add(1);
      barrier.wait();
      // After the barrier, all kThreads arrivals of this round happened.
      if (in_phase.load() < static_cast<int>(kThreads * (r + 1))) violation = true;
      barrier.wait();  // keep rounds separated
    }
  });
  team.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(barrier.cycles(), 2 * kRounds);
}

TEST(Barrier, ExactlyOneSerialThreadPerCycle) {
  // PTHREAD_BARRIER_SERIAL_THREAD semantics: per cycle, exactly one of
  // the N waiters — not merely one on average — gets `true`. Count each
  // cycle separately so two in one cycle and zero in the next cannot
  // cancel out.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 20;
  Barrier barrier(kThreads);
  std::array<std::atomic<int>, kRounds> per_cycle{};
  ThreadTeam team(kThreads, [&](std::size_t) {
    for (std::size_t r = 0; r < kRounds; ++r) {
      if (barrier.wait()) per_cycle[r].fetch_add(1);
    }
  });
  team.join();
  for (std::size_t r = 0; r < kRounds; ++r) {
    EXPECT_EQ(per_cycle[r].load(), 1) << "cycle " << r;
  }
  EXPECT_EQ(barrier.cycles(), kRounds);
}

TEST(Barrier, CyclesCountsEveryCompletedCycle) {
  Barrier solo(1);
  EXPECT_EQ(solo.cycles(), 0u);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_TRUE(solo.wait()) << "sole waiter is always the serial thread";
    EXPECT_EQ(solo.cycles(), static_cast<std::uint64_t>(i));
  }

  Barrier pair(2);
  ThreadTeam team(2, [&](std::size_t) {
    for (int r = 0; r < 5; ++r) pair.wait();
  });
  team.join();
  EXPECT_EQ(pair.cycles(), 5u) << "a cycle completes once per full arrival set";
}

TEST(ThreadTeam, DoubleJoinIsIdempotent) {
  std::atomic<int> ran{0};
  ThreadTeam team(3, [&](std::size_t) { ran.fetch_add(1); });
  team.join();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_NO_THROW(team.join()) << "second join is a no-op";
  EXPECT_EQ(team.size(), 3u);
  // The destructor's implicit join after an explicit one is also a no-op.
}

TEST(Barrier, CountOfOneNeverBlocks) {
  Barrier barrier(1);
  EXPECT_TRUE(barrier.wait());
  EXPECT_TRUE(barrier.wait());
  EXPECT_THROW(Barrier{0}, Error);
}

TEST(SharedCounter, SynchronizedModesAreExact) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPer = 20000;
  EXPECT_EQ(SharedCounter::run(SharedCounter::Mode::MutexPerIncrement, kThreads, kPer),
            kThreads * kPer);
  EXPECT_EQ(SharedCounter::run(SharedCounter::Mode::Atomic, kThreads, kPer),
            kThreads * kPer);
  EXPECT_EQ(SharedCounter::run(SharedCounter::Mode::LocalThenMerge, kThreads, kPer),
            kThreads * kPer);
}

TEST(SharedCounter, UnsynchronizedIsOnlyBoundedAbove) {
  // The data race can lose updates but can never invent them — and that
  // upper bound is the ONLY sound assertion. The result can fall below
  // per_thread (a stale read-modify-write can erase whole stretches of
  // other threads' work), and on a fast or single-core machine it can
  // coincidentally equal the exact count, so neither "usually loses"
  // nor any lower bound is testable without flaking. The deterministic
  // verdict lives in race_test.cpp: SharedCounter::run_traced flags the
  // race on every run, whatever the scheduler does.
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPer = 50000;
  const std::uint64_t result =
      SharedCounter::run(SharedCounter::Mode::Unsynchronized, kThreads, kPer);
  EXPECT_LE(result, kThreads * kPer);
  EXPECT_GE(result, 1u) << "the last increment's write always lands";
}

TEST(BoundedBuffer, FifoOrderSingleProducerSingleConsumer) {
  BoundedBuffer buffer(4);
  constexpr int kItems = 1000;
  std::vector<std::int64_t> received;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) buffer.put(i);
  });
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) received.push_back(buffer.get());
  });
  producer.join();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
  // A tiny buffer under 1000 items must have blocked someone.
  EXPECT_GT(buffer.producer_blocks() + buffer.consumer_blocks(), 0u);
}

TEST(BoundedBuffer, ManyProducersManyConsumersConserveItems) {
  BoundedBuffer buffer(8);
  constexpr int kProducers = 3, kConsumers = 3, kPer = 500;
  std::atomic<std::int64_t> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPer; ++i) buffer.put(p * kPer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) sum.fetch_add(buffer.get());
    });
  }
  for (std::thread& t : threads) t.join();
  const std::int64_t expected =
      (static_cast<std::int64_t>(kProducers * kPer) * (kProducers * kPer - 1)) / 2;
  EXPECT_EQ(sum.load(), expected);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(BoundedBuffer, TryVariantsNeverBlock) {
  BoundedBuffer buffer(2);
  EXPECT_FALSE(buffer.try_get().has_value());
  EXPECT_TRUE(buffer.try_put(1));
  EXPECT_TRUE(buffer.try_put(2));
  EXPECT_FALSE(buffer.try_put(3)) << "full";
  EXPECT_EQ(buffer.try_get().value(), 1);
}

TEST(BoundedBuffer, CloseDrainsThenSignalsEnd) {
  BoundedBuffer buffer(4);
  buffer.put(10);
  buffer.put(20);
  buffer.close();
  EXPECT_EQ(buffer.get_until_closed().value(), 10);
  EXPECT_EQ(buffer.get_until_closed().value(), 20);
  EXPECT_FALSE(buffer.get_until_closed().has_value());
  EXPECT_THROW(buffer.put(30), Error);
  EXPECT_THROW(BoundedBuffer{0}, Error);
}

TEST(BoundedBuffer, CloseWakesBlockedConsumer) {
  BoundedBuffer buffer(2);
  std::optional<std::int64_t> result = 99;
  std::thread consumer([&] { result = buffer.get_until_closed(); });
  // Give the consumer a moment to block, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  buffer.close();
  consumer.join();
  EXPECT_FALSE(result.has_value());
}

// Partitioning properties across a sweep of (n, parts).
class PartitionProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PartitionProperty, CoversExactlyOnceAndBalanced) {
  const auto [n, parts] = GetParam();
  const std::vector<Range> ranges = block_partition(n, parts);
  ASSERT_EQ(ranges.size(), parts);
  std::size_t covered = 0, min_size = n + 1, max_size = 0;
  std::size_t expected_begin = 0;
  for (const Range& r : ranges) {
    EXPECT_EQ(r.begin, expected_begin) << "contiguous";
    expected_begin = r.end;
    covered += r.size();
    min_size = std::min(min_size, r.size());
    max_size = std::max(max_size, r.size());
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(ranges.back().end, n);
  EXPECT_LE(max_size - min_size, 1u) << "sizes differ by at most one";
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionProperty,
                         ::testing::Values(std::pair{0u, 1u}, std::pair{1u, 1u},
                                           std::pair{10u, 3u}, std::pair{16u, 16u},
                                           std::pair{5u, 8u}, std::pair{100u, 7u},
                                           std::pair{512u, 16u}));

TEST(Partition, GridSplitsWholeBands) {
  const auto horizontal = grid_partition(10, 6, 3, GridSplit::Horizontal);
  ASSERT_EQ(horizontal.size(), 3u);
  EXPECT_EQ(horizontal[0].rows, (Range{0, 4}));
  EXPECT_EQ(horizontal[0].cols, (Range{0, 6}));
  EXPECT_EQ(horizontal[2].rows, (Range{7, 10}));

  const auto vertical = grid_partition(10, 6, 3, GridSplit::Vertical);
  EXPECT_EQ(vertical[0].cols, (Range{0, 2}));
  EXPECT_EQ(vertical[0].rows, (Range{0, 10}));
}

TEST(ParallelFor, SumsViaRealThreads) {
  std::vector<int> data(10000, 1);
  std::atomic<long> total{0};
  parallel_for(data.size(), 4, [&](Range r, std::size_t) {
    long local = 0;
    for (std::size_t i = r.begin; i < r.end; ++i) local += data[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 10000);
  EXPECT_THROW(parallel_for(10, 0, [](Range, std::size_t) {}), Error);
}

TEST(Speedup, BasicFormulas) {
  EXPECT_DOUBLE_EQ(speedup(10.0, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(efficiency(10.0, 2.0, 5), 1.0);
  EXPECT_THROW((void)speedup(1.0, 0.0), Error);
  EXPECT_THROW((void)efficiency(1.0, 1.0, 0), Error);
}

TEST(Amdahl, KnownValuesAndLimit) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 8), 8.0) << "embarrassingly parallel";
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 64), 1.0) << "fully serial";
  EXPECT_NEAR(amdahl_speedup(0.1, 16), 6.4, 0.01);
  EXPECT_NEAR(amdahl_speedup(0.05, 16), 9.1429, 0.001);
  EXPECT_DOUBLE_EQ(amdahl_limit(0.1), 10.0);
  EXPECT_THROW((void)amdahl_speedup(1.5, 2), Error);
  EXPECT_THROW((void)amdahl_limit(0.0), Error);
}

TEST(Amdahl, MonotoneInPAndBoundedByLimit) {
  for (const double f : {0.01, 0.1, 0.3}) {
    double prev = 0;
    for (unsigned p = 1; p <= 64; p *= 2) {
      const double s = amdahl_speedup(f, p);
      EXPECT_GT(s, prev);
      EXPECT_LT(s, amdahl_limit(f));
      prev = s;
    }
  }
}

TEST(Gustafson, ScaledSpeedupExceedsAmdahl) {
  EXPECT_DOUBLE_EQ(gustafson_speedup(0.0, 16), 16.0);
  EXPECT_GT(gustafson_speedup(0.1, 16), amdahl_speedup(0.1, 16));
}

TEST(MulticoreModel, IdealWorkloadScalesLinearly) {
  WorkloadModel ideal;
  ideal.total_work = 1 << 20;
  for (unsigned p = 1; p <= 16; p *= 2) {
    EXPECT_NEAR(modeled_speedup(ideal, p), p, 0.01) << p;
  }
}

TEST(MulticoreModel, ContentionAndBarriersBendTheCurve) {
  WorkloadModel model;
  model.total_work = 1 << 20;
  model.rounds = 100;
  model.barrier_cost = 50;
  model.critical_section = 5;
  model.contention_factor = 0.005;
  double prev_eff = 2.0;
  for (unsigned p = 2; p <= 16; p *= 2) {
    const double s = modeled_speedup(model, p);
    const double eff = s / p;
    EXPECT_LT(s, static_cast<double>(p)) << "sub-linear with overheads";
    EXPECT_LT(eff, prev_eff) << "efficiency decays with threads";
    prev_eff = eff;
  }
  // Still near-linear at 16 threads for a Life-like workload (E3's claim).
  EXPECT_GT(modeled_speedup(model, 16), 10.0);
}

TEST(MulticoreModel, SerialFractionMatchesAmdahlShape) {
  WorkloadModel model;
  model.total_work = 1000000;
  model.serial_work = 100000;  // ~9% serial
  const double f = 0.1 / 1.1;  // serial share of total on one thread
  for (unsigned p : {2u, 4u, 8u}) {
    const double modeled = modeled_speedup(model, p);
    const double predicted = amdahl_speedup(f, p);
    EXPECT_NEAR(modeled, predicted, predicted * 0.1) << p;
  }
}

TEST(MulticoreModel, Validation) {
  WorkloadModel bad;
  bad.rounds = 0;
  EXPECT_THROW((void)modeled_time(bad, 1), Error);
  WorkloadModel ok;
  ok.total_work = 10;
  EXPECT_THROW((void)modeled_time(ok, 0), Error);
}

TEST(Deadlock, OrderInversionDetected) {
  LockOrderRegistry registry;
  TrackedMutex a("A", registry), b("B", registry);
  {
    // Thread-1 order: A then B.
    a.lock(); b.lock(); b.unlock(); a.unlock();
  }
  EXPECT_FALSE(registry.deadlock_possible());
  {
    // Same thread, inverted order: B then A — cycle in the order graph.
    b.lock(); a.lock(); a.unlock(); b.unlock();
  }
  EXPECT_TRUE(registry.deadlock_possible());
  const std::vector<std::string> cycle = registry.find_cycle();
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(Deadlock, ConsistentOrderAcrossThreadsIsClean) {
  LockOrderRegistry registry;
  TrackedMutex a("A", registry), b("B", registry), c("C", registry);
  ThreadTeam team(4, [&](std::size_t) {
    for (int i = 0; i < 50; ++i) {
      std::scoped_lock all(a, b, c);  // scoped_lock itself avoids deadlock
    }
  });
  team.join();
  // scoped_lock may acquire in any internal order but consistently;
  // verify at minimum that self-edges don't exist and the graph has
  // recorded something.
  EXPECT_FALSE(registry.graph().empty());
}

TEST(Deadlock, ThreeLockCycle) {
  LockOrderRegistry registry;
  registry.on_acquire("A");
  registry.on_acquire("B");
  registry.on_release("B");
  registry.on_release("A");
  registry.on_acquire("B");
  registry.on_acquire("C");
  registry.on_release("C");
  registry.on_release("B");
  EXPECT_FALSE(registry.deadlock_possible());
  registry.on_acquire("C");
  registry.on_acquire("A");
  registry.on_release("A");
  registry.on_release("C");
  EXPECT_TRUE(registry.deadlock_possible());
  registry.clear();
  EXPECT_FALSE(registry.deadlock_possible());
}

}  // namespace
}  // namespace cs31::parallel
