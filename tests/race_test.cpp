// cs31::race tests: vector-clock algebra, the FastTrack-style detector
// over hand-fed event streams (fork/join, locks, barriers, channels),
// the shadow instrumentation layer on real threads (traced counter,
// traced Barrier/BoundedBuffer), the traced Game of Life certificates,
// and the replay mode over os::all_interleavings schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "life/traced.hpp"
#include "os/interleave.hpp"
#include "parallel/sync.hpp"
#include "parallel/threads.hpp"
#include "race/detector.hpp"
#include "race/replay.hpp"
#include "race/vector_clock.hpp"
#include "trace/context.hpp"
#include "trace/instrumented.hpp"

namespace cs31::race {
namespace {

// The instrumentation layer moved into cs31::trace (the TraceContext
// refactor); these tests exercise it through the same names as before.
using trace::TraceContext;
using trace::TracedMutex;
using trace::TracedVar;

TEST(VectorClock, JoinTickCompare) {
  VectorClock a, b;
  a.tick(0);  // a = <1>
  b.tick(1);  // b = <0, 1>
  EXPECT_TRUE(concurrent(a, b)) << "independent events on different threads";

  VectorClock c = a;
  c.join(b);  // c = <1, 1>
  EXPECT_TRUE(happens_before(a, c));
  EXPECT_TRUE(happens_before(b, c));
  EXPECT_FALSE(happens_before(c, a));
  EXPECT_FALSE(concurrent(a, c));

  EXPECT_EQ(c.get(0), 1u);
  EXPECT_EQ(c.get(7), 0u) << "untouched components read as 0";
  EXPECT_TRUE(c.contains(Epoch{1, 1}));
  EXPECT_FALSE(c.contains(Epoch{1, 2}));
  EXPECT_EQ(c.to_string(), "<1, 1>");
}

TEST(VectorClock, HappensBeforeIsStrict) {
  VectorClock a;
  a.tick(0);
  VectorClock b = a;
  EXPECT_FALSE(happens_before(a, b)) << "equal clocks are not strictly ordered";
  EXPECT_TRUE(a.leq(b));
  b.tick(0);
  EXPECT_TRUE(happens_before(a, b));
}

// ---- property tests over random clocks -------------------------------
// A tiny deterministic PRNG (xorshift) so a failure is reproducible
// from the fixed seed; clocks draw components over a handful of threads
// with small values so equal/comparable/incomparable cases all occur.

struct TinyRng {
  std::uint64_t state;
  std::uint32_t next(std::uint32_t bound) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<std::uint32_t>(state % bound);
  }
};

VectorClock random_clock(TinyRng& rng) {
  VectorClock vc;
  const std::uint32_t threads = 1 + rng.next(4);
  for (ThreadId t = 0; t < threads; ++t) vc.set(t, rng.next(4));
  return vc;
}

VectorClock joined(const VectorClock& a, const VectorClock& b) {
  VectorClock out = a;
  out.join(b);
  return out;
}

TEST(VectorClockProperty, JoinIsACommutativeIdempotentMonoid) {
  TinyRng rng{2024};
  for (int i = 0; i < 500; ++i) {
    const VectorClock a = random_clock(rng);
    const VectorClock b = random_clock(rng);
    const VectorClock c = random_clock(rng);
    EXPECT_EQ(joined(a, b), joined(b, a)) << "join is commutative";
    EXPECT_EQ(joined(joined(a, b), c), joined(a, joined(b, c))) << "join is associative";
    EXPECT_EQ(joined(a, a), a) << "join is idempotent";
    EXPECT_EQ(joined(a, VectorClock{}), a) << "the empty clock is the identity";
    EXPECT_TRUE(a.leq(joined(a, b))) << "join is an upper bound";
    EXPECT_TRUE(b.leq(joined(a, b))) << "join is an upper bound";
  }
}

TEST(VectorClockProperty, HappensBeforeIsAStrictPartialOrder) {
  TinyRng rng{4044};
  for (int i = 0; i < 500; ++i) {
    const VectorClock a = random_clock(rng);
    const VectorClock b = random_clock(rng);
    const VectorClock c = random_clock(rng);
    EXPECT_FALSE(happens_before(a, a)) << "irreflexive";
    EXPECT_FALSE(happens_before(a, b) && happens_before(b, a)) << "asymmetric";
    if (happens_before(a, b) && happens_before(b, c)) {
      EXPECT_TRUE(happens_before(a, c)) << "transitive";
    }
    // Exactly one of: a -> b, b -> a, a == b, a || b.
    const int cases = int(happens_before(a, b)) + int(happens_before(b, a)) +
                      int(a == b) + int(concurrent(a, b));
    EXPECT_EQ(cases, 1) << a.to_string() << " vs " << b.to_string();
    // Chains built by join + tick are always ordered.
    VectorClock later = joined(a, b);
    later.tick(0);
    EXPECT_TRUE(happens_before(a, later));
  }
}

TEST(VectorClockProperty, EpochChecksAgreeWithFullClockChecks) {
  // The FastTrack hot path replaces "write clock leq my clock" with
  // "my clock contains the write epoch". Those agree exactly when the
  // epoch is viewed as a one-component clock — the algebra that makes
  // O(1) shadow state sound.
  TinyRng rng{777};
  for (int i = 0; i < 1000; ++i) {
    const VectorClock vc = random_clock(rng);
    const Epoch e{static_cast<ThreadId>(rng.next(5)), rng.next(5)};
    EXPECT_EQ(vc.contains(e), to_clock(e).leq(vc))
        << vc.to_string() << " vs epoch " << to_string(e);
    EXPECT_EQ(e.valid(), e.clock != 0);
  }
  EXPECT_EQ(to_string(Epoch{3, 7}), "7@3");
  EXPECT_EQ(to_clock(Epoch{2, 5}).get(2), 5u);
  EXPECT_EQ(to_clock(Epoch{2, 5}).get(0), 0u);
}

TEST(Detector, ForkAndJoinOrderAccesses) {
  Detector d;
  const ThreadId child = d.fork(0);
  d.write(0, "x", "parent init before fork");
  // Oops — the write came *after* the fork edge was taken, so the child
  // racing it is real: the parent's post-fork write is concurrent with
  // the child. (Write first, then fork, and it would be clean — see
  // below.)
  d.read(child, "x", "child read");
  EXPECT_FALSE(d.race_free());

  Detector d2;
  d2.write(0, "x", "parent init");
  const ThreadId c2 = d2.fork(0);
  d2.read(c2, "x", "child read");
  EXPECT_TRUE(d2.race_free()) << "fork edge orders parent's earlier write";
  d2.write(c2, "x", "child update");
  d2.join(0, c2);
  d2.read(0, "x", "parent read after join");
  EXPECT_TRUE(d2.race_free()) << "join edge orders the child's write";
}

TEST(Detector, LockReleaseAcquireMakesHappensBefore) {
  Detector d;
  const ThreadId t1 = d.register_thread();
  d.acquire(0, "m");
  d.write(0, "x", "locked write");
  d.release(0, "m");
  d.acquire(t1, "m");
  d.read(t1, "x", "locked read");
  d.release(t1, "m");
  EXPECT_TRUE(d.race_free()) << "release->acquire is an HB edge";

  // The same accesses without the lock race.
  Detector d2;
  const ThreadId u = d2.register_thread();
  d2.write(0, "x", "unlocked write");
  d2.read(u, "x", "unlocked read");
  ASSERT_FALSE(d2.race_free());
  EXPECT_EQ(d2.races()[0].variable, "x");
}

TEST(Detector, TwoThreadUnsyncCounterAlwaysFlagged) {
  // The lecture's shared-counter race, as an explicit event stream: two
  // concurrent root threads each do read x; write x. Detection is a
  // property of the happens-before structure, so ANY serialization of
  // these events is flagged — no timing, no luck.
  Detector d;
  const ThreadId t1 = d.register_thread();
  d.read(0, "counter", "counter = counter + 1 @ thread 0");
  d.write(0, "counter", "counter = counter + 1 @ thread 0");
  d.read(t1, "counter", "counter = counter + 1 @ thread 1");
  d.write(t1, "counter", "counter = counter + 1 @ thread 1");

  ASSERT_FALSE(d.race_free());
  const RaceReport& r = d.races()[0];
  EXPECT_EQ(r.variable, "counter");
  // Both access sites are reported, from the two different threads.
  EXPECT_NE(r.first.thread, r.second.thread);
  EXPECT_FALSE(r.first.where.empty());
  EXPECT_FALSE(r.second.where.empty());
  EXPECT_TRUE(r.first.locks_held.empty());
  EXPECT_TRUE(r.second.locks_held.empty());
  EXPECT_NE(r.explanation.find("no lock in common"), std::string::npos);
}

TEST(Detector, BarrierCycleOrdersAllWaiters) {
  Detector d;
  const ThreadId t1 = d.register_thread();
  const ThreadId t2 = d.register_thread();
  d.write(0, "a", "phase 1");
  d.write(t1, "b", "phase 1");
  d.barrier({0, t1, t2});
  // After the cycle every waiter may read every other waiter's work.
  d.read(t2, "a", "phase 2");
  d.read(t1, "a", "phase 2");
  d.read(0, "b", "phase 2");
  EXPECT_TRUE(d.race_free());
  EXPECT_THROW(d.barrier({}), Error);
}

TEST(Detector, ChannelSendRecvOrders) {
  Detector d;
  const ThreadId consumer = d.register_thread();
  d.write(0, "payload", "producer fills");
  d.channel_send(0, "q");
  d.channel_recv(consumer, "q");
  d.read(consumer, "payload", "consumer uses");
  EXPECT_TRUE(d.race_free());
}

TEST(Detector, ReadSharingThenRacyWrite) {
  // Many concurrent readers are fine; a concurrent writer races them.
  Detector d;
  const ThreadId t1 = d.register_thread();
  const ThreadId t2 = d.register_thread();
  d.read(0, "x", "reader 0");
  d.read(t1, "x", "reader 1");
  EXPECT_TRUE(d.race_free()) << "read-read never conflicts";
  d.write(t2, "x", "writer");
  ASSERT_FALSE(d.race_free());
  // Both readers race the write: distinct (var, pair) reports.
  EXPECT_EQ(d.races().size(), 2u);
  EXPECT_EQ(d.races()[0].second.kind, AccessKind::Write);
}

TEST(Detector, OneReportPerVariableAndPair) {
  Detector d;
  const ThreadId t1 = d.register_thread();
  for (int i = 0; i < 10; ++i) {
    d.write(0, "x", "hammer 0");
    d.write(t1, "x", "hammer 1");
  }
  EXPECT_EQ(d.races().size(), 1u) << "deduped per (variable, site pair)";
  EXPECT_GT(d.race_count(), 1u) << "but every racy access is counted";
}

TEST(Detector, DistinctSitePairsOfTheSameThreadsAreSeparateReports) {
  // Dedup is per (variable, site pair), not per thread pair: the same
  // two threads racing on x from two different places in the code are
  // two different bugs, and both show up.
  Detector d;
  const ThreadId t1 = d.register_thread();
  d.write(0, "x", "init in main");
  d.write(t1, "x", "worker loop");  // race #1: init vs worker loop
  d.write(0, "x", "teardown in main");
  d.write(t1, "x", "worker loop");  // race #2: teardown vs worker loop
  ASSERT_EQ(d.races().size(), 2u);
  std::set<std::string> keys;
  for (const RaceReport& r : d.races()) {
    keys.insert(race_pair_key(r.variable, r.first, r.second));
  }
  EXPECT_EQ(keys.size(), 2u) << "distinct (variable, site pair) keys";
  // Repeating the same pair adds nothing.
  d.write(0, "x", "teardown in main");
  d.write(t1, "x", "worker loop");
  EXPECT_EQ(d.races().size(), 2u);
}

TEST(Detector, ReleaseOfUnheldLockThrows) {
  Detector d;
  EXPECT_THROW(d.release(0, "m"), Error);
  EXPECT_THROW(d.read(99, "x"), Error) << "unknown thread id";
}

TEST(SharedCounterTraced, UnsynchronizedDeterministicallyFlagged) {
  // The acceptance-criterion test: a two-thread unsynchronized counter
  // is flagged on every run, with both access sites in the report —
  // unlike the statistical lost-update demo, there is no timing
  // dependence: the verdict follows from the absent HB edges.
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto run = parallel::SharedCounter::run_traced(
        parallel::SharedCounter::Mode::Unsynchronized, 2, 100);
    EXPECT_TRUE(run.race_detected);
    ASSERT_FALSE(run.races.empty());
    const RaceReport& r = run.races[0];
    EXPECT_EQ(r.variable, "counter");
    EXPECT_NE(r.first.thread, r.second.thread);
    EXPECT_NE(r.first.where.find("no lock"), std::string::npos);
    EXPECT_NE(r.second.where.find("no lock"), std::string::npos);
    EXPECT_LE(run.value, 200u) << "lost updates only, never invented ones";
  }
}

TEST(SharedCounterTraced, SynchronizedModesCertifiedRaceFreeAndExact) {
  using parallel::SharedCounter;
  for (const auto mode : {SharedCounter::Mode::MutexPerIncrement, SharedCounter::Mode::Atomic,
                          SharedCounter::Mode::LocalThenMerge}) {
    const auto run = SharedCounter::run_traced(mode, 4, 200);
    EXPECT_FALSE(run.race_detected) << run.report;
    EXPECT_EQ(run.value, 4u * 200u) << "a correct mode is exact";
    EXPECT_NE(run.report.find("race-free"), std::string::npos);
  }
}

TEST(TracedPrimitives, MutexProtectedSharingIsClean) {
  TraceContext ctx;
  TracedMutex m("m", ctx);
  TracedVar<int> shared("shared", ctx, 0);
  parallel::ThreadTeam team(4, ctx, [&](std::size_t) {
    for (int i = 0; i < 50; ++i) {
      std::scoped_lock lock(m);
      shared.store(shared.load() + 1);
    }
  });
  team.join();
  EXPECT_TRUE(ctx.detector().race_free());
  EXPECT_EQ(shared.load(), 200);
  EXPECT_GE(ctx.detector().threads(), 5u) << "main + 4 workers";
}

TEST(TracedPrimitives, LocksHeldAppearInTheReport) {
  // One side locks, the other does not: still a race, and the report's
  // lockset view shows the asymmetry (the pedagogical "your lock only
  // helps if EVERY access path takes it").
  TraceContext ctx;
  TracedMutex m("half_lock", ctx);
  TracedVar<int> shared("shared", ctx, 0);
  parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
    if (id == 0) {
      std::scoped_lock lock(m);
      shared.store(shared.load() + 1, "locked increment");
    } else {
      shared.store(shared.load() + 1, "unlocked increment");
    }
  });
  team.join();
  ASSERT_FALSE(ctx.detector().race_free());
  const RaceReport& r = ctx.detector().races()[0];
  const bool first_locked = !r.first.locks_held.empty();
  const bool second_locked = !r.second.locks_held.empty();
  EXPECT_NE(first_locked, second_locked) << "exactly one side holds half_lock";
  const auto& held = first_locked ? r.first.locks_held : r.second.locks_held;
  EXPECT_EQ(held, std::vector<std::string>{"half_lock"});
}

TEST(TracedPrimitives, UnboundThreadThrows) {
  TraceContext ctx;
  std::thread outsider([&] {
    EXPECT_THROW(ctx.read("x"), Error);
  });
  outsider.join();
}

TEST(TracedBarrier, BarrierCyclesMakeRoundsRaceFree) {
  // Round-structured sharing: each thread writes its slot, the barrier
  // closes the round, then everyone reads every slot. Race-free only
  // because Barrier::attach_tracer turns each cycle into an HB edge.
  constexpr std::size_t kThreads = 4;
  TraceContext ctx;
  parallel::Barrier barrier(kThreads);
  barrier.attach_tracer(ctx);
  std::vector<TracedVar<int>*> slots;
  std::vector<std::unique_ptr<TracedVar<int>>> storage;
  for (std::size_t t = 0; t < kThreads; ++t) {
    storage.push_back(std::make_unique<TracedVar<int>>("slot" + std::to_string(t), ctx, 0));
    slots.push_back(storage.back().get());
  }
  parallel::ThreadTeam team(kThreads, ctx, [&](std::size_t id) {
    for (int round = 0; round < 3; ++round) {
      slots[id]->store(round, "fill my slot");
      barrier.wait();
      int sum = 0;
      for (std::size_t t = 0; t < kThreads; ++t) sum += slots[t]->load("read all slots");
      EXPECT_EQ(sum, static_cast<int>(kThreads) * round);
      barrier.wait();  // separate the read phase from the next round's writes
    }
  });
  team.join();
  EXPECT_TRUE(ctx.detector().race_free()) << ctx.detector().summary();
  EXPECT_EQ(barrier.cycles(), 6u);
}

TEST(TracedBoundedBuffer, ProducerConsumerHandoffIsClean) {
  // Ownership handoff through the queue: the producer fills item_i and
  // never touches it again; the consumer reads item_i only after
  // get()ing its index. The put/get channel edges order every fill
  // before the matching read.
  constexpr int kItems = 8;
  TraceContext ctx;
  parallel::BoundedBuffer buffer(2);
  buffer.attach_tracer(ctx, "queue");
  std::vector<std::unique_ptr<TracedVar<int>>> items;
  for (int i = 0; i < kItems; ++i) {
    items.push_back(std::make_unique<TracedVar<int>>("item" + std::to_string(i), ctx, 0));
  }
  parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
    if (id == 0) {
      for (int i = 0; i < kItems; ++i) {
        items[i]->store(i * 10, "producer fills");
        buffer.put(i);
      }
    } else {
      for (int i = 0; i < kItems; ++i) {
        const auto item = static_cast<std::size_t>(buffer.get());
        EXPECT_EQ(items[item]->load("consumer reads"), static_cast<int>(item) * 10);
      }
    }
  });
  team.join();
  EXPECT_TRUE(ctx.detector().race_free()) << ctx.detector().summary();

  TraceContext ctx2;
  parallel::BoundedBuffer silent(2);  // no tracer: the handoff edge is invisible
  TracedVar<int> payload2("payload", ctx2, 0);
  parallel::ThreadTeam team2(2, ctx2, [&](std::size_t id) {
    if (id == 0) {
      payload2.store(1, "producer prepares");
      silent.put(1);
    } else {
      (void)silent.get();
      (void)payload2.load("consumer inspects");
    }
  });
  team2.join();
  EXPECT_FALSE(ctx2.detector().race_free())
      << "without the channel edge the handoff cannot be proven ordered";
}

TEST(TracedLife, BarrierSynchronizedStepCertifiedRaceFree) {
  // Acceptance criterion: the Lab 10 structure (compute, barrier, serial
  // swap, barrier) is certified race-free, and the traced run really
  // computes the same generations as the serial engine.
  life::Grid initial = life::Grid::random(12, 12, 0.35, 31);
  const auto traced = life::traced_life_check(initial, 3, 4, /*use_barrier=*/true);
  EXPECT_TRUE(traced.race_free) << traced.report;
  EXPECT_TRUE(traced.races.empty());
  EXPECT_GT(traced.events, 0u);

  life::SerialLife serial(initial);
  serial.run(4);
  EXPECT_EQ(traced.grid, serial.grid()) << "tracing does not change the simulation";
}

TEST(TracedLife, BarrierRemovedVariantIsFlagged) {
  life::Grid initial = life::Grid::random(12, 12, 0.35, 31);
  const auto traced = life::traced_life_check(initial, 3, 2, /*use_barrier=*/false);
  EXPECT_FALSE(traced.race_free);
  ASSERT_FALSE(traced.races.empty());
  // The characteristic bug: the serial thread's swap races a band
  // thread's access to the grid.
  const auto swap_race = std::find_if(
      traced.races.begin(), traced.races.end(), [](const RaceReport& r) {
        return r.second.where.find("swap grids") != std::string::npos ||
               r.first.where.find("swap grids") != std::string::npos;
      });
  ASSERT_NE(swap_race, traced.races.end());
  EXPECT_NE(swap_race->first.thread, swap_race->second.thread);
  EXPECT_THROW(life::traced_life_check(initial, 0, 1, true), Error);
  EXPECT_THROW(life::traced_life_check(initial, 13, 1, true), Error);
}

TEST(Replay, RacyInterleavingFromAllInterleavingsIsFlagged) {
  // Acceptance criterion: scripts through os::all_interleavings, each
  // schedule replayed through the detector. Unlocked increments race in
  // every schedule; the locked pair is clean in every schedule.
  const std::vector<std::vector<std::string>> racy = {
      {"read x", "write x"},
      {"read x", "write x"},
  };
  const auto schedules = os::all_interleavings(tag_threads(racy));
  ASSERT_EQ(schedules.size(), 6u);  // C(4,2) interleavings of 2+2 ops
  std::size_t flagged = 0;
  for (const auto& schedule : schedules) {
    const ReplayResult result = replay(schedule);
    if (!result.race_free()) ++flagged;
    EXPECT_EQ(result.schedule, schedule);
  }
  EXPECT_EQ(flagged, schedules.size())
      << "an unlocked read-modify-write races in every schedule";

  const std::vector<std::vector<std::string>> locked = {
      {"lock m", "read x", "write x", "unlock m"},
      {"lock m", "read x", "write x", "unlock m"},
  };
  const auto locked_results = replay_all_interleavings(locked);
  const ReplayStats stats = summarize(locked_results);
  EXPECT_EQ(stats.schedules, 70u);  // C(8,4)
  // Mutual exclusion forbids the overlapped schedules, so the feasible
  // ones — where each critical section completes before the other
  // begins — are exactly the clean ones the detector certifies.
  EXPECT_EQ(stats.clean(), 2u) << "t0's section first, or t1's";
  EXPECT_EQ(stats.racy, 68u) << "every overlapped (infeasible) schedule is flagged";
}

TEST(Replay, BarrierAndChannelOps) {
  // Barrier op: both threads write their own cell, arrive, then read
  // the other's. The schedule a real barrier enforces — both arrivals
  // before either post-barrier read — is clean; a schedule where t0
  // reads past a barrier only it has reached is one a real barrier
  // would *block*, and the detector flags it (the enumerator
  // over-approximates feasible schedules; see replay.hpp).
  const ReplayResult synced = replay({"t0 write a", "t1 write b", "t0 barrier", "t1 barrier",
                                      "t0 read b", "t1 read a"});
  EXPECT_TRUE(synced.race_free())
      << (synced.races.empty() ? "" : synced.races[0].to_string());
  const ReplayResult jumped = replay({"t0 write a", "t0 barrier", "t0 read b", "t1 write b",
                                      "t1 barrier", "t1 read a"});
  EXPECT_FALSE(jumped.race_free()) << "t0 read b before t1 ever arrived";

  const ReplayResult handoff = replay({"t0 write x", "t0 send q", "t1 recv q", "t1 read x"});
  EXPECT_TRUE(handoff.race_free());
  const ReplayResult no_handoff = replay({"t0 write x", "t1 read x"});
  EXPECT_FALSE(no_handoff.race_free());

  EXPECT_THROW(replay({"write x"}), Error) << "missing thread tag";
  EXPECT_THROW(replay({"t0 frobnicate x"}), Error) << "unknown verb";
  EXPECT_THROW(replay({"t0 read"}), Error) << "missing operand";
}

TEST(Replay, SameScheduleListTwiceGivesIdenticalReports) {
  // Replay is a pure function of the schedule: running the same list of
  // schedules twice yields report-for-report identical results — the
  // whole point of replacing "run it and hope the race fires" with
  // happens-before analysis.
  const std::vector<std::vector<std::string>> scripts = {
      {"read x", "write x", "lock m", "write y", "unlock m"},
      {"write x", "lock m", "read y", "unlock m", "read x"},
  };
  const auto first_pass = replay_all_interleavings(scripts);
  const auto second_pass = replay_all_interleavings(scripts);
  ASSERT_EQ(first_pass.size(), second_pass.size());
  for (std::size_t i = 0; i < first_pass.size(); ++i) {
    EXPECT_EQ(first_pass[i].schedule, second_pass[i].schedule);
    EXPECT_EQ(first_pass[i].events, second_pass[i].events);
    ASSERT_EQ(first_pass[i].races.size(), second_pass[i].races.size());
    for (std::size_t r = 0; r < first_pass[i].races.size(); ++r) {
      EXPECT_EQ(first_pass[i].races[r].to_string(), second_pass[i].races[r].to_string());
    }
  }
  const ReplayStats stats = summarize(first_pass);
  EXPECT_EQ(stats.distinct, distinct_races(first_pass).size());
  EXPECT_LE(stats.distinct, stats.racy)
      << "distinct collapses duplicates across schedules";
}

TEST(TracedLife, BarrierlessRaceSetStableAcrossRounds) {
  // Regression for report dedup: the barrier-less Life bug is the same
  // race every round (site labels carry no round number), so running
  // more rounds must not multiply the report list — only race_count,
  // which counts every racy access, grows.
  life::Grid initial = life::Grid::random(10, 10, 0.35, 7);
  const auto one_round = life::traced_life_check(initial, 2, 1, /*use_barrier=*/false);
  const auto three_rounds = life::traced_life_check(initial, 2, 3, /*use_barrier=*/false);
  ASSERT_FALSE(one_round.race_free);
  ASSERT_FALSE(three_rounds.race_free);

  const auto keys = [](const std::vector<RaceReport>& races) {
    std::set<std::string> out;
    for (const RaceReport& r : races) out.insert(race_pair_key(r.variable, r.first, r.second));
    return out;
  };
  const std::set<std::string> once = keys(one_round.races);
  const std::set<std::string> thrice = keys(three_rounds.races);
  EXPECT_EQ(keys(one_round.races).size(), one_round.races.size()) << "already deduped";
  EXPECT_TRUE(std::includes(thrice.begin(), thrice.end(), once.begin(), once.end()))
      << "more rounds can only re-expose the same (variable, site pair) races";
  EXPECT_EQ(once, thrice) << "the bug set is stable across rounds, not multiplied by them";
}

}  // namespace
}  // namespace cs31::race
