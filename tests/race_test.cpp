// cs31::race tests: vector-clock algebra, the FastTrack-style detector
// over hand-fed event streams (fork/join, locks, barriers, channels),
// the shadow instrumentation layer on real threads (traced counter,
// traced Barrier/BoundedBuffer), the traced Game of Life certificates,
// and the replay mode over os::all_interleavings schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>

#include "common/error.hpp"
#include "life/traced.hpp"
#include "os/interleave.hpp"
#include "parallel/sync.hpp"
#include "parallel/threads.hpp"
#include "race/detector.hpp"
#include "race/replay.hpp"
#include "race/shadow.hpp"
#include "race/vector_clock.hpp"

namespace cs31::race {
namespace {

TEST(VectorClock, JoinTickCompare) {
  VectorClock a, b;
  a.tick(0);  // a = <1>
  b.tick(1);  // b = <0, 1>
  EXPECT_TRUE(concurrent(a, b)) << "independent events on different threads";

  VectorClock c = a;
  c.join(b);  // c = <1, 1>
  EXPECT_TRUE(happens_before(a, c));
  EXPECT_TRUE(happens_before(b, c));
  EXPECT_FALSE(happens_before(c, a));
  EXPECT_FALSE(concurrent(a, c));

  EXPECT_EQ(c.get(0), 1u);
  EXPECT_EQ(c.get(7), 0u) << "untouched components read as 0";
  EXPECT_TRUE(c.contains(Epoch{1, 1}));
  EXPECT_FALSE(c.contains(Epoch{1, 2}));
  EXPECT_EQ(c.to_string(), "<1, 1>");
}

TEST(VectorClock, HappensBeforeIsStrict) {
  VectorClock a;
  a.tick(0);
  VectorClock b = a;
  EXPECT_FALSE(happens_before(a, b)) << "equal clocks are not strictly ordered";
  EXPECT_TRUE(a.leq(b));
  b.tick(0);
  EXPECT_TRUE(happens_before(a, b));
}

TEST(Detector, ForkAndJoinOrderAccesses) {
  Detector d;
  const ThreadId child = d.fork(0);
  d.write(0, "x", "parent init before fork");
  // Oops — the write came *after* the fork edge was taken, so the child
  // racing it is real: the parent's post-fork write is concurrent with
  // the child. (Write first, then fork, and it would be clean — see
  // below.)
  d.read(child, "x", "child read");
  EXPECT_FALSE(d.race_free());

  Detector d2;
  d2.write(0, "x", "parent init");
  const ThreadId c2 = d2.fork(0);
  d2.read(c2, "x", "child read");
  EXPECT_TRUE(d2.race_free()) << "fork edge orders parent's earlier write";
  d2.write(c2, "x", "child update");
  d2.join(0, c2);
  d2.read(0, "x", "parent read after join");
  EXPECT_TRUE(d2.race_free()) << "join edge orders the child's write";
}

TEST(Detector, LockReleaseAcquireMakesHappensBefore) {
  Detector d;
  const ThreadId t1 = d.register_thread();
  d.acquire(0, "m");
  d.write(0, "x", "locked write");
  d.release(0, "m");
  d.acquire(t1, "m");
  d.read(t1, "x", "locked read");
  d.release(t1, "m");
  EXPECT_TRUE(d.race_free()) << "release->acquire is an HB edge";

  // The same accesses without the lock race.
  Detector d2;
  const ThreadId u = d2.register_thread();
  d2.write(0, "x", "unlocked write");
  d2.read(u, "x", "unlocked read");
  ASSERT_FALSE(d2.race_free());
  EXPECT_EQ(d2.races()[0].variable, "x");
}

TEST(Detector, TwoThreadUnsyncCounterAlwaysFlagged) {
  // The lecture's shared-counter race, as an explicit event stream: two
  // concurrent root threads each do read x; write x. Detection is a
  // property of the happens-before structure, so ANY serialization of
  // these events is flagged — no timing, no luck.
  Detector d;
  const ThreadId t1 = d.register_thread();
  d.read(0, "counter", "counter = counter + 1 @ thread 0");
  d.write(0, "counter", "counter = counter + 1 @ thread 0");
  d.read(t1, "counter", "counter = counter + 1 @ thread 1");
  d.write(t1, "counter", "counter = counter + 1 @ thread 1");

  ASSERT_FALSE(d.race_free());
  const RaceReport& r = d.races()[0];
  EXPECT_EQ(r.variable, "counter");
  // Both access sites are reported, from the two different threads.
  EXPECT_NE(r.first.thread, r.second.thread);
  EXPECT_FALSE(r.first.where.empty());
  EXPECT_FALSE(r.second.where.empty());
  EXPECT_TRUE(r.first.locks_held.empty());
  EXPECT_TRUE(r.second.locks_held.empty());
  EXPECT_NE(r.explanation.find("no lock in common"), std::string::npos);
}

TEST(Detector, BarrierCycleOrdersAllWaiters) {
  Detector d;
  const ThreadId t1 = d.register_thread();
  const ThreadId t2 = d.register_thread();
  d.write(0, "a", "phase 1");
  d.write(t1, "b", "phase 1");
  d.barrier({0, t1, t2});
  // After the cycle every waiter may read every other waiter's work.
  d.read(t2, "a", "phase 2");
  d.read(t1, "a", "phase 2");
  d.read(0, "b", "phase 2");
  EXPECT_TRUE(d.race_free());
  EXPECT_THROW(d.barrier({}), Error);
}

TEST(Detector, ChannelSendRecvOrders) {
  Detector d;
  const ThreadId consumer = d.register_thread();
  d.write(0, "payload", "producer fills");
  d.channel_send(0, "q");
  d.channel_recv(consumer, "q");
  d.read(consumer, "payload", "consumer uses");
  EXPECT_TRUE(d.race_free());
}

TEST(Detector, ReadSharingThenRacyWrite) {
  // Many concurrent readers are fine; a concurrent writer races them.
  Detector d;
  const ThreadId t1 = d.register_thread();
  const ThreadId t2 = d.register_thread();
  d.read(0, "x", "reader 0");
  d.read(t1, "x", "reader 1");
  EXPECT_TRUE(d.race_free()) << "read-read never conflicts";
  d.write(t2, "x", "writer");
  ASSERT_FALSE(d.race_free());
  // Both readers race the write: distinct (var, pair) reports.
  EXPECT_EQ(d.races().size(), 2u);
  EXPECT_EQ(d.races()[0].second.kind, AccessKind::Write);
}

TEST(Detector, OneReportPerVariableAndPair) {
  Detector d;
  const ThreadId t1 = d.register_thread();
  for (int i = 0; i < 10; ++i) {
    d.write(0, "x", "hammer 0");
    d.write(t1, "x", "hammer 1");
  }
  EXPECT_EQ(d.races().size(), 1u) << "deduped per (variable, thread pair)";
  EXPECT_GT(d.race_count(), 1u) << "but every racy access is counted";
}

TEST(Detector, ReleaseOfUnheldLockThrows) {
  Detector d;
  EXPECT_THROW(d.release(0, "m"), Error);
  EXPECT_THROW(d.read(99, "x"), Error) << "unknown thread id";
}

TEST(SharedCounterTraced, UnsynchronizedDeterministicallyFlagged) {
  // The acceptance-criterion test: a two-thread unsynchronized counter
  // is flagged on every run, with both access sites in the report —
  // unlike the statistical lost-update demo, there is no timing
  // dependence: the verdict follows from the absent HB edges.
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto run = parallel::SharedCounter::run_traced(
        parallel::SharedCounter::Mode::Unsynchronized, 2, 100);
    EXPECT_TRUE(run.race_detected);
    ASSERT_FALSE(run.races.empty());
    const RaceReport& r = run.races[0];
    EXPECT_EQ(r.variable, "counter");
    EXPECT_NE(r.first.thread, r.second.thread);
    EXPECT_NE(r.first.where.find("no lock"), std::string::npos);
    EXPECT_NE(r.second.where.find("no lock"), std::string::npos);
    EXPECT_LE(run.value, 200u) << "lost updates only, never invented ones";
  }
}

TEST(SharedCounterTraced, SynchronizedModesCertifiedRaceFreeAndExact) {
  using parallel::SharedCounter;
  for (const auto mode : {SharedCounter::Mode::MutexPerIncrement, SharedCounter::Mode::Atomic,
                          SharedCounter::Mode::LocalThenMerge}) {
    const auto run = SharedCounter::run_traced(mode, 4, 200);
    EXPECT_FALSE(run.race_detected) << run.report;
    EXPECT_EQ(run.value, 4u * 200u) << "a correct mode is exact";
    EXPECT_NE(run.report.find("race-free"), std::string::npos);
  }
}

TEST(TracedPrimitives, MutexProtectedSharingIsClean) {
  TraceContext ctx;
  TracedMutex m("m", ctx);
  TracedVar<int> shared("shared", ctx, 0);
  parallel::ThreadTeam team(4, ctx, [&](std::size_t) {
    for (int i = 0; i < 50; ++i) {
      std::scoped_lock lock(m);
      shared.store(shared.load() + 1);
    }
  });
  team.join();
  EXPECT_TRUE(ctx.detector().race_free());
  EXPECT_EQ(shared.load(), 200);
  EXPECT_GE(ctx.detector().threads(), 5u) << "main + 4 workers";
}

TEST(TracedPrimitives, LocksHeldAppearInTheReport) {
  // One side locks, the other does not: still a race, and the report's
  // lockset view shows the asymmetry (the pedagogical "your lock only
  // helps if EVERY access path takes it").
  TraceContext ctx;
  TracedMutex m("half_lock", ctx);
  TracedVar<int> shared("shared", ctx, 0);
  parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
    if (id == 0) {
      std::scoped_lock lock(m);
      shared.store(shared.load() + 1, "locked increment");
    } else {
      shared.store(shared.load() + 1, "unlocked increment");
    }
  });
  team.join();
  ASSERT_FALSE(ctx.detector().race_free());
  const RaceReport& r = ctx.detector().races()[0];
  const bool first_locked = !r.first.locks_held.empty();
  const bool second_locked = !r.second.locks_held.empty();
  EXPECT_NE(first_locked, second_locked) << "exactly one side holds half_lock";
  const auto& held = first_locked ? r.first.locks_held : r.second.locks_held;
  EXPECT_EQ(held, std::vector<std::string>{"half_lock"});
}

TEST(TracedPrimitives, UnboundThreadThrows) {
  TraceContext ctx;
  std::thread outsider([&] {
    EXPECT_THROW(ctx.read("x"), Error);
  });
  outsider.join();
}

TEST(TracedBarrier, BarrierCyclesMakeRoundsRaceFree) {
  // Round-structured sharing: each thread writes its slot, the barrier
  // closes the round, then everyone reads every slot. Race-free only
  // because Barrier::attach_tracer turns each cycle into an HB edge.
  constexpr std::size_t kThreads = 4;
  TraceContext ctx;
  parallel::Barrier barrier(kThreads);
  barrier.attach_tracer(ctx);
  std::vector<TracedVar<int>*> slots;
  std::vector<std::unique_ptr<TracedVar<int>>> storage;
  for (std::size_t t = 0; t < kThreads; ++t) {
    storage.push_back(std::make_unique<TracedVar<int>>("slot" + std::to_string(t), ctx, 0));
    slots.push_back(storage.back().get());
  }
  parallel::ThreadTeam team(kThreads, ctx, [&](std::size_t id) {
    for (int round = 0; round < 3; ++round) {
      slots[id]->store(round, "fill my slot");
      barrier.wait();
      int sum = 0;
      for (std::size_t t = 0; t < kThreads; ++t) sum += slots[t]->load("read all slots");
      EXPECT_EQ(sum, static_cast<int>(kThreads) * round);
      barrier.wait();  // separate the read phase from the next round's writes
    }
  });
  team.join();
  EXPECT_TRUE(ctx.detector().race_free()) << ctx.detector().summary();
  EXPECT_EQ(barrier.cycles(), 6u);
}

TEST(TracedBoundedBuffer, ProducerConsumerHandoffIsClean) {
  // Ownership handoff through the queue: the producer fills item_i and
  // never touches it again; the consumer reads item_i only after
  // get()ing its index. The put/get channel edges order every fill
  // before the matching read.
  constexpr int kItems = 8;
  TraceContext ctx;
  parallel::BoundedBuffer buffer(2);
  buffer.attach_tracer(ctx, "queue");
  std::vector<std::unique_ptr<TracedVar<int>>> items;
  for (int i = 0; i < kItems; ++i) {
    items.push_back(std::make_unique<TracedVar<int>>("item" + std::to_string(i), ctx, 0));
  }
  parallel::ThreadTeam team(2, ctx, [&](std::size_t id) {
    if (id == 0) {
      for (int i = 0; i < kItems; ++i) {
        items[i]->store(i * 10, "producer fills");
        buffer.put(i);
      }
    } else {
      for (int i = 0; i < kItems; ++i) {
        const auto item = static_cast<std::size_t>(buffer.get());
        EXPECT_EQ(items[item]->load("consumer reads"), static_cast<int>(item) * 10);
      }
    }
  });
  team.join();
  EXPECT_TRUE(ctx.detector().race_free()) << ctx.detector().summary();

  TraceContext ctx2;
  parallel::BoundedBuffer silent(2);  // no tracer: the handoff edge is invisible
  TracedVar<int> payload2("payload", ctx2, 0);
  parallel::ThreadTeam team2(2, ctx2, [&](std::size_t id) {
    if (id == 0) {
      payload2.store(1, "producer prepares");
      silent.put(1);
    } else {
      (void)silent.get();
      (void)payload2.load("consumer inspects");
    }
  });
  team2.join();
  EXPECT_FALSE(ctx2.detector().race_free())
      << "without the channel edge the handoff cannot be proven ordered";
}

TEST(TracedLife, BarrierSynchronizedStepCertifiedRaceFree) {
  // Acceptance criterion: the Lab 10 structure (compute, barrier, serial
  // swap, barrier) is certified race-free, and the traced run really
  // computes the same generations as the serial engine.
  life::Grid initial = life::Grid::random(12, 12, 0.35, 31);
  const auto traced = life::traced_life_check(initial, 3, 4, /*use_barrier=*/true);
  EXPECT_TRUE(traced.race_free) << traced.report;
  EXPECT_TRUE(traced.races.empty());
  EXPECT_GT(traced.events, 0u);

  life::SerialLife serial(initial);
  serial.run(4);
  EXPECT_EQ(traced.grid, serial.grid()) << "tracing does not change the simulation";
}

TEST(TracedLife, BarrierRemovedVariantIsFlagged) {
  life::Grid initial = life::Grid::random(12, 12, 0.35, 31);
  const auto traced = life::traced_life_check(initial, 3, 2, /*use_barrier=*/false);
  EXPECT_FALSE(traced.race_free);
  ASSERT_FALSE(traced.races.empty());
  // The characteristic bug: the serial thread's swap races a band
  // thread's access to the grid.
  const auto swap_race = std::find_if(
      traced.races.begin(), traced.races.end(), [](const RaceReport& r) {
        return r.second.where.find("swap grids") != std::string::npos ||
               r.first.where.find("swap grids") != std::string::npos;
      });
  ASSERT_NE(swap_race, traced.races.end());
  EXPECT_NE(swap_race->first.thread, swap_race->second.thread);
  EXPECT_THROW(life::traced_life_check(initial, 0, 1, true), Error);
  EXPECT_THROW(life::traced_life_check(initial, 13, 1, true), Error);
}

TEST(Replay, RacyInterleavingFromAllInterleavingsIsFlagged) {
  // Acceptance criterion: scripts through os::all_interleavings, each
  // schedule replayed through the detector. Unlocked increments race in
  // every schedule; the locked pair is clean in every schedule.
  const std::vector<std::vector<std::string>> racy = {
      {"read x", "write x"},
      {"read x", "write x"},
  };
  const auto schedules = os::all_interleavings(tag_threads(racy));
  ASSERT_EQ(schedules.size(), 6u);  // C(4,2) interleavings of 2+2 ops
  std::size_t flagged = 0;
  for (const auto& schedule : schedules) {
    const ReplayResult result = replay(schedule);
    if (!result.race_free()) ++flagged;
    EXPECT_EQ(result.schedule, schedule);
  }
  EXPECT_EQ(flagged, schedules.size())
      << "an unlocked read-modify-write races in every schedule";

  const std::vector<std::vector<std::string>> locked = {
      {"lock m", "read x", "write x", "unlock m"},
      {"lock m", "read x", "write x", "unlock m"},
  };
  const auto locked_results = replay_all_interleavings(locked);
  const ReplayStats stats = summarize(locked_results);
  EXPECT_EQ(stats.schedules, 70u);  // C(8,4)
  // Mutual exclusion forbids the overlapped schedules, so the feasible
  // ones — where each critical section completes before the other
  // begins — are exactly the clean ones the detector certifies.
  EXPECT_EQ(stats.clean(), 2u) << "t0's section first, or t1's";
  EXPECT_EQ(stats.racy, 68u) << "every overlapped (infeasible) schedule is flagged";
}

TEST(Replay, BarrierAndChannelOps) {
  // Barrier op: both threads write their own cell, arrive, then read
  // the other's. The schedule a real barrier enforces — both arrivals
  // before either post-barrier read — is clean; a schedule where t0
  // reads past a barrier only it has reached is one a real barrier
  // would *block*, and the detector flags it (the enumerator
  // over-approximates feasible schedules; see replay.hpp).
  const ReplayResult synced = replay({"t0 write a", "t1 write b", "t0 barrier", "t1 barrier",
                                      "t0 read b", "t1 read a"});
  EXPECT_TRUE(synced.race_free())
      << (synced.races.empty() ? "" : synced.races[0].to_string());
  const ReplayResult jumped = replay({"t0 write a", "t0 barrier", "t0 read b", "t1 write b",
                                      "t1 barrier", "t1 read a"});
  EXPECT_FALSE(jumped.race_free()) << "t0 read b before t1 ever arrived";

  const ReplayResult handoff = replay({"t0 write x", "t0 send q", "t1 recv q", "t1 read x"});
  EXPECT_TRUE(handoff.race_free());
  const ReplayResult no_handoff = replay({"t0 write x", "t1 read x"});
  EXPECT_FALSE(no_handoff.race_free());

  EXPECT_THROW(replay({"write x"}), Error) << "missing thread tag";
  EXPECT_THROW(replay({"t0 frobnicate x"}), Error) << "unknown verb";
  EXPECT_THROW(replay({"t0 read"}), Error) << "missing operand";
}

}  // namespace
}  // namespace cs31::race
