// Game of Life tests (Labs 6 & 10): rules on the classic patterns, the
// lab file format, serial/parallel equivalence across thread counts and
// split directions, shared statistics, and ParaVis rendering.
#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hpp"
#include "life/life.hpp"
#include "paravis/paravis.hpp"

namespace cs31::life {
namespace {

Grid blinker() {
  Grid g(5, 5);
  g.set(2, 1, true);
  g.set(2, 2, true);
  g.set(2, 3, true);
  return g;
}

TEST(Grid, ParseLabFileFormat) {
  const Grid g = Grid::parse("4 6\n3\n0 0\n1 2\n3 5\n");
  EXPECT_EQ(g.rows(), 4u);
  EXPECT_EQ(g.cols(), 6u);
  EXPECT_EQ(g.population(), 3u);
  EXPECT_TRUE(g.alive(1, 2));
  EXPECT_FALSE(g.alive(0, 1));
}

TEST(Grid, ParseDiagnosesMalformedFiles) {
  EXPECT_THROW(Grid::parse(""), Error);
  EXPECT_THROW(Grid::parse("4"), Error);
  EXPECT_THROW(Grid::parse("4 4\n2\n0 0\n"), Error);       // missing pair
  EXPECT_THROW(Grid::parse("4 4\n1\n9 9\n"), Error);       // out of range
  EXPECT_THROW(Grid::parse("0 4\n0\n"), Error);            // zero dimension
}

TEST(Grid, NeighborsBoundedVsTorus) {
  Grid g(3, 3);
  g.set(0, 0, true);
  g.set(2, 2, true);
  // Bounded: corners don't see each other.
  EXPECT_EQ(g.neighbors(1, 1, EdgeRule::Bounded), 2);
  EXPECT_EQ(g.neighbors(0, 1, EdgeRule::Bounded), 1);
  // Torus: (0,0) and (2,2) are diagonal neighbors across the wrap.
  EXPECT_EQ(g.neighbors(0, 0, EdgeRule::Torus), 1);
  EXPECT_EQ(g.neighbors(2, 2, EdgeRule::Torus), 1);
}

TEST(Grid, OutOfRangeThrows) {
  Grid g(3, 3);
  EXPECT_THROW((void)g.alive(3, 0), Error);
  EXPECT_THROW(g.set(0, 3, true), Error);
  EXPECT_THROW((void)g.neighbors(3, 3, EdgeRule::Torus), Error);
}

TEST(SerialLife, BlinkerOscillatesWithPeriodTwo) {
  SerialLife sim(blinker(), EdgeRule::Bounded);
  const Grid start = sim.grid();
  sim.step();
  EXPECT_TRUE(sim.grid().alive(1, 2));
  EXPECT_TRUE(sim.grid().alive(2, 2));
  EXPECT_TRUE(sim.grid().alive(3, 2));
  EXPECT_FALSE(sim.grid().alive(2, 1));
  sim.step();
  EXPECT_EQ(sim.grid(), start);
  EXPECT_EQ(sim.generation(), 2u);
}

TEST(SerialLife, BlockIsStill) {
  Grid g(4, 4);
  g.set(1, 1, true);
  g.set(1, 2, true);
  g.set(2, 1, true);
  g.set(2, 2, true);
  SerialLife sim(g, EdgeRule::Bounded);
  sim.run(5);
  EXPECT_EQ(sim.grid(), g);
}

TEST(SerialLife, GliderTranslatesOnTorus) {
  Grid g(8, 8);
  // Standard glider.
  g.set(0, 1, true);
  g.set(1, 2, true);
  g.set(2, 0, true);
  g.set(2, 1, true);
  g.set(2, 2, true);
  SerialLife sim(g, EdgeRule::Torus);
  sim.run(4);  // a glider shifts (+1, +1) every 4 generations
  Grid expected(8, 8);
  expected.set(1, 2, true);
  expected.set(2, 3, true);
  expected.set(3, 1, true);
  expected.set(3, 2, true);
  expected.set(3, 3, true);
  EXPECT_EQ(sim.grid(), expected);
  EXPECT_EQ(sim.grid().population(), 5u);
}

TEST(SerialLife, EmptyGridStaysEmpty) {
  SerialLife sim(Grid(10, 10));
  sim.run(3);
  EXPECT_EQ(sim.grid().population(), 0u);
}

// Lab 10's correctness requirement: the parallel result equals the
// serial result, for every thread count, split direction, and edge rule.
class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::size_t, parallel::GridSplit, EdgeRule>> {
};

TEST_P(ParallelEquivalence, MatchesSerialAfterManyGenerations) {
  const auto [threads, split, rule] = GetParam();
  const Grid initial = Grid::random(32, 48, 0.35, 1234);
  SerialLife serial(initial, rule);
  ParallelLife parallel_sim(initial, threads, split, rule);
  serial.run(12);
  parallel_sim.run(12);
  EXPECT_EQ(parallel_sim.grid(), serial.grid());
  EXPECT_EQ(parallel_sim.generation(), 12u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(parallel::GridSplit::Horizontal,
                                         parallel::GridSplit::Vertical),
                       ::testing::Values(EdgeRule::Torus, EdgeRule::Bounded)));

TEST(ParallelLife, StatsAccumulateUnderMutex) {
  const Grid initial = Grid::random(24, 24, 0.4, 99);
  ParallelLife par(initial, 4);
  par.run(10);
  SerialLife ser(initial);
  // Count serial births/deaths for comparison.
  std::uint64_t births = 0, deaths = 0;
  Grid prev = initial;
  for (int i = 0; i < 10; ++i) {
    ser.step();
    for (std::size_t r = 0; r < prev.rows(); ++r) {
      for (std::size_t c = 0; c < prev.cols(); ++c) {
        if (ser.grid().alive(r, c) && !prev.alive(r, c)) ++births;
        if (!ser.grid().alive(r, c) && prev.alive(r, c)) ++deaths;
      }
    }
    prev = ser.grid();
  }
  EXPECT_EQ(par.stats().births, births);
  EXPECT_EQ(par.stats().deaths, deaths);
  EXPECT_GT(par.stats().max_population, 0u);
}

TEST(ParallelLife, OwnerMapsCellsToThreadBands) {
  ParallelLife par(Grid(16, 16), 4, parallel::GridSplit::Horizontal);
  EXPECT_EQ(par.owner(0, 0), 0);
  EXPECT_EQ(par.owner(5, 3), 1);
  EXPECT_EQ(par.owner(15, 15), 3);
  ParallelLife vert(Grid(16, 16), 4, parallel::GridSplit::Vertical);
  EXPECT_EQ(vert.owner(3, 5), 1);
}

TEST(ParallelLife, RejectsMoreThreadsThanBands) {
  EXPECT_THROW(ParallelLife(Grid(4, 100), 5, parallel::GridSplit::Horizontal), Error);
  EXPECT_NO_THROW(ParallelLife(Grid(4, 100), 5, parallel::GridSplit::Vertical));
}

TEST(ParaVis, RendersCellsAndNewlines) {
  Grid g(2, 3);
  g.set(0, 0, true);
  g.set(1, 2, true);
  paravis::FrameSource frame{
      2, 3, [&](std::size_t r, std::size_t c) { return g.alive(r, c); }, nullptr};
  EXPECT_EQ(paravis::render(frame), "@..\n..@\n");
}

TEST(ParaVis, AnsiModeColorsThreadRegions) {
  ParallelLife par(Grid(4, 4), 2);
  paravis::FrameSource frame{
      4, 4, [&](std::size_t r, std::size_t c) { return par.grid().alive(r, c); },
      [&](std::size_t r, std::size_t c) { return par.owner(r, c); }};
  paravis::VisConfig cfg;
  cfg.ansi_colors = true;
  const std::string out = paravis::render(frame, cfg);
  EXPECT_NE(out.find("\x1b[41m"), std::string::npos) << "thread 0 color";
  EXPECT_NE(out.find("\x1b[42m"), std::string::npos) << "thread 1 color";
  EXPECT_NE(out.find("\x1b[0m"), std::string::npos) << "reset per line";
}

TEST(ParaVis, RegionColorCyclesAndValidation) {
  EXPECT_EQ(paravis::region_color(0), 41);
  EXPECT_EQ(paravis::region_color(8), 41);
  EXPECT_EQ(paravis::region_color(-1), 49);
  paravis::FrameSource bad{0, 0, nullptr, nullptr};
  EXPECT_THROW((void)paravis::render(bad), Error);
}

TEST(ParaVis, RecorderCapturesEvolution) {
  SerialLife sim(blinker(), EdgeRule::Bounded);
  paravis::Recorder recorder;
  for (int i = 0; i < 3; ++i) {
    paravis::FrameSource frame{
        sim.grid().rows(), sim.grid().cols(),
        [&](std::size_t r, std::size_t c) { return sim.grid().alive(r, c); }, nullptr};
    recorder.record(frame);
    sim.step();
  }
  ASSERT_EQ(recorder.frame_count(), 3u);
  EXPECT_EQ(recorder.frames()[0], recorder.frames()[2]) << "period-2 oscillator";
  EXPECT_NE(recorder.frames()[0], recorder.frames()[1]);
}

}  // namespace
}  // namespace cs31::life
