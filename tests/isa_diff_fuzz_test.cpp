// Differential execution fuzzing: the proof-by-bombardment that the
// predecoded threaded-dispatch core and the switch interpreter are the
// same machine. Over a thousand seeded generated programs — plus the
// bundled Lab 4 routines under a call harness, every floor of a
// 16-floor maze, and the compiled mini-C corpus at both optimizer
// levels — run on both cores in randomly sized run_limited chunks, and
// the architectural trajectories must be byte-identical: same
// registers, same EFLAGS, same EIP at every chunk boundary, same
// instruction counts, same stop reasons at exact budget-exhaustion
// points, same memory image, and the same error text when a program
// faults.
//
// Reproducing a divergence: every failure message carries the seed (and
// for generated programs the full source via to_string()).
// `generate_program(seed, config_for(seed))` regenerates the exact
// program; the chunk schedule is derived from the same seed.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ccomp/driver.hpp"
#include "common/error.hpp"
#include "isa/assembler.hpp"
#include "isa/machine.hpp"
#include "isa/maze.hpp"
#include "isa/program_gen.hpp"
#include "isa/samples.hpp"

namespace cs31::isa {
namespace {

/// splitmix64, for the chunk schedule — same generator family as
/// program_gen, so the whole repro is two seeds (here they coincide).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint32_t below(std::uint32_t bound) {
    return bound == 0 ? 0 : static_cast<std::uint32_t>(next() % bound);
  }

 private:
  std::uint64_t state_;
};

/// Everything architecturally observable about a machine short of its
/// memory image, as one comparable, printable value.
struct Snapshot {
  std::array<std::uint32_t, 8> regs{};
  std::uint32_t eip = 0;
  Eflags flags;
  std::size_t executed = 0;
  bool halted = false;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < regs.size(); ++i) {
      out << reg_name(static_cast<Reg>(i)) << "=" << regs[i] << " ";
    }
    out << "eip=" << eip << " cf=" << flags.cf << " zf=" << flags.zf << " sf=" << flags.sf
        << " of=" << flags.of << " executed=" << executed << " halted=" << halted;
    return out.str();
  }
};

Snapshot snap(const Machine& m) {
  Snapshot s;
  for (std::size_t i = 0; i < s.regs.size(); ++i) s.regs[i] = m.reg(static_cast<Reg>(i));
  s.eip = m.reg(Reg::Eip);
  s.flags = m.flags();
  s.executed = m.instructions_executed();
  s.halted = m.halted();
  return s;
}

/// FNV-1a over the whole memory image, word at a time.
std::uint64_t memory_digest(const Machine& m) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint32_t addr = 0; addr + 4 <= m.memory_size(); addr += 4) {
    std::uint32_t w = m.load32(addr);
    for (int i = 0; i < 4; ++i) {
      h ^= (w >> (8 * i)) & 0xffu;
      h *= 1099511628762211ULL;
    }
  }
  return h;
}

/// Drive two already-loaded machines through the same program in
/// randomly sized run_limited chunks and assert the trajectories are
/// identical at every boundary. `chunk_span` bounds the chunk sizes
/// (small spans cut blocks mid-stride constantly; large spans keep the
/// digesting affordable for long corpus runs).
void run_pair(Machine& fast, Machine& slow, std::uint64_t seed, std::uint32_t chunk_span,
              const std::string& repro) {
  ASSERT_EQ(fast.core(), Machine::Core::Predecoded) << repro;
  slow.set_core(Machine::Core::Switch);
  SplitMix64 rng(seed ^ 0xD1FFF022ULL);
  constexpr std::size_t kMaxTotal = 4'000'000;  // runaway guard, never a comparison
  std::size_t total = 0;
  while (total < kMaxTotal) {
    const Machine::RunLimits limits{1 + rng.below(chunk_span), 0.0};
    std::string fast_error, slow_error;
    Machine::RunOutcome fast_outcome{}, slow_outcome{};
    try {
      fast_outcome = fast.run_limited(limits);
    } catch (const Error& e) {
      fast_error = e.what();
    }
    try {
      slow_outcome = slow.run_limited(limits);
    } catch (const Error& e) {
      slow_error = e.what();
    }
    ASSERT_EQ(fast_error, slow_error) << repro;
    ASSERT_EQ(snap(fast).to_string(), snap(slow).to_string()) << repro;
    const bool done = !fast_error.empty() || fast_outcome.reason == Machine::StopReason::Halted;
    // Registers are cheap and compared every chunk; the full memory
    // image periodically and always at the end of the run.
    if (done || rng.below(16) == 0) {
      ASSERT_EQ(memory_digest(fast), memory_digest(slow)) << repro;
    }
    if (!fast_error.empty()) return;  // both cores faulted identically
    ASSERT_EQ(static_cast<int>(fast_outcome.reason), static_cast<int>(slow_outcome.reason))
        << repro;
    ASSERT_EQ(fast_outcome.instructions, slow_outcome.instructions) << repro;
    if (done) return;
    total += fast_outcome.instructions;
  }
  FAIL() << "program still running after " << kMaxTotal << " instructions\n" << repro;
}

/// Load the image into a fast/slow pair and run them in lockstep.
void expect_lockstep(const Image& image, std::uint32_t mem_bytes, std::uint64_t seed,
                     std::uint32_t chunk_span, const std::string& repro) {
  Machine fast(mem_bytes);
  Machine slow(mem_bytes);
  fast.load(image);
  slow.load(image);
  ASSERT_NO_FATAL_FAILURE(run_pair(fast, slow, seed, chunk_span, repro));
}

/// Vary the generator knobs with the seed so the sweep covers programs
/// from tiny straight-line bursts to call-ladder/loop tangles — not
/// just one shape. Deterministic: the config is part of the repro.
ProgramGenConfig config_for(std::uint64_t seed) {
  ProgramGenConfig cfg;
  cfg.segments = 4 + seed % 11;             // 4..14
  cfg.functions = (seed / 3) % 4;           // 0..3
  cfg.ops_per_block = 2 + (seed / 7) % 6;   // 2..7
  cfg.max_trip = 1 + (seed / 11) % 12;      // 1..12
  cfg.mem_words = 8 + (seed / 13) % 57;     // 8..64
  return cfg;
}

// The acceptance-criterion sweep: >= 1000 seeded programs, zero
// trajectory divergence. Tier-1 as part of `isa_diff_fuzz_smoke`
// (fixed seeds, so exactly as deterministic as any unit test).
TEST(DiffFuzz, ThousandSeededPrograms) {
  constexpr std::uint64_t kPrograms = 1100;
  std::size_t with_calls = 0, with_loops = 0, with_memory = 0;
  for (std::uint64_t seed = 1; seed <= kPrograms; ++seed) {
    const GeneratedProgram program = generate_program(seed, config_for(seed));
    const std::string repro = "seed=" + std::to_string(seed) + "\n" + program.to_string();
    Image image;
    try {
      image = assemble(program.source);
    } catch (const Error& e) {
      FAIL() << "generated program must assemble: " << e.what() << "\n" << repro;
    }
    ASSERT_NO_FATAL_FAILURE(expect_lockstep(image, 1u << 16, seed, 17, repro));

    with_calls += program.source.find("call ") != std::string::npos;
    with_loops += program.source.find("gen_loop") != std::string::npos;
    with_memory += program.source.find("(%esi") != std::string::npos;
  }
  // The sweep only proves equivalence where it exercises the hazards.
  EXPECT_GT(with_calls, kPrograms / 10) << "generator must produce call ladders";
  EXPECT_GT(with_loops, kPrograms / 10) << "and counted loops";
  EXPECT_GT(with_memory, kPrograms / 2) << "and scratch-region memory traffic";
}

TEST(DiffFuzz, GeneratorIsDeterministicFromItsSeed) {
  for (const std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    const GeneratedProgram a = generate_program(seed, config_for(seed));
    const GeneratedProgram b = generate_program(seed, config_for(seed));
    EXPECT_EQ(a.to_string(), b.to_string()) << "same seed, same program";
  }
}

// The Lab 4 routines under a cdecl call harness, with staged array
// data so the pointer-walking samples traverse real values.
TEST(DiffFuzz, Lab4SamplesUnderCallHarness) {
  for (const AsmSample& s : lab4_samples()) {
    const std::string harness =
        "_start:\n"
        // Stage a little array at 4096 (three words, then a 0 so the
        // string walker terminates).
        "    movl $4096, %esi\n"
        "    movl $7, (%esi)\n"
        "    movl $3, 4(%esi)\n"
        "    movl $7, 8(%esi)\n"
        "    movl $0, 12(%esi)\n"
        // cdecl: (4096, 3, 7) covers every sample's signature.
        "    pushl $7\n"
        "    pushl $3\n"
        "    pushl $4096\n"
        "    call " + s.name + "\n"
        "    hlt\n" + s.source;
    ASSERT_NO_FATAL_FAILURE(
        expect_lockstep(assemble(harness), 1u << 16, 0xAB4 + s.name.size(), 7, s.name));
  }
}

// Every floor of a full-height maze, with the real solution and with a
// wrong guess (the explode path), on both cores.
TEST(DiffFuzz, MazeFloorsOnBothCores) {
  const Maze maze(16);
  for (unsigned floor = 0; floor < maze.floors(); ++floor) {
    for (const bool correct : {true, false}) {
      const std::uint32_t guess = correct ? maze.solution(floor) : maze.solution(floor) ^ 0x5A5A;
      Machine fast;
      Machine slow;
      fast.load(maze.image());
      slow.load(maze.image());
      for (Machine* m : {&fast, &slow}) {
        m->set_reg(Reg::Eip, maze.image().symbol("floor_" + std::to_string(floor)));
        m->set_reg(Reg::Eax, guess);
      }
      const std::string repro =
          "floor=" + std::to_string(floor) + " guess=" + std::to_string(guess);
      ASSERT_NO_FATAL_FAILURE(run_pair(fast, slow, floor * 2 + correct, 257, repro));
    }
  }
}

// The compiled mini-C corpus (the analyze suite's clean fixture set)
// at both optimizer levels, run to completion under an entry stub.
TEST(DiffFuzz, CompiledMiniCAtBothOptLevels) {
  struct Fixture {
    std::string source;
    std::vector<int> args;
  };
  const std::vector<Fixture> corpus = {
      {"int main() { return 42; }\n", {}},
      {"int main() { int x = 1; return x; }\n", {}},
      {"int add(int a, int b) { return a + b; }\n"
       "int main() { return add(40, 2); }\n",
       {}},
      {"int fact(int n) {\n"
       "  if (n < 2) { return 1; }\n"
       "  return n * fact(n - 1);\n"
       "}\n"
       "int main() { return fact(5); }\n",
       {}},
      {"int main(int a) {\n"
       "  int s = 0;\n"
       "  int i = 0;\n"
       "  while (i < a) { s = s + i; i = i + 1; }\n"
       "  return s;\n"
       "}\n",
       {10}},
      {"int sign(int x) {\n"
       "  if (x > 0) { return 1; } else { if (x < 0) { return 0 - 1; } else { return 0; } }\n"
       "}\n"
       "int main(int a) { return sign(a); }\n",
       {-7}},
      {"int popcount(int v) {\n"
       "  int n = 0;\n"
       "  while (v != 0) { n = n + (v & 1); v = v >> 1; }\n"
       "  return n;\n"
       "}\n"
       "int main(int a) { return popcount(a); }\n",
       {173}},
      {"int both(int a, int b) { return a && b || !a; }\n"
       "int main(int a, int b) { return both(a, b); }\n",
       {1, 0}},
  };
  std::uint64_t seed = 0xC0DE;
  for (const Fixture& fixture : corpus) {
    for (const bool optimize : {false, true}) {
      cc::PipelineOptions opts;
      opts.optimize = optimize;
      const cc::PipelineResult compiled = cc::compile_pipeline(fixture.source, opts);
      std::ostringstream stub;
      stub << "_start:\n";
      for (auto it = fixture.args.rbegin(); it != fixture.args.rend(); ++it) {
        stub << "    pushl $" << *it << "\n";
      }
      stub << "    call main\n    hlt\n";
      const Image image = assemble(compiled.assembly + stub.str());
      const std::string repro =
          "(optimize=" + std::to_string(optimize) + ")\n" + fixture.source;
      ASSERT_NO_FATAL_FAILURE(expect_lockstep(image, 1u << 16, ++seed, 13, repro));
    }
  }
}

// Programs that *fault* must fault identically: same error text, same
// partial state, same instruction count at the throw.
TEST(DiffFuzz, FaultingProgramsDivergeNowhere) {
  const std::vector<std::string> faulty = {
      // Wild store far outside memory.
      "_start:\n    movl $123456789, %esi\n    movl $1, (%esi)\n    hlt\n",
      // Wild load.
      "_start:\n    movl $4294967000, %esi\n    movl (%esi), %eax\n    hlt\n",
      // Walks off the end of the image (no hlt): EIP leaves the program.
      "_start:\n    movl $1, %eax\n    addl $2, %eax\n",
      // Pop with ESP already at the top of memory: the read is out of bounds.
      "_start:\n    popl %eax\n    hlt\n",
      // Push with ESP near zero: the store address wraps around.
      "_start:\n    movl $2, %esp\n    pushl %eax\n    hlt\n",
      // Flags written before the write faults: add into a bad address.
      "_start:\n    movl $99999999, %esi\n    addl $5, (%esi)\n    hlt\n",
  };
  std::uint64_t seed = 0xFA17;
  for (const std::string& src : faulty) {
    ASSERT_NO_FATAL_FAILURE(expect_lockstep(assemble(src), 1u << 16, ++seed, 5, src));
  }
}

}  // namespace
}  // namespace cs31::isa
