// Homework generator tests: determinism per seed, keys that agree with
// direct substrate simulation, and grading behaviour.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "homework/homework.hpp"
#include "isa/machine.hpp"
#include "memhier/cache.hpp"

namespace cs31::homework {
namespace {

TEST(Conversion, KeysMatchBitsModule) {
  for (const ConversionProblem& p : conversion_set(5, 10)) {
    const bits::Word w(p.pattern, p.width);
    EXPECT_EQ(p.as_signed, w.as_signed());
    EXPECT_EQ(p.as_unsigned, w.as_unsigned());
    EXPECT_FALSE(p.prompt.empty());
    EXPECT_NE(p.prompt.find(p.hex), std::string::npos);
  }
}

TEST(Conversion, DeterministicPerSeedVariedAcrossSeeds) {
  const auto a = conversion_set(9, 5);
  const auto b = conversion_set(9, 5);
  const auto c = conversion_set(10, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].pattern, b[i].pattern);
    EXPECT_EQ(a[i].width, b[i].width);
  }
  bool different = false;
  for (std::size_t i = 0; i < 5; ++i) {
    different = different || a[i].pattern != c[i].pattern || a[i].width != c[i].width;
  }
  EXPECT_TRUE(different);
  EXPECT_THROW((void)conversion_set(1, 0), Error);
}

TEST(Arithmetic, FlagsComeFromTheAdder) {
  for (const ArithmeticProblem& p : arithmetic_set(3, 10)) {
    const bits::ArithResult expect = bits::add(bits::Word(p.a, 8), bits::Word(p.b, 8));
    EXPECT_EQ(p.key.pattern, expect.pattern);
    EXPECT_EQ(p.key.flags, expect.flags);
  }
}

TEST(Circuit, TruthTableMatchesDescription) {
  // Re-evaluate the described expression independently and compare.
  for (const std::uint32_t seed : {1u, 5u, 9u, 42u}) {
    const CircuitProblem p = circuit_problem(seed);
    ASSERT_EQ(p.truth_table.size(), 8u);
    auto apply = [](const std::string& op, bool x, bool y) {
      if (op == "AND") return x && y;
      if (op == "OR") return x || y;
      if (op == "XOR") return x != y;
      if (op == "NAND") return !(x && y);
      if (op == "NOR") return !(x || y);
      ADD_FAILURE() << "unknown op " << op;
      return false;
    };
    // Parse "out = (a OP1 b) OP2 [NOT ]c".
    std::istringstream in(p.description);
    std::string tok, op1, op2;
    in >> tok >> tok >> tok >> op1;  // "out" "=" "(a" OP1
    in >> tok >> op2;                // "b)" OP2
    std::string rest;
    std::getline(in, rest);
    const bool negate_c = rest.find("NOT") != std::string::npos;
    for (unsigned row = 0; row < 8; ++row) {
      const bool a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
      const bool expect = apply(op2, apply(op1, a, b), negate_c ? !c : c);
      EXPECT_EQ(p.truth_table[row], expect)
          << p.description << " row " << row << " seed " << seed;
    }
  }
}

TEST(AsmTrace, KeysMatchReExecution) {
  for (const AsmTraceProblem& p : asm_trace_set(7, 5)) {
    isa::Machine machine;
    machine.load(isa::assemble(p.source));
    machine.run();
    EXPECT_EQ(machine.reg(isa::Reg::Eax), p.eax);
    EXPECT_EQ(machine.reg(isa::Reg::Ebx), p.ebx);
    EXPECT_EQ(machine.reg(isa::Reg::Ecx), p.ecx);
  }
}

TEST(CacheTrace, KeyMatchesFreshReplayAndBothAssociativities) {
  for (const std::uint32_t assoc : {1u, 2u}) {
    const CacheTraceProblem p = cache_trace_problem(11, assoc);
    memhier::Cache cache(p.config);
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < p.addresses.size(); ++i) {
      const auto r = cache.read(p.addresses[i]);
      EXPECT_EQ(r.hit, p.key[i].hit) << "access " << i;
      EXPECT_EQ(r.evicted, p.key[i].evicted) << "access " << i;
      hits += r.hit ? 1 : 0;
    }
    EXPECT_DOUBLE_EQ(p.final_hit_rate,
                     static_cast<double>(hits) / static_cast<double>(p.addresses.size()));
  }
}

TEST(VmTrace, SingleAndTwoProcessKeysReplay) {
  for (const bool two : {false, true}) {
    const VmTraceProblem p = vm_trace_problem(13, two);
    ASSERT_EQ(p.key.size(), p.accesses.size());
    // First access is always a fault (cold start).
    EXPECT_TRUE(p.key[0].fault);
    // Frames stay within the configured range.
    for (const auto& row : p.key) EXPECT_LT(row.frame, p.config.physical_frames);
    EXPECT_NE(p.final_frames.find("frame"), std::string::npos);
    if (two) {
      bool saw_second = false;
      for (const auto& a : p.accesses) saw_second = saw_second || a.process == 1;
      EXPECT_TRUE(saw_second);
    }
  }
}

TEST(Fork, EnumerationMatchesInterleavingsAndGrades) {
  const ForkProblem p = fork_problem(21);
  ASSERT_FALSE(p.possible_outputs.empty());
  // Every enumerated output grades as possible; a program-order
  // violation grades as impossible.
  for (const auto& output : p.possible_outputs) {
    EXPECT_TRUE(grade_fork_answer(p, output));
  }
  std::vector<std::string> bad = p.possible_outputs.front();
  std::swap(bad.front(), bad.back());
  if (bad != p.possible_outputs.front()) {
    // Swapping first/last breaks program order for sequences >= 2.
    const bool graded = grade_fork_answer(p, bad);
    bool enumerated = false;
    for (const auto& output : p.possible_outputs) enumerated = enumerated || output == bad;
    EXPECT_EQ(graded, enumerated);
  }
  EXPECT_NE(p.description.find("fork()"), std::string::npos);
}

TEST(Worksheet, RendersProblemsAndKeyConsistently) {
  const Worksheet w = render_worksheet(2024);
  EXPECT_NE(w.problems.find("1. "), std::string::npos);
  EXPECT_NE(w.answer_key.find("1. "), std::string::npos);
  EXPECT_NE(w.problems.find("fork()"), std::string::npos);
  EXPECT_NE(w.answer_key.find("possible orderings"), std::string::npos);
  // Deterministic.
  const Worksheet again = render_worksheet(2024);
  EXPECT_EQ(w.problems, again.problems);
  EXPECT_EQ(w.answer_key, again.answer_key);
  EXPECT_NE(render_worksheet(2025).problems, w.problems);
}

}  // namespace
}  // namespace cs31::homework
