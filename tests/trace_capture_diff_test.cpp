// Differential harness for the two sync-capture designs. CaptureMode::
// lockfree records sync events into the recording thread's own buffer
// with a (global stamp, per-object seq) pair taken while the traced
// primitive is held; CaptureMode::mutex_stream is the original design —
// every sync appended to one mutex-ordered stream. The drain-time merge
// is supposed to make the difference invisible: drained streams, race
// reports, and certificates must come out byte-identical.
//
// This file is where that claim is earned, not asserted:
//
//   - the PR 2 trace-fuzz corpus (the same seeds and configs
//     race_diff_test sweeps) is replayed through a TraceContext in BOTH
//     capture modes, with every sink callback serialized to a canonical
//     byte stream — the streams, the detector certificates, and the
//     context's own drain/capture counters must match exactly;
//   - a slice of the corpus additionally runs through AnalysisPipeline
//     at {1, 2, 4} shards in both modes, so the sharded router sees the
//     same batches whichever design drained them;
//   - real OS threads: the Lab 10 ParallelLife engine, a capacity-1
//     BoundedBuffer handoff (strict put/get alternation makes the
//     real-thread stream deterministic), a TracedCondVar handoff, and a
//     no-edge racy pair whose deterministic stamp layout lets even the
//     racy certificate be compared byte for byte.
//
// A failure prints the seed; `generate_trace(seed, config_for(seed))`
// regenerates the exact trace.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "life/life.hpp"
#include "life/traced.hpp"
#include "parallel/sync.hpp"
#include "parallel/threads.hpp"
#include "race/detector.hpp"
#include "race/trace_gen.hpp"
#include "trace/condvar.hpp"
#include "trace/context.hpp"
#include "trace/instrumented.hpp"
#include "trace/pipeline.hpp"

namespace {

using cs31::race::Trace;
using cs31::race::TraceGenConfig;
using cs31::race::TraceOp;
using cs31::trace::CaptureMode;
using cs31::trace::TraceContext;

/// Serializes every EventSink callback into one canonical byte stream.
/// Two capture modes that dispatch the same events in the same order
/// produce equal strings; any reorder, drop, or duplicate shows up as a
/// first-diverging-line diff.
class RecordingSink final : public cs31::race::EventSink {
 public:
  [[nodiscard]] cs31::race::ThreadId register_thread() override {
    const auto t = next_++;
    line("root t" + std::to_string(t));
    return t;
  }
  [[nodiscard]] cs31::race::ThreadId fork(cs31::race::ThreadId parent) override {
    const auto child = next_++;
    line("fork t" + std::to_string(parent) + " -> t" + std::to_string(child));
    return child;
  }
  void join(cs31::race::ThreadId parent, cs31::race::ThreadId child) override {
    line("join t" + std::to_string(parent) + " <- t" + std::to_string(child));
  }
  void acquire(cs31::race::ThreadId t, const std::string& lock) override {
    line("acquire t" + std::to_string(t) + " " + lock);
  }
  void release(cs31::race::ThreadId t, const std::string& lock) override {
    line("release t" + std::to_string(t) + " " + lock);
  }
  void barrier(const std::vector<cs31::race::ThreadId>& waiters) override {
    std::string text = "barrier";
    for (const auto w : waiters) text += " t" + std::to_string(w);
    line(text);
  }
  void channel_send(cs31::race::ThreadId t, const std::string& channel) override {
    line("send t" + std::to_string(t) + " " + channel);
  }
  void channel_recv(cs31::race::ThreadId t, const std::string& channel) override {
    line("recv t" + std::to_string(t) + " " + channel);
  }
  void read(cs31::race::ThreadId t, const std::string& var,
            const std::string& where) override {
    line("read t" + std::to_string(t) + " " + var + " @ " + where);
  }
  void write(cs31::race::ThreadId t, const std::string& var,
             const std::string& where) override {
    line("write t" + std::to_string(t) + " " + var + " @ " + where);
  }

  [[nodiscard]] const std::vector<cs31::race::RaceReport>& races() const override {
    return no_races_;
  }
  [[nodiscard]] bool race_free() const override { return true; }
  [[nodiscard]] std::uint64_t race_count() const override { return 0; }
  [[nodiscard]] std::uint64_t events() const override { return events_; }
  [[nodiscard]] std::size_t threads() const override { return next_; }
  [[nodiscard]] std::size_t shadow_bytes() const override { return stream_.size(); }
  [[nodiscard]] std::string summary() const override { return stream_; }

  [[nodiscard]] const std::string& stream() const { return stream_; }

 private:
  void line(const std::string& text) {
    stream_ += text;
    stream_ += '\n';
    ++events_;
  }

  std::string stream_;
  std::uint64_t events_ = 0;
  cs31::race::ThreadId next_ = 1;  // thread 0 pre-registered, as in Detector
  std::vector<cs31::race::RaceReport> no_races_;
};

/// The same per-seed knobs race_diff_test sweeps — this harness runs
/// the identical corpus, just through the capture layer instead of
/// straight into the detectors.
TraceGenConfig config_for(std::uint64_t seed) {
  TraceGenConfig config;
  config.ops = 32 + seed % 65;
  config.max_threads = 1 + (seed / 7) % 6;
  config.vars = 1 + (seed / 11) % 4;
  config.locks = 1 + (seed / 13) % 2;
  config.channels = 1 + (seed / 17) % 2;
  return config;
}

/// Mirror race::run_trace through the context's scripted API: same
/// names ("m<n>"/"v<n>"/"q<n>"), same "#<op index>" site labels, same
/// fork-return thread mapping — so the dispatched stream is the one the
/// detectors already have differential coverage for.
void replay_through_context(const Trace& trace, TraceContext& ctx) {
  std::vector<cs31::trace::ThreadId> tids(trace.threads, 0);
  for (std::size_t i = 0; i < trace.ops.size(); ++i) {
    const TraceOp& op = trace.ops[i];
    switch (op.kind) {
      case TraceOp::Kind::Fork:
        tids[op.object] = ctx.fork_thread(tids[op.actor]);
        break;
      case TraceOp::Kind::Join:
        ctx.join_thread(tids[op.actor], tids[op.object]);
        break;
      case TraceOp::Kind::Acquire:
        ctx.acquire_as(tids[op.actor], ctx.intern_lock("m" + std::to_string(op.object)));
        break;
      case TraceOp::Kind::Release:
        ctx.release_as(tids[op.actor], ctx.intern_lock("m" + std::to_string(op.object)));
        break;
      case TraceOp::Kind::Read:
        ctx.read_as(tids[op.actor], ctx.intern_var("v" + std::to_string(op.object)),
                    ctx.intern_site("#" + std::to_string(i)));
        break;
      case TraceOp::Kind::Write:
        ctx.write_as(tids[op.actor], ctx.intern_var("v" + std::to_string(op.object)),
                     ctx.intern_site("#" + std::to_string(i)));
        break;
      case TraceOp::Kind::Send:
        ctx.send_as(tids[op.actor], ctx.intern_channel("q" + std::to_string(op.object)));
        break;
      case TraceOp::Kind::Recv:
        ctx.recv_as(tids[op.actor], ctx.intern_channel("q" + std::to_string(op.object)));
        break;
      case TraceOp::Kind::Barrier: {
        std::vector<cs31::trace::ThreadId> waiters;
        waiters.reserve(op.waiters.size());
        for (const std::uint32_t w : op.waiters) waiters.push_back(tids[w]);
        ctx.barrier_cycle(std::move(waiters));
        break;
      }
    }
  }
  ctx.flush();
}

/// Everything one capture-mode run must reproduce byte for byte.
struct CaptureRun {
  std::string stream;       ///< RecordingSink's canonical dispatch bytes
  std::string certificate;  ///< Detector::summary()
  std::uint64_t race_count = 0;
  std::uint64_t captured = 0;
  std::uint64_t drains = 0;
};

CaptureRun run_corpus_seed(const Trace& trace, CaptureMode mode) {
  TraceContext::Options options;
  options.own_detector = false;
  options.capture = mode;
  TraceContext ctx(options);
  RecordingSink recording;
  cs31::race::Detector detector;
  ctx.attach_sink(recording);
  ctx.attach_sink(detector);
  replay_through_context(trace, ctx);
  return CaptureRun{recording.stream(), detector.summary(), detector.race_count(),
                    ctx.events_captured(), ctx.drains()};
}

// ---------------------------------------------------------------------
// Fuzz corpus, inline analysis: both modes over every seed.

TEST(CaptureDiff, FuzzCorpusStreamsAndCertificatesByteIdentical) {
  constexpr std::uint64_t kSeeds = 1000;
  std::uint64_t racy = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const Trace trace = cs31::race::generate_trace(seed, config_for(seed));
    const CaptureRun lockfree = run_corpus_seed(trace, CaptureMode::lockfree);
    const CaptureRun mutexed = run_corpus_seed(trace, CaptureMode::mutex_stream);
    ASSERT_EQ(lockfree.stream, mutexed.stream) << "seed " << seed;
    ASSERT_EQ(lockfree.certificate, mutexed.certificate) << "seed " << seed;
    ASSERT_EQ(lockfree.race_count, mutexed.race_count) << "seed " << seed;
    // The context-side counters must agree too: both modes capture the
    // same events and their drains dispatch the same prefixes at the
    // same points (the horizon never depends on the capture design).
    ASSERT_EQ(lockfree.captured, mutexed.captured) << "seed " << seed;
    ASSERT_EQ(lockfree.drains, mutexed.drains) << "seed " << seed;
    racy += lockfree.race_count != 0 ? 1 : 0;
  }
  // The corpus must keep exercising both verdicts, or the sweep above
  // proves less than it claims.
  EXPECT_GT(racy, kSeeds / 10);
  EXPECT_GT(kSeeds - racy, kSeeds / 10);
}

// ---------------------------------------------------------------------
// Fuzz corpus, pipelined analysis: shard routing consumes the drained
// batches, so the sharded verdict is sensitive to batch boundaries and
// event order — exactly what the capture refactor must not move.

TEST(CaptureDiff, FuzzCorpusPipelinedShardsByteIdentical) {
  for (std::uint64_t seed = 0; seed < 1000; seed += 20) {
    const Trace trace = cs31::race::generate_trace(seed, config_for(seed));
    const CaptureRun inline_run = run_corpus_seed(trace, CaptureMode::lockfree);
    for (const std::size_t shards : {1u, 2u, 4u}) {
      for (const CaptureMode mode : {CaptureMode::lockfree, CaptureMode::mutex_stream}) {
        cs31::trace::AnalysisPipeline pipeline(
            cs31::trace::AnalysisPipeline::Options{.shards = shards});
        TraceContext::Options options;
        options.own_detector = false;
        options.capture = mode;
        TraceContext ctx(options);
        ctx.attach_pipeline(pipeline);
        replay_through_context(trace, ctx);
        ASSERT_EQ(pipeline.summary(), inline_run.certificate)
            << "seed " << seed << " shards " << shards << " mode "
            << (mode == CaptureMode::lockfree ? "lockfree" : "mutex_stream");
        ASSERT_EQ(pipeline.race_count(), inline_run.race_count)
            << "seed " << seed << " shards " << shards;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Real OS threads. These runs exercise the actual lock-free hot path —
// concurrent per-thread appends, TLS-bound buffers, epoch advancement —
// not the scripted single-threaded driver above.

/// Real-thread Lab 10 engine, cell-granularity capture so the
/// certificate carries the full access pattern.
CaptureRun run_real_life(CaptureMode mode) {
  TraceContext::Options options;
  options.own_detector = false;
  options.capture = mode;
  TraceContext ctx(options);
  RecordingSink recording;
  cs31::race::Detector detector;
  ctx.attach_sink(recording);
  ctx.attach_sink(detector);
  cs31::life::ParallelLife engine(cs31::life::Grid::random(12, 12, 0.3, 7), 3);
  engine.run(2, cs31::life::LifeTraceOptions{
                    .ctx = &ctx, .granularity = cs31::life::TraceGranularity::Cell});
  ctx.flush();
  return CaptureRun{recording.stream(), detector.summary(), detector.race_count(),
                    ctx.events_captured(), ctx.drains()};
}

TEST(CaptureDiff, RealThreadLifeCertificatesByteIdentical) {
  const CaptureRun lockfree = run_real_life(CaptureMode::lockfree);
  const CaptureRun mutexed = run_real_life(CaptureMode::mutex_stream);
  // The barrier drains every round, so the real-thread stream is
  // deterministic (trace_test's repeated-run certificate test proves
  // that); here the two modes must also agree with each other.
  EXPECT_EQ(lockfree.stream, mutexed.stream);
  EXPECT_EQ(lockfree.certificate, mutexed.certificate);
  EXPECT_EQ(lockfree.captured, mutexed.captured);
  EXPECT_EQ(lockfree.drains, mutexed.drains);
  EXPECT_EQ(lockfree.race_count, 0u);  // barrier'd Life is race-free
}

/// Capacity-1 BoundedBuffer handoff: put(k+1) cannot start before
/// get(k) finishes and both record their channel event under the buffer
/// mutex, so the sync order — and with it every stamp — is strictly
/// alternating and deterministic despite real scheduling.
CaptureRun run_real_bounded_buffer(CaptureMode mode) {
  TraceContext::Options options;
  options.own_detector = false;
  options.capture = mode;
  TraceContext ctx(options);
  RecordingSink recording;
  cs31::race::Detector detector;
  ctx.attach_sink(recording);
  ctx.attach_sink(detector);
  constexpr std::int64_t kItems = 64;
  // Heap-allocated: the buffer owns a mutex, and stack-slot reuse
  // across tests pollutes TSan's lock-order graph.
  auto buffer = std::make_unique<cs31::parallel::BoundedBuffer>(1);
  buffer->attach_tracer(ctx, "q");
  // One traced variable per item: the slot's send/recv edge orders
  // write i before read i, and nothing else touches item i — the
  // producer is already writing item i+1 while the consumer reads item
  // i, so a single reused payload variable would (correctly) race.
  std::vector<cs31::trace::NameId> items;
  items.reserve(kItems);
  for (std::int64_t i = 0; i < kItems; ++i) {
    items.push_back(ctx.intern_var("item" + std::to_string(i)));
  }
  const cs31::trace::NameId put_site = ctx.intern_site("producer: item = i");
  const cs31::trace::NameId get_site = ctx.intern_site("consumer: sum += item");
  cs31::parallel::ThreadTeam team(2, ctx, [&](std::size_t who) {
    if (who == 0) {
      for (std::int64_t i = 0; i < kItems; ++i) {
        ctx.write(items[static_cast<std::size_t>(i)], put_site);
        buffer->put(i);
      }
    } else {
      for (std::int64_t i = 0; i < kItems; ++i) {
        (void)buffer->get();
        ctx.read(items[static_cast<std::size_t>(i)], get_site);
      }
    }
  });
  team.join();
  ctx.flush();
  return CaptureRun{recording.stream(), detector.summary(), detector.race_count(),
                    ctx.events_captured(), ctx.drains()};
}

TEST(CaptureDiff, RealThreadBoundedBufferByteIdentical) {
  const CaptureRun lockfree = run_real_bounded_buffer(CaptureMode::lockfree);
  const CaptureRun mutexed = run_real_bounded_buffer(CaptureMode::mutex_stream);
  EXPECT_EQ(lockfree.stream, mutexed.stream);
  EXPECT_EQ(lockfree.certificate, mutexed.certificate);
  EXPECT_EQ(lockfree.captured, mutexed.captured);
  EXPECT_EQ(lockfree.drains, mutexed.drains);
  // Capacity 1 serializes every producer write before its consumer
  // read: the handoff is certifiably race-free in both designs.
  EXPECT_EQ(lockfree.race_count, 0u);
}

/// TracedCondVar handoff (the cv-clean pairing from tsan_crosscheck):
/// who wins the mutex first is scheduling-dependent, so the raw event
/// count can differ run to run — the schedule-independent claim is the
/// verdict: a correctly waited/notified handoff is race-free in both
/// capture designs.
bool real_condvar_handoff_race_free(CaptureMode mode) {
  TraceContext::Options options;
  options.capture = mode;
  TraceContext ctx(options);
  auto mutex = std::make_unique<cs31::trace::TracedMutex>("m:ready", ctx);
  auto cv = std::make_unique<cs31::trace::TracedCondVar>("cv:ready", ctx);
  const cs31::trace::NameId payload = ctx.intern_var("cv_payload");
  const cs31::trace::NameId write_site = ctx.intern_site("main: payload = 42");
  const cs31::trace::NameId read_site = ctx.intern_site("worker: use payload");
  bool ready = false;
  cs31::parallel::ThreadTeam team(1, ctx, [&](std::size_t) {
    std::unique_lock<cs31::trace::TracedMutex> lock(*mutex);
    cv->wait(lock, [&] { return ready; });
    ctx.read(payload, read_site);
  });
  {
    std::unique_lock<cs31::trace::TracedMutex> lock(*mutex);
    ctx.write(payload, write_site);
    ready = true;
    cv->notify_one();
  }
  team.join();
  ctx.flush();
  return ctx.detector().race_free();
}

TEST(CaptureDiff, RealThreadCondVarHandoffRaceFreeInBothModes) {
  EXPECT_TRUE(real_condvar_handoff_race_free(CaptureMode::lockfree));
  EXPECT_TRUE(real_condvar_handoff_race_free(CaptureMode::mutex_stream));
}

/// The racy counterpart, built so even its certificate is
/// deterministic: main forks the worker and only then writes the
/// shared pair, so the worker's reads and main's writes all carry the
/// fork's stamp and the drain's (stamp, sync-first, thread, seq)
/// tie-break fixes their dispatch order regardless of real scheduling.
CaptureRun run_real_no_edge_pair(CaptureMode mode) {
  TraceContext::Options options;
  options.own_detector = false;
  options.capture = mode;
  TraceContext ctx(options);
  RecordingSink recording;
  cs31::race::Detector detector;
  ctx.attach_sink(recording);
  ctx.attach_sink(detector);
  const cs31::trace::NameId flag = ctx.intern_var("flag");
  const cs31::trace::NameId data = ctx.intern_var("data");
  const cs31::trace::NameId writer = ctx.intern_site("main: publish without edge");
  const cs31::trace::NameId reader = ctx.intern_site("worker: consume without edge");
  cs31::parallel::ThreadTeam team(1, ctx, [&](std::size_t) {
    ctx.read(flag, reader);
    ctx.read(data, reader);
  });
  ctx.write(data, writer);
  ctx.write(flag, writer);
  team.join();
  ctx.flush();
  return CaptureRun{recording.stream(), detector.summary(), detector.race_count(),
                    ctx.events_captured(), ctx.drains()};
}

TEST(CaptureDiff, RealThreadRacyPairReportsByteIdentical) {
  const CaptureRun lockfree = run_real_no_edge_pair(CaptureMode::lockfree);
  const CaptureRun mutexed = run_real_no_edge_pair(CaptureMode::mutex_stream);
  EXPECT_EQ(lockfree.stream, mutexed.stream);
  EXPECT_EQ(lockfree.certificate, mutexed.certificate);
  EXPECT_EQ(lockfree.captured, mutexed.captured);
  // Both variables race (no happens-before edge exists), and both
  // designs must say so with the same report bytes.
  EXPECT_GE(lockfree.race_count, 2u);
}

}  // namespace
