// Labs 8-9 grader: command parsing (tokenization, '&' detection),
// foreground/background execution on the simulated kernel, job reaping,
// and the history mechanism.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "shell/parser.hpp"
#include "shell/shell.hpp"

namespace cs31::shell {
namespace {

TEST(Parser, TokenizesWhitespace) {
  const ParsedCommand c = parse_command("  ls   -l  /tmp ");
  EXPECT_EQ(c.argv, (std::vector<std::string>{"ls", "-l", "/tmp"}));
  EXPECT_FALSE(c.background);
}

TEST(Parser, EmptyLineIsEmptyCommand) {
  EXPECT_TRUE(parse_command("").empty());
  EXPECT_TRUE(parse_command("   \t ").empty());
}

TEST(Parser, DetectsTrailingAmpersandAsOwnToken) {
  const ParsedCommand c = parse_command("sleep 10 &");
  EXPECT_EQ(c.argv, (std::vector<std::string>{"sleep", "10"}));
  EXPECT_TRUE(c.background);
}

TEST(Parser, DetectsGluedAmpersand) {
  const ParsedCommand c = parse_command("spin 5&");
  EXPECT_EQ(c.argv, (std::vector<std::string>{"spin", "5"}));
  EXPECT_TRUE(c.background);
}

TEST(Parser, RejectsAmpersandElsewhere) {
  EXPECT_THROW(parse_command("a & b"), Error);
  EXPECT_THROW(parse_command("a&b"), Error);
  EXPECT_THROW(parse_command("&"), Error);
}

TEST(Shell, RunsForegroundCommandAndCollectsStatus) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  const ShellResult r = shell.run_line("echo hi there");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.status, 0);
  EXPECT_EQ(kernel.output(), (std::vector<std::string>{"hi there"}));
  EXPECT_EQ(shell.run_line("false").status, 1);
}

TEST(Shell, UnknownCommandReportsError) {
  os::Kernel kernel;
  Shell shell(kernel);
  const ShellResult r = shell.run_line("nosuch");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.output.find("command not found"), std::string::npos);
}

TEST(Shell, BackgroundJobRunsConcurrentlyWithForeground) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  const ShellResult bg = shell.run_line("countdown 2 &");
  EXPECT_TRUE(bg.ok);
  EXPECT_NE(bg.output.find("[1]"), std::string::npos) << "prints job number and pid";
  ASSERT_EQ(shell.jobs().size(), 1u);
  EXPECT_FALSE(shell.jobs()[0].finished);
  // A foreground command drives the kernel; the background job finishes
  // during it and is reaped afterward.
  shell.run_line("spin 20");
  EXPECT_TRUE(shell.jobs()[0].finished);
  // Both outputs interleaved in the kernel log.
  EXPECT_EQ(kernel.output().size(), 3u);  // "2", "1", "liftoff"
}

TEST(Shell, JobsBuiltinListsRunningAndDone) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  shell.run_line("spin 50 &");
  const ShellResult r1 = shell.run_line("jobs");
  EXPECT_NE(r1.output.find("Running"), std::string::npos);
  shell.run_line("spin 100");  // drives the kernel past the job's end
  const ShellResult r2 = shell.run_line("jobs");
  EXPECT_NE(r2.output.find("Done"), std::string::npos);
}

TEST(Shell, ExitBuiltin) {
  os::Kernel kernel;
  Shell shell(kernel);
  EXPECT_TRUE(shell.run_line("exit").exited);
}

TEST(Shell, HistoryListsNumberedCommands) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  shell.run_line("echo one");
  shell.run_line("echo two");
  const ShellResult r = shell.run_line("history");
  EXPECT_NE(r.output.find("1  echo one"), std::string::npos);
  EXPECT_NE(r.output.find("2  echo two"), std::string::npos);
  EXPECT_NE(r.output.find("3  history"), std::string::npos);
}

TEST(Shell, HistoryIsBounded) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  for (int i = 0; i < 15; ++i) {
    shell.run_line("echo " + std::to_string(i));
  }
  EXPECT_EQ(shell.history().size(), Shell::kHistorySize);
  EXPECT_EQ(shell.history().front(), "echo 5");
}

TEST(Shell, BangNReExecutes) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  shell.run_line("echo replay me");
  const ShellResult r = shell.run_line("!1");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(kernel.output(), (std::vector<std::string>{"replay me", "replay me"}));
  // The re-executed command line (not "!1") lands in history.
  EXPECT_EQ(shell.history().back(), "echo replay me");
}

TEST(Shell, BangNOutOfRangeReportsError) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  EXPECT_FALSE(shell.run_line("!99").ok);
  EXPECT_FALSE(shell.run_line("!abc").ok);
}

TEST(Shell, KillBuiltinTerminatesBackgroundJob) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  shell.run_line("spin 1000 &");
  ASSERT_EQ(shell.jobs().size(), 1u);
  const ShellResult r = shell.run_line("kill %1");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("Killed"), std::string::npos);
  EXPECT_TRUE(shell.jobs()[0].finished);
  EXPECT_LT(shell.jobs()[0].exit_status, 0) << "killed, not a clean exit";
}

TEST(Shell, KillValidatesItsArgument) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  EXPECT_FALSE(shell.run_line("kill").ok);
  EXPECT_FALSE(shell.run_line("kill 1").ok);
  EXPECT_FALSE(shell.run_line("kill %7").ok);
  shell.run_line("echo x");  // no background jobs involved
  EXPECT_FALSE(shell.run_line("kill %1").ok);
}

TEST(Shell, KillOnFinishedJobIsGraceful) {
  os::Kernel kernel;
  Shell shell(kernel);
  shell.install_standard_commands();
  shell.run_line("spin 5 &");
  shell.run_line("spin 50");  // drives the job to completion
  const ShellResult r = shell.run_line("kill %1");
  EXPECT_TRUE(r.ok);
  EXPECT_NE(r.output.find("already done"), std::string::npos);
}

TEST(Shell, ParserErrorsAreReportedNotThrown) {
  os::Kernel kernel;
  Shell shell(kernel);
  const ShellResult r = shell.run_line("a & b");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.output.empty());
}

TEST(Shell, CustomCommandsReceiveArgv) {
  os::Kernel kernel;
  Shell shell(kernel);
  std::vector<std::string> seen;
  shell.install("probe", [&](const std::vector<std::string>& argv) {
    seen = argv;
    return os::ProgramBuilder().exit(0).build();
  });
  shell.run_line("probe x y");
  EXPECT_EQ(seen, (std::vector<std::string>{"probe", "x", "y"}));
}

}  // namespace
}  // namespace cs31::shell
