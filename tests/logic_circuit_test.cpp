// Tests for the gate-level circuit simulator and the Lab 3 component
// library: primitive gates, feedback (latches), adders, muxes, decoders,
// registers, and the register file.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "logic/circuit.hpp"
#include "logic/components.hpp"

namespace cs31::logic {
namespace {

TEST(Circuit, PrimitiveGateTruthTables) {
  Circuit c;
  const Wire a = c.input("a"), b = c.input("b");
  const Wire and_w = c.and_(a, b), or_w = c.or_(a, b), xor_w = c.xor_(a, b);
  const Wire nand_w = c.nand_(a, b), nor_w = c.nor_(a, b), xnor_w = c.xnor_(a, b);
  const Wire not_w = c.not_(a);
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      c.set(a, va);
      c.set(b, vb);
      c.evaluate();
      EXPECT_EQ(c.value(and_w), va && vb);
      EXPECT_EQ(c.value(or_w), va || vb);
      EXPECT_EQ(c.value(xor_w), va != vb);
      EXPECT_EQ(c.value(nand_w), !(va && vb));
      EXPECT_EQ(c.value(nor_w), !(va || vb));
      EXPECT_EQ(c.value(xnor_w), va == vb);
      EXPECT_EQ(c.value(not_w), !va);
    }
  }
}

TEST(Circuit, ApiMisuseThrows) {
  Circuit c;
  const Wire a = c.input();
  EXPECT_THROW(c.gate(GateKind::Not, a, a), Error);       // NOT via 2-input API
  EXPECT_THROW(c.set(c.constant(true), true), Error);     // set a non-input
  EXPECT_THROW((void)c.value(Wire{999}), Error);                // dangling wire
  EXPECT_THROW((void)c.gate(GateKind::And, a, Wire{999}), Error);
}

TEST(Circuit, OscillatorDetected) {
  Circuit c;
  const Wire fwd = c.forward();
  const Wire inv = c.not_(fwd);
  c.bind(fwd, inv);  // NOT gate feeding itself
  EXPECT_THROW(c.evaluate(), Error);
}

TEST(Circuit, UnboundForwardDetected) {
  Circuit c;
  const Wire fwd = c.forward();
  (void)c.not_(fwd);
  EXPECT_THROW(c.evaluate(), Error);
}

TEST(Circuit, ForwardBindOnlyOnce) {
  Circuit c;
  const Wire fwd = c.forward();
  const Wire k = c.constant(true);
  c.bind(fwd, k);
  EXPECT_THROW(c.bind(fwd, k), Error);
  EXPECT_THROW(c.bind(k, k), Error);  // not a forward wire
}

TEST(Circuit, BusHelpers) {
  Circuit c;
  const Bus bus = input_bus(c, 8, "x");
  c.set_bus(bus, 0xA5);
  c.evaluate();
  EXPECT_EQ(c.bus_value(bus), 0xA5u);
  EXPECT_THROW(input_bus(c, 0), Error);
}

TEST(Circuit, TruthTableHelper) {
  Circuit c;
  const Wire a = c.input(), b = c.input();
  const Wire out = c.and_(a, b);
  const std::vector<bool> table = truth_table(c, {a, b}, out);
  ASSERT_EQ(table.size(), 4u);
  // Row index bit 0 = first input.
  EXPECT_FALSE(table[0]);  // a=0 b=0
  EXPECT_FALSE(table[1]);  // a=1 b=0
  EXPECT_FALSE(table[2]);  // a=0 b=1
  EXPECT_TRUE(table[3]);   // a=1 b=1
}

TEST(Components, HalfAdderTruthTable) {
  Circuit c;
  const Wire a = c.input(), b = c.input();
  const AdderBit h = half_adder(c, a, b);
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      c.set(a, va);
      c.set(b, vb);
      c.evaluate();
      EXPECT_EQ(c.value(h.sum), (va + vb) % 2);
      EXPECT_EQ(c.value(h.carry), va + vb >= 2);
    }
  }
}

TEST(Components, FullAdderTruthTable) {
  Circuit c;
  const Wire a = c.input(), b = c.input(), cin = c.input();
  const AdderBit f = full_adder(c, a, b, cin);
  for (int bits = 0; bits < 8; ++bits) {
    const int va = bits & 1, vb = (bits >> 1) & 1, vc = (bits >> 2) & 1;
    c.set(a, va);
    c.set(b, vb);
    c.set(cin, vc);
    c.evaluate();
    const int total = va + vb + vc;
    EXPECT_EQ(c.value(f.sum), total % 2);
    EXPECT_EQ(c.value(f.carry), total >= 2);
  }
}

// Ripple-carry adder checked exhaustively at small widths.
class AdderProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdderProperty, MatchesIntegerAddition) {
  const int w = GetParam();
  Circuit c;
  const Bus a = input_bus(c, w), b = input_bus(c, w);
  const Wire cin = c.constant(false);
  const RippleAdder adder = ripple_carry_adder(c, a, b, cin);
  const unsigned long long limit = 1ull << w;
  for (unsigned long long va = 0; va < limit; ++va) {
    for (unsigned long long vb = 0; vb < limit; ++vb) {
      c.set_bus(a, va);
      c.set_bus(b, vb);
      c.evaluate();
      EXPECT_EQ(c.bus_value(adder.sum), (va + vb) % limit);
      EXPECT_EQ(c.value(adder.carry_out), va + vb >= limit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallWidths, AdderProperty, ::testing::Values(1, 2, 3, 4, 5));

TEST(Components, AdderRejectsMismatchedWidths) {
  Circuit c;
  const Bus a = input_bus(c, 4), b = input_bus(c, 5);
  EXPECT_THROW(ripple_carry_adder(c, a, b, c.constant(false)), Error);
}

TEST(Components, SignExtender) {
  Circuit c;
  const Bus in = input_bus(c, 4);
  const Bus out = sign_extender(c, in, 8);
  ASSERT_EQ(out.size(), 8u);
  c.set_bus(in, 0b1010);  // negative at 4 bits
  c.evaluate();
  EXPECT_EQ(c.bus_value(out), 0b11111010u);
  c.set_bus(in, 0b0101);
  c.evaluate();
  EXPECT_EQ(c.bus_value(out), 0b0101u);
  EXPECT_THROW(sign_extender(c, in, 3), Error);
}

TEST(Components, Mux2AndBus) {
  Circuit c;
  const Wire sel = c.input();
  const Bus a = input_bus(c, 4), b = input_bus(c, 4);
  const Bus out = mux2_bus(c, sel, a, b);
  c.set_bus(a, 0x3);
  c.set_bus(b, 0xC);
  c.set(sel, false);
  c.evaluate();
  EXPECT_EQ(c.bus_value(out), 0x3u);
  c.set(sel, true);
  c.evaluate();
  EXPECT_EQ(c.bus_value(out), 0xCu);
}

TEST(Components, MuxNSelectsEveryChoice) {
  Circuit c;
  const Bus sel = input_bus(c, 3);
  std::vector<Wire> choices;
  for (int i = 0; i < 8; ++i) choices.push_back(c.input());
  const Wire out = mux_n(c, sel, choices);
  for (unsigned pick = 0; pick < 8; ++pick) {
    for (unsigned i = 0; i < 8; ++i) c.set(choices[i], i == pick);
    c.set_bus(sel, pick);
    c.evaluate();
    EXPECT_TRUE(c.value(out)) << pick;
    // Flip the selected input; output must follow.
    c.set(choices[pick], false);
    c.evaluate();
    EXPECT_FALSE(c.value(out)) << pick;
  }
  EXPECT_THROW((void)mux_n(c, sel, {choices[0]}), Error);
}

TEST(Components, DecoderOneHot) {
  Circuit c;
  const Bus sel = input_bus(c, 2);
  const std::vector<Wire> outs = decoder(c, sel);
  ASSERT_EQ(outs.size(), 4u);
  for (unsigned v = 0; v < 4; ++v) {
    c.set_bus(sel, v);
    c.evaluate();
    for (unsigned i = 0; i < 4; ++i) {
      EXPECT_EQ(c.value(outs[i]), i == v) << "sel=" << v << " out=" << i;
    }
  }
}

TEST(Components, RsLatchSetsResetsAndHolds) {
  Circuit c;
  const RsLatch latch = rs_latch(c);
  c.evaluate();
  EXPECT_FALSE(c.value(latch.q));  // power-on state

  c.set(latch.set, true);
  c.evaluate();
  EXPECT_TRUE(c.value(latch.q));
  EXPECT_FALSE(c.value(latch.q_bar));

  c.set(latch.set, false);  // hold
  c.evaluate();
  EXPECT_TRUE(c.value(latch.q));

  c.set(latch.reset, true);
  c.evaluate();
  EXPECT_FALSE(c.value(latch.q));
  EXPECT_TRUE(c.value(latch.q_bar));

  c.set(latch.reset, false);  // hold again
  c.evaluate();
  EXPECT_FALSE(c.value(latch.q));
}

TEST(Components, DLatchFollowsWhenEnabledHoldsWhenNot) {
  Circuit c;
  const DLatch latch = d_latch(c);
  c.set(latch.d, true);
  c.set(latch.enable, true);
  c.evaluate();
  EXPECT_TRUE(c.value(latch.q));

  c.set(latch.enable, false);
  c.set(latch.d, false);  // D changes while gate closed
  c.evaluate();
  EXPECT_TRUE(c.value(latch.q)) << "latch must hold with enable low";

  c.set(latch.enable, true);
  c.evaluate();
  EXPECT_FALSE(c.value(latch.q));
}

TEST(Components, RegisterStoresWord) {
  Circuit c;
  const Register reg = register_n(c, 8);
  c.set_bus(reg.d, 0x5A);
  c.set(reg.enable, true);
  c.evaluate();
  EXPECT_EQ(c.bus_value(reg.q), 0x5Au);

  c.set(reg.enable, false);
  c.set_bus(reg.d, 0xFF);
  c.evaluate();
  EXPECT_EQ(c.bus_value(reg.q), 0x5Au) << "register must ignore D when not enabled";
}

TEST(Components, RegisterFileWritesAndReadsIndependently) {
  Circuit c;
  const RegisterFile rf = register_file(c, 8, 2);  // 4 registers of 8 bits
  // Write distinct values to all four registers.
  for (unsigned r = 0; r < 4; ++r) {
    c.set_bus(rf.write_sel, r);
    c.set_bus(rf.write_data, 0x10 + r);
    c.set(rf.write_enable, true);
    c.evaluate();
    c.set(rf.write_enable, false);
    c.evaluate();
  }
  // Read them all back.
  for (unsigned r = 0; r < 4; ++r) {
    c.set_bus(rf.read_sel, r);
    c.evaluate();
    EXPECT_EQ(c.bus_value(rf.read_data), 0x10u + r) << "register " << r;
  }
  // Writing with enable low must not modify anything.
  c.set_bus(rf.write_sel, 2);
  c.set_bus(rf.write_data, 0xEE);
  c.evaluate();
  c.set_bus(rf.read_sel, 2);
  c.evaluate();
  EXPECT_EQ(c.bus_value(rf.read_data), 0x12u);
}

TEST(Components, GateCountGrowsWithAbstraction) {
  // The abstraction-stacking story: a register file is built from many
  // latches, which are built from gates.
  Circuit c;
  const std::size_t before = c.gate_count();
  (void)register_file(c, 8, 2);
  EXPECT_GT(c.gate_count() - before, 100u);
}

}  // namespace
}  // namespace cs31::logic
