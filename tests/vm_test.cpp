// Virtual memory tests: translation, demand paging, LRU frame
// replacement, dirty writeback, multi-process context switching, TLB
// behaviour, and the EAT formula — the VM1/VM2 homework machinery.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "vm/paging.hpp"
#include "vm/tlb.hpp"

namespace cs31::vm {
namespace {

PagingConfig small() {
  PagingConfig c;
  c.page_bytes = 256;
  c.virtual_pages = 16;
  c.physical_frames = 4;
  return c;
}

TEST(Paging, ConfigValidation) {
  PagingConfig c = small();
  c.page_bytes = 100;
  EXPECT_THROW(PagingSystem{c}, Error);
  c = small();
  c.physical_frames = 0;
  EXPECT_THROW(PagingSystem{c}, Error);
}

TEST(Paging, FirstTouchFaultsThenHits) {
  PagingSystem vm(small());
  vm.create_process();
  const VmAccessResult first = vm.access(0x123, false);
  EXPECT_TRUE(first.page_fault);
  const VmAccessResult second = vm.access(0x145, false);  // same page
  EXPECT_FALSE(second.page_fault);
  EXPECT_EQ(vm.stats().page_faults, 1u);
}

TEST(Paging, TranslationPreservesOffset) {
  PagingSystem vm(small());
  vm.create_process();
  const VmAccessResult r = vm.access(3 * 256 + 77, false);
  EXPECT_EQ(r.physical_address % 256, 77u);
  EXPECT_EQ(vm.translate(3 * 256 + 10).value() % 256, 10u);
  EXPECT_FALSE(vm.translate(9 * 256).has_value()) << "untouched page not resident";
}

TEST(Paging, AddressSpaceBoundsChecked) {
  PagingSystem vm(small());
  vm.create_process();
  EXPECT_THROW(vm.access(16 * 256, false), Error);
  EXPECT_THROW((void)vm.translate(16 * 256), Error);
}

TEST(Paging, LruEvictionWhenRamFull) {
  PagingSystem vm(small());  // 4 frames
  vm.create_process();
  for (std::uint32_t p = 0; p < 4; ++p) vm.access(p * 256, false);
  EXPECT_EQ(vm.frames_used(), 4u);
  vm.access(0 * 256, false);  // refresh page 0: page 1 is now LRU
  const VmAccessResult r = vm.access(5 * 256, false);
  EXPECT_TRUE(r.page_fault);
  EXPECT_TRUE(r.evicted);
  EXPECT_FALSE(vm.entry(vm.current_process(), 1).valid) << "page 1 evicted";
  EXPECT_TRUE(vm.entry(vm.current_process(), 0).valid);
  EXPECT_TRUE(vm.entry(vm.current_process(), 1).on_disk);
}

TEST(Paging, DirtyPagesWriteBackOnEviction) {
  PagingSystem vm(small());
  vm.create_process();
  vm.access(0, true);  // dirty page 0
  for (std::uint32_t p = 1; p <= 4; ++p) vm.access(p * 256, false);  // evict page 0
  EXPECT_EQ(vm.stats().dirty_writebacks, 1u);
  EXPECT_EQ(vm.stats().evictions, 1u);
}

TEST(Paging, EntryBitsTrackReferenceAndDirty) {
  PagingSystem vm(small());
  const std::uint32_t pid = vm.create_process();
  vm.access(2 * 256, false);
  EXPECT_TRUE(vm.entry(pid, 2).referenced);
  EXPECT_FALSE(vm.entry(pid, 2).dirty);
  vm.access(2 * 256, true);
  EXPECT_TRUE(vm.entry(pid, 2).dirty);
}

TEST(Paging, ProcessesHavePrivateAddressSpaces) {
  PagingSystem vm(small());
  const std::uint32_t p1 = vm.create_process();
  const std::uint32_t p2 = vm.create_process();
  vm.switch_to(p1);
  const std::uint32_t pa1 = vm.access(0, true).physical_address;
  vm.switch_to(p2);
  const std::uint32_t pa2 = vm.access(0, true).physical_address;
  EXPECT_NE(pa1, pa2) << "same virtual page, different frames";
  EXPECT_TRUE(vm.entry(p1, 0).valid);
  EXPECT_TRUE(vm.entry(p2, 0).valid);
}

TEST(Paging, ContextSwitchCountsAndIsIdempotent) {
  PagingSystem vm(small());
  const std::uint32_t p1 = vm.create_process();
  const std::uint32_t p2 = vm.create_process();
  vm.switch_to(p2);
  vm.switch_to(p2);  // no-op
  vm.switch_to(p1);
  EXPECT_EQ(vm.stats().context_switches, 2u);
  EXPECT_THROW(vm.switch_to(999), Error);
}

TEST(Paging, VM2HomeworkScenario) {
  // Two processes alternating under tight RAM, the VM2 exercise: verify
  // cross-process eviction takes the *globally* least recent page.
  PagingConfig cfg = small();
  cfg.physical_frames = 2;
  PagingSystem vm(cfg);
  const std::uint32_t a = vm.create_process();
  const std::uint32_t b = vm.create_process();
  vm.switch_to(a);
  vm.access(0, false);        // A:0 in frame
  vm.switch_to(b);
  vm.access(0, false);        // B:0 in frame; RAM full
  vm.access(256, false);      // B:1 evicts A:0 (global LRU)
  EXPECT_FALSE(vm.entry(a, 0).valid);
  EXPECT_TRUE(vm.entry(b, 0).valid);
  EXPECT_TRUE(vm.entry(b, 1).valid);
}

TEST(Paging, DumpFramesShowsOwners) {
  PagingSystem vm(small());
  const std::uint32_t pid = vm.create_process();
  vm.access(0, false);
  const std::string dump = vm.dump_frames();
  EXPECT_NE(dump.find("pid " + std::to_string(pid)), std::string::npos);
  EXPECT_NE(dump.find("(free)"), std::string::npos);
}

TEST(Tlb, HitAfterInsertMissAfterFlush) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.lookup(5).has_value());
  tlb.insert(5, 2);
  EXPECT_EQ(tlb.lookup(5).value(), 2u);
  tlb.flush();
  EXPECT_FALSE(tlb.lookup(5).has_value());
  EXPECT_EQ(tlb.stats().flushes, 1u);
  EXPECT_EQ(tlb.stats().lookups, 3u);
  EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(Tlb, LruReplacementAcrossEntries) {
  Tlb tlb(2);
  tlb.insert(1, 10);
  tlb.insert(2, 20);
  (void)tlb.lookup(1);  // 2 becomes LRU
  tlb.insert(3, 30);
  EXPECT_TRUE(tlb.lookup(1).has_value());
  EXPECT_FALSE(tlb.lookup(2).has_value());
  EXPECT_TRUE(tlb.lookup(3).has_value());
}

TEST(Tlb, InvalidateSingleEntry) {
  Tlb tlb(4);
  tlb.insert(1, 10);
  tlb.insert(2, 20);
  tlb.invalidate(1);
  EXPECT_FALSE(tlb.lookup(1).has_value());
  EXPECT_TRUE(tlb.lookup(2).has_value());
  EXPECT_THROW(Tlb(0), Error);
}

TEST(PagingWithTlb, RepeatAccessesHitTlb) {
  PagingConfig cfg = small();
  cfg.tlb_entries = 4;
  PagingSystem vm(cfg);
  vm.create_process();
  vm.access(0, false);
  const VmAccessResult r = vm.access(4, false);
  EXPECT_TRUE(r.tlb_hit);
  ASSERT_NE(vm.tlb_stats(), nullptr);
  EXPECT_EQ(vm.tlb_stats()->hits, 1u);
}

TEST(PagingWithTlb, ContextSwitchFlushesTlb) {
  PagingConfig cfg = small();
  cfg.tlb_entries = 4;
  PagingSystem vm(cfg);
  const std::uint32_t p1 = vm.create_process();
  const std::uint32_t p2 = vm.create_process();
  vm.switch_to(p1);
  vm.access(0, false);
  vm.access(0, false);  // TLB hit
  vm.switch_to(p2);
  vm.access(0, false);  // must NOT hit p1's translation
  EXPECT_EQ(vm.tlb_stats()->flushes, 1u);  // p1 was already current; one real switch
  EXPECT_EQ(vm.tlb_stats()->hits, 1u);
}

TEST(PagingWithTlb, EvictionInvalidatesTlbEntry) {
  PagingConfig cfg = small();
  cfg.physical_frames = 1;
  cfg.tlb_entries = 4;
  PagingSystem vm(cfg);
  vm.create_process();
  vm.access(0, false);
  vm.access(256, false);  // evicts page 0's frame
  const VmAccessResult r = vm.access(0, false);
  EXPECT_FALSE(r.tlb_hit) << "stale translation must not survive eviction";
  EXPECT_TRUE(r.page_fault);
}

TEST(Eat, FormulaMatchesCourseExamples) {
  // No TLB miss, no faults: probe + access.
  EXPECT_DOUBLE_EQ(effective_access_time_ns(1.0, 0.0, 100, 1, 1e6), 101.0);
  // Always walking the table: probe + walk + access.
  EXPECT_DOUBLE_EQ(effective_access_time_ns(0.0, 0.0, 100, 1, 1e6), 201.0);
  // Faults dominate even at tiny rates.
  EXPECT_GT(effective_access_time_ns(0.9, 0.001, 100, 1, 8e6),
            effective_access_time_ns(0.9, 0.0, 100, 1, 8e6) + 1000);
  EXPECT_THROW((void)effective_access_time_ns(2, 0, 1, 1, 1), Error);
  EXPECT_THROW((void)effective_access_time_ns(0.5, -1, 1, 1, 1), Error);
}

TEST(PagingReplacement, FifoEvictsOldestRegardlessOfUse) {
  PagingConfig cfg = small();
  cfg.physical_frames = 2;
  cfg.replacement = PageReplacement::Fifo;
  PagingSystem vm(cfg);
  const std::uint32_t pid = vm.create_process();
  vm.access(0 * 256, false);  // page 0 filled first
  vm.access(1 * 256, false);  // page 1
  vm.access(0 * 256, false);  // touching page 0 does NOT protect it
  vm.access(2 * 256, false);  // evicts page 0 under FIFO
  EXPECT_FALSE(vm.entry(pid, 0).valid);
  EXPECT_TRUE(vm.entry(pid, 1).valid);
}

TEST(PagingReplacement, LruProtectsRecentlyUsed) {
  PagingConfig cfg = small();
  cfg.physical_frames = 2;
  PagingSystem vm(cfg);
  const std::uint32_t pid = vm.create_process();
  vm.access(0 * 256, false);
  vm.access(1 * 256, false);
  vm.access(0 * 256, false);  // page 0 is MRU
  vm.access(2 * 256, false);  // evicts page 1 under LRU
  EXPECT_TRUE(vm.entry(pid, 0).valid);
  EXPECT_FALSE(vm.entry(pid, 1).valid);
}

TEST(PagingReplacement, ClockGrantsSecondChances) {
  PagingConfig cfg = small();
  cfg.physical_frames = 3;
  cfg.replacement = PageReplacement::Clock;
  PagingSystem vm(cfg);
  const std::uint32_t pid = vm.create_process();
  vm.access(0 * 256, false);
  vm.access(1 * 256, false);
  vm.access(2 * 256, false);
  // All referenced bits set: the hand sweeps once clearing them, then
  // evicts frame 0's page (page 0).
  vm.access(3 * 256, false);
  EXPECT_FALSE(vm.entry(pid, 0).valid);
  EXPECT_TRUE(vm.entry(pid, 1).valid);
  EXPECT_TRUE(vm.entry(pid, 2).valid);
  // Now re-reference page 1 so it survives the next sweep; page 2's
  // bit was cleared by the previous pass.
  vm.access(1 * 256, false);
  vm.access(4 * 256, false);
  EXPECT_TRUE(vm.entry(pid, 1).valid) << "referenced page earned its second chance";
}

TEST(PagingReplacement, PoliciesDivergeOnLoopingWorkloads) {
  // A 4-page loop with 3 frames: LRU always evicts the page needed next
  // (0% reuse); FIFO behaves identically here; the interesting check is
  // that all policies stay correct (translate faithfully) while fault
  // counts differ from a locality-friendly trace.
  for (const PageReplacement policy :
       {PageReplacement::Lru, PageReplacement::Fifo, PageReplacement::Clock}) {
    PagingConfig cfg = small();
    cfg.physical_frames = 3;
    cfg.replacement = policy;
    PagingSystem vm(cfg);
    vm.create_process();
    for (int pass = 0; pass < 5; ++pass) {
      for (std::uint32_t page = 0; page < 4; ++page) {
        const auto r = vm.access(page * 256 + 5, false);
        EXPECT_EQ(r.physical_address % 256, 5u);
      }
    }
    EXPECT_GE(vm.stats().page_faults, 4u);
    EXPECT_LE(vm.stats().page_faults, 20u);
  }
}

TEST(Paging, RequiresAProcess) {
  PagingSystem vm(small());
  EXPECT_THROW(vm.access(0, false), Error);
  EXPECT_THROW((void)vm.current_process(), Error);
}

}  // namespace
}  // namespace cs31::vm
