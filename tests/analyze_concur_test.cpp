// Static concurrency analysis tests. The load-bearing tier is
// ConcurDiff.* (ctest name: concur_diff_smoke): on a 1000-seed
// generate_script corpus spanning every shape — plain, barriers,
// lock-order cycles, channel misuse, lock-disciplined — the static
// over-approximation must COVER the dynamic tier (every race the
// blocking-aware Explorer finds is a static candidate, every stuck
// state find_deadlocks reaches implies a static deadlock candidate),
// guaranteed candidates must be dynamically confirmed, and pruned
// exploration (analyze::seed_explore_options) must keep race AND
// deadlock verdicts set-identical to unpruned while replaying at
// least 2x fewer schedules on the lock-disciplined subset.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analyze/checks_script.hpp"
#include "analyze/concur.hpp"
#include "common/error.hpp"
#include "race/explore.hpp"
#include "race/replay.hpp"

namespace cs31::analyze {
namespace {

using race::DeadlockState;
using race::ExploreOptions;
using race::ExploreResult;
using race::explore_races;
using race::find_deadlocks;
using race::generate_script;
using race::RaceReport;
using race::ReplayOptions;
using race::ScriptGenConfig;

std::set<std::string> race_keys(const std::vector<RaceReport>& races) {
  std::set<std::string> keys;
  for (const RaceReport& r : races) {
    keys.insert(race_pair_key(r.variable, r.first, r.second));
  }
  return keys;
}

/// A stuck state's identity for cross-run set comparison: who waits on
/// what (multiset — distinct position vectors can render alike).
std::multiset<std::string> stuck_states(const std::vector<DeadlockState>& deadlocks) {
  std::multiset<std::string> out;
  for (const DeadlockState& d : deadlocks) {
    std::string key;
    for (std::size_t i = 0; i < d.waiting.size(); ++i) {
      key += d.waiting[i] + "->" + d.resources[i] + ";";
    }
    out.insert(std::move(key));
  }
  return out;
}

ExploreOptions blocking(std::size_t workers = 1) {
  ExploreOptions options;
  options.workers = workers;
  options.model_blocking = true;
  return options;
}

const Diagnostic* find_pass(const ConcurSummary& summary, const std::string& pass) {
  for (const Diagnostic& d : summary.diagnostics) {
    if (d.pass == pass) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------
// The differential tier (ctest name: concur_diff_smoke)
// ---------------------------------------------------------------------

struct Case {
  std::uint64_t seed;
  ScriptGenConfig cfg;
};

/// 1000 seeded cases across every generator shape. Kept small per case
/// (2-3 threads, 3-4 ops) so two full blocking explorations per case
/// stay exhaustively cheap.
std::vector<Case> corpus() {
  std::vector<Case> cases;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    cases.push_back({seed, {.threads = 2, .ops_per_thread = 4}});
  }
  for (std::uint64_t seed = 200; seed < 400; ++seed) {
    cases.push_back({seed, {.threads = 3, .ops_per_thread = 3}});
  }
  for (std::uint64_t seed = 400; seed < 550; ++seed) {
    cases.push_back({seed, {.threads = 2, .ops_per_thread = 3, .barriers = true}});
  }
  for (std::uint64_t seed = 550; seed < 700; ++seed) {
    cases.push_back(
        {seed, {.threads = 3, .ops_per_thread = 3, .locks = 2, .lock_cycles = true}});
  }
  for (std::uint64_t seed = 700; seed < 850; ++seed) {
    cases.push_back({seed, {.threads = 2, .ops_per_thread = 4, .channel_misuse = true}});
  }
  for (std::uint64_t seed = 850; seed < 1000; ++seed) {
    cases.push_back({seed,
                     {.threads = 2,
                      .ops_per_thread = 4,
                      .locks = 2,
                      .channels = 0,
                      .lock_discipline = true}});
  }
  return cases;
}

TEST(ConcurDiff, ThousandSeedStaticCoversDynamic) {
  std::size_t dynamic_races = 0;
  std::size_t dynamic_deadlocks = 0;
  std::size_t guaranteed = 0;
  for (const Case& c : corpus()) {
    const auto scripts = generate_script(c.seed, c.cfg);
    const ConcurSummary summary = analyze_scripts(scripts);

    // (a) Soundness of the race over-approximation: every race the
    // blocking-aware Explorer reports maps onto a static candidate.
    const ExploreResult dynamic =
        explore_races(scripts, blocking());
    ASSERT_TRUE(dynamic.complete) << "seed " << c.seed;
    for (const RaceReport& r : dynamic.races) {
      ++dynamic_races;
      EXPECT_TRUE(summary.covers_race(r.variable, r.first.where, r.second.where))
          << "seed " << c.seed << ": dynamic race not a static candidate: "
          << r.to_string();
    }

    // (b) Every reachable stuck state implies a static deadlock
    // candidate, and every GUARANTEED candidate (recv imbalance,
    // self-relock, barrier starvation) is dynamically confirmed. Each
    // witness must replay cleanly under blocking semantics.
    const auto search = find_deadlocks(scripts);
    ASSERT_TRUE(search.complete) << "seed " << c.seed;
    if (!search.deadlocks.empty()) {
      dynamic_deadlocks += search.deadlocks.size();
      EXPECT_TRUE(summary.may_deadlock())
          << "seed " << c.seed << ": reachable deadlock with no static candidate: "
          << search.deadlocks.front().to_string();
      const auto& witness = search.deadlocks.front().witness;
      const auto replayed = race::replay(witness, ReplayOptions{true});
      EXPECT_TRUE(replayed.feasible) << "seed " << c.seed;
      EXPECT_EQ(replayed.executed, witness.size()) << "seed " << c.seed;
    }
    for (const StaticDeadlock& d : summary.deadlocks) {
      if (!d.guaranteed) continue;
      ++guaranteed;
      EXPECT_FALSE(search.deadlock_free())
          << "seed " << c.seed
          << ": guaranteed candidate not confirmed: " << d.to_string();
    }

    // The Explorer's own stuck-state census agrees with the exact
    // position-vector search.
    EXPECT_EQ(stuck_states(dynamic.deadlocks), stuck_states(search.deadlocks))
        << "seed " << c.seed;
  }
  // The corpus must actually exercise the claims.
  EXPECT_GT(dynamic_races, 100u);
  EXPECT_GT(dynamic_deadlocks, 50u);
  EXPECT_GT(guaranteed, 20u);
}

TEST(ConcurDiff, PrunedVerdictsSetIdenticalWithFewerSchedules) {
  std::uint64_t unpruned_total = 0;
  std::uint64_t pruned_total = 0;
  std::uint64_t disciplined_unpruned = 0;
  std::uint64_t disciplined_pruned = 0;
  for (const Case& c : corpus()) {
    const auto scripts = generate_script(c.seed, c.cfg);
    const ConcurSummary summary = analyze_scripts(scripts);

    const ExploreResult unpruned =
        explore_races(scripts, blocking());
    const ExploreOptions seeded =
        seed_explore_options(summary, blocking());
    const ExploreResult pruned = explore_races(scripts, seeded);

    ASSERT_TRUE(unpruned.complete && pruned.complete) << "seed " << c.seed;
    EXPECT_EQ(race_keys(pruned.races), race_keys(unpruned.races))
        << "seed " << c.seed << ": pruning changed the race verdict";
    EXPECT_EQ(stuck_states(pruned.deadlocks), stuck_states(unpruned.deadlocks))
        << "seed " << c.seed << ": pruning changed the deadlock verdict";
    // No per-case <= assertion: the seeded options also carry hints,
    // and re-prioritising the DPOR walk can legitimately move a few
    // schedules either way on un-disciplined scripts. The aggregate
    // bounds below are the contract.

    unpruned_total += unpruned.schedules_replayed;
    pruned_total += pruned.schedules_replayed;
    if (c.cfg.lock_discipline) {
      disciplined_unpruned += unpruned.schedules_replayed;
      disciplined_pruned += pruned.schedules_replayed;
    }
  }
  // The acceptance floor: >= 2x fewer schedules on the lock-disciplined
  // subset, and never more overall.
  EXPECT_GE(disciplined_unpruned, 2 * disciplined_pruned)
      << "lock-disciplined subset: " << disciplined_unpruned << " unpruned vs "
      << disciplined_pruned << " pruned";
  EXPECT_LE(pruned_total, unpruned_total);
}

// ---------------------------------------------------------------------
// Diagnostic pinning: each check's text and op attribution
// ---------------------------------------------------------------------

TEST(ConcurChecks, StaticRaceCandidateTextAndAttribution) {
  const ConcurSummary summary = analyze_scripts({{"write z"}, {"read z"}});
  ASSERT_EQ(summary.races.size(), 1u);
  EXPECT_TRUE(summary.may_race());
  EXPECT_TRUE(summary.covers_race("z", "t0 write z", "t1 read z"));
  EXPECT_TRUE(summary.covers_race("z", "t1 read z", "t0 write z"));  // unordered
  const Diagnostic* d = find_pass(summary, "static-race");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->to_string(),
            "warning[static-race] line 1 in 't0': 'z' may race: 't0 write z' and "
            "'t1 read z' can run unordered; locksets {} vs {} share no lock and no "
            "barrier orders the pair\n"
            "    note: second access: 't1 read z' (t1 op 1)");
}

TEST(ConcurChecks, ReadReadIsNotACandidate) {
  const ConcurSummary summary = analyze_scripts({{"read z"}, {"read z"}});
  EXPECT_FALSE(summary.may_race());
}

TEST(ConcurChecks, ConsistentGuardRemovesCandidateAndIsRecorded) {
  const ConcurSummary summary = analyze_scripts({
      {"lock m", "write z", "unlock m"},
      {"lock m", "read z", "unlock m"},
  });
  EXPECT_FALSE(summary.may_race());
  ASSERT_EQ(summary.guarded_vars.count("z"), 1u);
  EXPECT_EQ(summary.guarded_vars.at("z"), "m");
  const Diagnostic* note = find_pass(summary, "guarded-by");
  ASSERT_NE(note, nullptr);
  EXPECT_EQ(note->severity, Severity::Note);
  EXPECT_EQ(note->message,
            "'z' is consistently guarded by 'm' (never a race candidate under "
            "blocking semantics)");
}

TEST(ConcurChecks, OneSidedLockIsStillACandidate) {
  const ConcurSummary summary = analyze_scripts({
      {"lock m", "write z", "unlock m"},
      {"write z"},
  });
  ASSERT_EQ(summary.races.size(), 1u);
  EXPECT_EQ(summary.races.front().explanation,
            "locksets {m} vs {} share no lock and no barrier orders the pair");
  EXPECT_TRUE(summary.guarded_vars.empty());
}

TEST(ConcurChecks, BarrierOrdersAccessesAcrossEpochs) {
  const ConcurSummary ordered = analyze_scripts({
      {"write z", "barrier"},
      {"barrier", "read z"},
  });
  EXPECT_FALSE(ordered.may_race());

  // Same epoch on both sides: the barrier does NOT order them.
  const ConcurSummary same_epoch = analyze_scripts({
      {"write z", "barrier"},
      {"read z", "barrier"},
  });
  EXPECT_TRUE(same_epoch.may_race());

  // A starved barrier cannot order anything: the separating cycle
  // never completes (and the starvation itself is reported).
  const ConcurSummary starved = analyze_scripts({
      {"write z", "barrier"},
      {"barrier", "read z"},
      {"write p"},
  });
  EXPECT_TRUE(starved.may_race());
}

TEST(ConcurChecks, SendRecvNeverOrdersAccesses) {
  // A recv-after-send "segment" still races: some schedule runs the
  // reader's access before the writer's send.
  const ConcurSummary summary = analyze_scripts({
      {"write z", "send q"},
      {"recv q", "read z"},
  });
  EXPECT_TRUE(summary.may_race());
}

TEST(ConcurChecks, LockOrderCycleDetectedAndReachable) {
  const std::vector<std::vector<std::string>> abba = {
      {"lock a", "lock b", "write z", "unlock b", "unlock a"},
      {"lock b", "lock a", "write z", "unlock a", "unlock b"},
  };
  const ConcurSummary summary = analyze_scripts(abba);
  ASSERT_EQ(summary.deadlocks.size(), 1u);
  const StaticDeadlock& d = summary.deadlocks.front();
  EXPECT_EQ(d.kind, "lock-order-cycle");
  EXPECT_EQ(d.resources, (std::vector<std::string>{"mutex a", "mutex b"}));
  EXPECT_FALSE(d.guaranteed);
  const Diagnostic* diag = find_pass(summary, "lock-order-cycle");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->message,
            "lock-order cycle through mutex a, mutex b: threads acquire these in "
            "conflicting orders, so some schedule deadlocks");

  // Dynamically reachable: the exact search finds the ABBA stuck state.
  const auto search = find_deadlocks(abba);
  ASSERT_EQ(search.deadlocks.size(), 1u);
  EXPECT_EQ(search.deadlocks.front().resources,
            (std::vector<std::string>{"mutex b", "mutex a"}));
  EXPECT_EQ(search.deadlocks.front().waiting,
            (std::vector<std::string>{"t0 lock b", "t1 lock a"}));
}

TEST(ConcurChecks, ConsistentLockOrderHasNoCycle) {
  const ConcurSummary summary = analyze_scripts({
      {"lock a", "lock b", "write z", "unlock b", "unlock a"},
      {"lock a", "lock b", "write z", "unlock b", "unlock a"},
  });
  EXPECT_FALSE(summary.may_deadlock());
}

TEST(ConcurChecks, ChannelWaitCycleDetected) {
  // t0 recvs while holding the mutex the sender needs.
  const std::vector<std::vector<std::string>> scripts = {
      {"lock m", "recv q", "unlock m"},
      {"lock m", "send q", "unlock m"},
  };
  const ConcurSummary summary = analyze_scripts(scripts);
  ASSERT_EQ(summary.deadlocks.size(), 1u);
  EXPECT_EQ(summary.deadlocks.front().kind, "channel-wait-cycle");
  EXPECT_EQ(summary.deadlocks.front().resources,
            (std::vector<std::string>{"channel q", "mutex m"}));
  const Diagnostic* diag = find_pass(summary, "channel-wait-cycle");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->message,
            "wait-order cycle through channel q, mutex m: progress on each resource "
            "requires the others, so some schedule deadlocks");

  // Reachable: t0 takes m first, then recv blocks and t1 can't send.
  EXPECT_FALSE(find_deadlocks(scripts).deadlock_free());
}

TEST(ConcurChecks, SelfDeadlockIsGuaranteedAndConfirmed) {
  const std::vector<std::vector<std::string>> scripts = {{"lock m", "lock m"}};
  const ConcurSummary summary = analyze_scripts(scripts);
  ASSERT_EQ(summary.deadlocks.size(), 1u);
  EXPECT_EQ(summary.deadlocks.front().kind, "self-deadlock");
  EXPECT_TRUE(summary.deadlocks.front().guaranteed);
  const Diagnostic* diag = find_pass(summary, "self-deadlock");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->to_string(),
            "error[self-deadlock] line 2 in 't0': re-lock of held mutex 'm': this "
            "thread blocks on itself in every schedule that reaches this op");
  EXPECT_FALSE(find_deadlocks(scripts).deadlock_free());
}

TEST(ConcurChecks, UnlockWithoutLockReported) {
  const ConcurSummary summary = analyze_scripts({{"unlock m"}});
  const Diagnostic* diag = find_pass(summary, "unlock-without-lock");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->to_string(),
            "error[unlock-without-lock] line 1 in 't0': unlock of 'm' without a "
            "matching program-order lock (the dynamic tier rejects this script)");
  // Not a deadlock candidate: nothing blocks, the op is just invalid.
  EXPECT_FALSE(summary.may_deadlock());
}

TEST(ConcurChecks, RecvNoSendIsGuaranteedAndConfirmed) {
  const std::vector<std::vector<std::string>> scripts = {
      {"send q", "recv q"},
      {"recv q"},
  };
  const ConcurSummary summary = analyze_scripts(scripts);
  ASSERT_EQ(summary.deadlocks.size(), 1u);
  EXPECT_EQ(summary.deadlocks.front().kind, "recv-no-send");
  EXPECT_TRUE(summary.deadlocks.front().guaranteed);
  const Diagnostic* diag = find_pass(summary, "recv-no-send");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->message,
            "channel 'q' receives 2 time(s) but is sent only 1 time(s): a recv waits "
            "forever in every complete schedule");
  EXPECT_FALSE(find_deadlocks(scripts).deadlock_free());
}

TEST(ConcurChecks, BarrierStarvationIsGuaranteedAndConfirmed) {
  const std::vector<std::vector<std::string>> scripts = {
      {"barrier", "barrier", "write z"},
      {"barrier", "write z"},
  };
  const ConcurSummary summary = analyze_scripts(scripts);
  ASSERT_EQ(summary.deadlocks.size(), 1u);
  EXPECT_EQ(summary.deadlocks.front().kind, "barrier-starvation");
  EXPECT_TRUE(summary.deadlocks.front().guaranteed);
  const Diagnostic* diag = find_pass(summary, "barrier-starvation");
  ASSERT_NE(diag, nullptr);
  EXPECT_EQ(diag->to_string(),
            "error[barrier-starvation] line 2 in 't0': barrier arrival 2 can never "
            "complete: t1 arrive(s) only 1 time(s)");
  EXPECT_FALSE(find_deadlocks(scripts).deadlock_free());
}

TEST(ConcurChecks, ThreadLocalVarsAndJson) {
  const ConcurSummary summary = analyze_scripts({
      {"write p0", "lock m", "write z", "unlock m"},
      {"lock m", "read z", "unlock m"},
  });
  EXPECT_EQ(summary.thread_local_vars, (std::vector<std::string>{"p0"}));
  const std::string json = summary.to_json();
  EXPECT_NE(json.find("\"race_candidates\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"thread_local\":[\"p0\"]"), std::string::npos);
  EXPECT_NE(json.find("\"guarded\":{\"z\":\"m\"}"), std::string::npos);
}

TEST(ConcurChecks, MalformedOpsThrow) {
  EXPECT_THROW((void)analyze_scripts({{"mangle z"}}), Error);
  EXPECT_THROW((void)analyze_scripts({{"read"}}), Error);
}

TEST(ConcurChecks, CycleComponentsFindsSccsAndSelfLoops) {
  std::vector<OrderEdge> edges;
  edges.push_back({"a", "b", nullptr});
  edges.push_back({"b", "a", nullptr});
  edges.push_back({"b", "c", nullptr});  // c: no cycle
  edges.push_back({"d", "d", nullptr});  // self-loop
  const auto components = cycle_components(edges);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(components[1], (std::vector<std::string>{"d"}));
}

TEST(ConcurChecks, SeedExploreOptionsWiresGuidanceAndPruning) {
  const ConcurSummary summary = analyze_scripts({
      {"write p0", "lock m", "write z", "unlock m", "write y"},
      {"lock m", "read z", "unlock m", "read y"},
  });
  const ExploreOptions options = seed_explore_options(summary);
  EXPECT_TRUE(options.model_blocking);
  ASSERT_EQ(options.hints.size(), summary.races.size());
  EXPECT_FALSE(options.hints.empty());  // y races
  EXPECT_EQ(options.hints.front().variable, "y");
  EXPECT_EQ(options.independent_vars, (std::vector<std::string>{"p0", "z"}));
  // m's critical sections touch only m-guarded z: a pure guard.
  EXPECT_EQ(options.independent_mutexes, (std::vector<std::string>{"m"}));
}

TEST(ConcurChecks, ImpureGuardsAreNotReduced) {
  // t1 reads y (unguarded elsewhere) inside its m-section: m's
  // release/acquire edges could mask the y race in one lock order, so
  // m must stay fully dependent in the explorer.
  const ConcurSummary straddle = analyze_scripts({
      {"lock m", "write z", "unlock m", "write y"},
      {"lock m", "read z", "read y", "unlock m"},
  });
  EXPECT_TRUE(straddle.independent_mutexes.empty());

  // A nested lock disqualifies the holder (the inner, empty section is
  // still pure); a channel op or a section left open disqualify too.
  EXPECT_EQ(analyze_scripts({{"lock a", "lock b", "unlock b", "unlock a"}})
                .independent_mutexes,
            (std::vector<std::string>{"b"}));
  EXPECT_TRUE(analyze_scripts({{"lock m", "send q", "unlock m"}, {"recv q"}})
                  .independent_mutexes.empty());
  EXPECT_TRUE(analyze_scripts({{"lock m", "write z"}, {"read z"}})
                  .independent_mutexes.empty());
}

// ---------------------------------------------------------------------
// Blocking-aware replay + exploration
// ---------------------------------------------------------------------

TEST(BlockingReplay, InfeasibleScheduleStopsAtBlockedOp) {
  const std::vector<std::string> schedule = {"t0 lock m", "t1 lock m", "t1 write z"};
  const auto blocking = race::replay(schedule, ReplayOptions{true});
  EXPECT_FALSE(blocking.feasible);
  EXPECT_EQ(blocking.executed, 1u);

  // Non-blocking replay of the same schedule runs it all (and that
  // over-approximation is the default, unchanged).
  const auto loose = race::replay(schedule);
  EXPECT_TRUE(loose.feasible);
  EXPECT_EQ(loose.executed, schedule.size());
}

TEST(BlockingReplay, RecvBlocksUntilSend) {
  EXPECT_FALSE(race::replay({"t0 recv q", "t1 send q"}, ReplayOptions{true}).feasible);
  EXPECT_TRUE(race::replay({"t1 send q", "t0 recv q"}, ReplayOptions{true}).feasible);
}

TEST(BlockingReplay, ParkedBarrierThreadCannotRun) {
  const auto parked =
      race::replay({"t0 barrier", "t0 write z", "t1 barrier"}, ReplayOptions{true});
  EXPECT_FALSE(parked.feasible);
  EXPECT_EQ(parked.executed, 1u);
  EXPECT_TRUE(race::replay({"t0 barrier", "t1 barrier", "t0 write z"},
                           ReplayOptions{true})
                  .feasible);
}

TEST(BlockingReplay, FindDeadlocksBoundsAndCompleteness) {
  const auto none = find_deadlocks({{"lock m", "write z", "unlock m"},
                                    {"lock m", "write z", "unlock m"}});
  EXPECT_TRUE(none.complete);
  EXPECT_TRUE(none.deadlock_free());
  EXPECT_GT(none.states_visited, 0u);

  const auto bounded = find_deadlocks({{"write a", "write b"}, {"write c"}}, 2);
  EXPECT_FALSE(bounded.complete);
}

TEST(BlockingReplay, FindDeadlocksValidatesScripts) {
  EXPECT_THROW((void)find_deadlocks({{"unlock m"}}), Error);
  EXPECT_THROW((void)find_deadlocks({{"mangle z"}}), Error);
}

TEST(BlockingExplore, ReachesDeadlocksAndStaysWorkerIdentical) {
  const std::vector<std::vector<std::string>> abba = {
      {"lock a", "lock b", "write z", "unlock b", "unlock a"},
      {"lock b", "lock a", "write z", "unlock a", "unlock b"},
  };
  const ExploreResult one =
      explore_races(abba, blocking(1));
  const ExploreResult four =
      explore_races(abba, blocking(4));
  EXPECT_GE(one.deadlocked_schedules, 1u);
  ASSERT_EQ(one.deadlocks.size(), 1u);
  EXPECT_EQ(one.deadlocks.front().waiting,
            (std::vector<std::string>{"t0 lock b", "t1 lock a"}));
  EXPECT_EQ(one.summary(), four.summary());
  EXPECT_EQ(stuck_states(one.deadlocks), stuck_states(four.deadlocks));
  EXPECT_EQ(race_keys(one.races), race_keys(four.races));
}

TEST(BlockingExplore, BlockingRemovesCriticalSectionFalseRaces) {
  // The Act 3 talking point, resolved: without blocking the enumerator
  // interleaves two critical sections and the guarded increment
  // "races"; with blocking it cannot.
  const std::vector<std::vector<std::string>> guarded = {
      {"lock m", "read z", "write z", "unlock m"},
      {"lock m", "read z", "write z", "unlock m"},
  };
  const ExploreResult loose = explore_races(guarded);
  EXPECT_FALSE(loose.races.empty());
  const ExploreResult strict = explore_races(guarded, blocking());
  EXPECT_TRUE(strict.races.empty());
  EXPECT_EQ(strict.deadlocked_schedules, 0u);
}

TEST(BlockingExplore, PruningRequiresBlocking) {
  ExploreOptions options;
  options.independent_vars = {"z"};
  EXPECT_THROW((void)explore_races({{"write z"}, {"write z"}}, options), Error);

  // With blocking the claim is accepted; pruning cuts the explored
  // tree (the vouched-for pair is never backtracked, so only one of
  // the two orders replays), not the detector's verdict inside a
  // replayed schedule — the caller's claim here is a lie, and the one
  // schedule that does run still reports the race.
  options.model_blocking = true;
  const ExploreResult pruned = explore_races({{"write z"}, {"write z"}}, options);
  EXPECT_EQ(pruned.schedules_replayed, 1u);
  EXPECT_EQ(race_keys(pruned.races),
            race_keys(explore_races({{"write z"}, {"write z"}}, blocking()).races));
}

}  // namespace
}  // namespace cs31::analyze
