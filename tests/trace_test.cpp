// The TraceContext capture layer end to end: scripted and real-thread
// capture, deterministic drain order (byte-identical certificates),
// real-thread ParallelLife::run against the replay path, per-slot
// BoundedBuffer precision, the Eraser-style LocksetDetector (including
// its documented disagreement with happens-before), the MetricsSink,
// and the PR 4 AnalysisPipeline (sharded off-thread analysis whose
// certificates must be byte-identical to inline mode, under any shard
// count, under backpressure, and with merged metrics equal to the
// inline sink's).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "life/life.hpp"
#include "life/traced.hpp"
#include "parallel/sync.hpp"
#include "parallel/threads.hpp"
#include "race/lockset.hpp"
#include "trace/context.hpp"
#include "trace/instrumented.hpp"
#include "trace/metrics.hpp"
#include "trace/pipeline.hpp"

namespace cs31::trace {
namespace {

std::set<std::string> race_keys(const std::vector<race::RaceReport>& races) {
  std::set<std::string> keys;
  for (const auto& r : races) keys.insert(race::race_pair_key(r.variable, r.first, r.second));
  return keys;
}

// --- capture layer ----------------------------------------------------

TEST(TraceCapture, InterningIsIdempotent) {
  TraceContext ctx;
  EXPECT_EQ(ctx.intern_var("v"), ctx.intern_var("v"));
  EXPECT_EQ(ctx.intern_lock("m"), ctx.intern_lock("m"));
  EXPECT_NE(ctx.intern_site("a"), ctx.intern_site("b"));
  ctx.flush();
  ctx.flush();  // flushing an idle context twice is harmless
  EXPECT_TRUE(ctx.detector().race_free());
}

TEST(TraceCapture, ForkPublishesParentWritesToChild) {
  TraceContext ctx;
  const NameId v = ctx.intern_var("v");
  ctx.write_as(0, v, ctx.intern_site("parent init"));
  const ThreadId child = ctx.fork_thread(0);
  ctx.read_as(child, v, ctx.intern_site("child read"));
  ctx.join_thread(0, child);
  ctx.flush();
  EXPECT_TRUE(ctx.detector().race_free());
}

TEST(TraceCapture, UnorderedSiblingWritesRace) {
  TraceContext ctx;
  const NameId v = ctx.intern_var("v");
  const ThreadId a = ctx.fork_thread(0);
  const ThreadId b = ctx.fork_thread(0);
  ctx.write_as(a, v, ctx.intern_site("a writes"));
  ctx.write_as(b, v, ctx.intern_site("b writes"));
  ctx.join_thread(0, a);
  ctx.join_thread(0, b);
  ctx.flush();
  ASSERT_EQ(ctx.detector().races().size(), 1u);
  EXPECT_EQ(ctx.detector().races().front().variable, "v");
}

TEST(TraceCapture, RealThreadsCaptureThroughATracedTeam) {
  TraceContext ctx;
  TracedVar<int> hits("hits", ctx);
  TracedMutex mutex("hits_lock", ctx);
  parallel::ThreadTeam team(4, ctx, [&](std::size_t) {
    for (int i = 0; i < 25; ++i) {
      std::scoped_lock hold(mutex);
      hits.store(hits.load() + 1);
    }
  });
  team.join();
  const int total = hits.load();  // main observes all children via the joins
  ctx.flush();
  EXPECT_EQ(total, 100);
  EXPECT_TRUE(ctx.detector().race_free());
  EXPECT_EQ(ctx.buffer_stats().size(), 5u);  // main + 4 workers
  EXPECT_GT(ctx.events_captured(), 0u);
  EXPECT_GT(ctx.drains(), 0u);
}

TEST(TraceCapture, MetricsSinkCountsTheEventMix) {
  TraceContext ctx(TraceContext::Options{.own_detector = false});
  MetricsSink metrics;
  ctx.attach_sink(metrics);
  const NameId v = ctx.intern_var("v");
  const NameId m = ctx.intern_lock("m");
  const NameId ch = ctx.intern_channel("ch");
  const ThreadId worker = ctx.fork_thread(0);
  ctx.acquire_as(worker, m);
  ctx.read_as(worker, v);
  ctx.write_as(worker, v);
  ctx.release_as(worker, m);
  ctx.send_as(0, ch);
  ctx.recv_as(worker, ch);
  ctx.barrier_cycle({0, worker});
  ctx.acquire_as(0, m);
  ctx.read_as(0, v);
  ctx.release_as(0, m);
  ctx.join_thread(0, worker);
  ctx.flush();

  const auto per_thread = metrics.per_thread();
  ASSERT_GE(per_thread.size(), 2u);
  EXPECT_EQ(per_thread[0].reads, 1u);
  EXPECT_EQ(per_thread[0].sends, 1u);
  EXPECT_EQ(per_thread[0].acquires, 1u);
  EXPECT_EQ(per_thread[0].barriers, 1u);
  EXPECT_EQ(per_thread[1].reads, 1u);
  EXPECT_EQ(per_thread[1].writes, 1u);
  EXPECT_EQ(per_thread[1].recvs, 1u);
  EXPECT_EQ(per_thread[1].barriers, 1u);
  const auto locks = metrics.lock_acquires();
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0].first, "m");
  EXPECT_EQ(locks[0].second, 2u);
  EXPECT_EQ(metrics.barrier_cycles(), 1u);
  EXPECT_TRUE(metrics.race_free());
  EXPECT_TRUE(metrics.races().empty());
}

// --- real-thread traced ParallelLife ---------------------------------

TEST(TracedParallelLifeReal, RaceFreeAndCorrectAcrossThreadCounts) {
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 99);
  life::SerialLife serial(initial);
  serial.run(3);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    TraceContext ctx;
    life::ParallelLife parallel_life(initial, threads);
    parallel_life.run(3, {.ctx = &ctx});
    ctx.flush();
    EXPECT_TRUE(ctx.detector().race_free()) << threads << " threads";
    EXPECT_EQ(parallel_life.grid(), serial.grid()) << threads << " threads";
  }
}

TEST(TracedParallelLifeReal, RepeatedRunsYieldByteIdenticalCertificates) {
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 7);
  auto certificate = [&] {
    TraceContext ctx;
    life::ParallelLife parallel_life(initial, 4);
    parallel_life.run(2, {.ctx = &ctx});
    ctx.flush();
    EXPECT_TRUE(ctx.detector().race_free());
    return std::pair{ctx.detector().summary(), ctx.events_captured()};
  };
  const auto first = certificate();
  const auto second = certificate();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(TracedParallelLifeReal, CellGranularityMatchesTheReplayCertificate) {
  // The refactor's headline claim: a real-thread run and the scripted
  // replay are the same machinery, so at Cell granularity they produce
  // the same certificate on the same workload.
  const life::Grid initial = life::Grid::random(9, 9, 0.4, 13);
  const auto replay = life::traced_life_check(initial, 3, 2, /*use_barrier=*/true);
  ASSERT_TRUE(replay.race_free);

  TraceContext ctx;
  life::ParallelLife parallel_life(initial, 3);
  parallel_life.run(2, {.ctx = &ctx, .report_barrier = true,
                        .granularity = life::TraceGranularity::Cell});
  ctx.flush();
  EXPECT_TRUE(ctx.detector().race_free());
  EXPECT_EQ(ctx.detector().summary(), replay.report);
  EXPECT_EQ(parallel_life.grid(), replay.grid);
}

TEST(TracedParallelLifeReal, ForgottenBarrierMatchesReplayRaceSet) {
  // The "forgotten barrier" teaching mode on real threads must report
  // the same race set as the replay-based regression path: the real
  // barrier still runs (well-defined execution), only its edge is
  // withheld from the sinks.
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 21);
  const auto replay = life::traced_life_check(initial, 3, 2, /*use_barrier=*/false);
  ASSERT_FALSE(replay.race_free);

  TraceContext ctx;
  life::ParallelLife parallel_life(initial, 3);
  parallel_life.run(2, {.ctx = &ctx, .report_barrier = false,
                        .granularity = life::TraceGranularity::Cell});
  ctx.flush();
  ASSERT_FALSE(ctx.detector().race_free());
  EXPECT_EQ(race_keys(ctx.detector().races()), race_keys(replay.races));
}

// --- per-slot BoundedBuffer precision ---------------------------------

TEST(TracedBoundedBufferSlots, RaceIsLocalizedToTheExactItem) {
  // Producer: write x, put item A (slot 0), write y, put item B
  // (slot 1). A consumer that dequeued only item A is ordered after
  // "write x" but NOT after "write y" — a whole-buffer channel clock
  // would merge both sends and hide the race on y; per-slot channels
  // keep it, localized to the exact item.
  TraceContext ctx;
  parallel::BoundedBuffer buffer(2);
  buffer.attach_tracer(ctx, "queue");
  std::promise<void> both_in;
  auto ready = both_in.get_future();

  parallel::ThreadTeam team(1, ctx, [&](std::size_t) {
    ctx.write("x", "producer writes x before item A");
    buffer.put(10);  // slot 0
    ctx.write("y", "producer writes y before item B");
    buffer.put(20);  // slot 1
    both_in.set_value();
  });
  ready.wait();  // untraced edge: only sequences the test, not the sinks
  EXPECT_EQ(buffer.get(), 10);
  ctx.read("x", "consumer reads x after item A");  // ordered via slot 0
  ctx.read("y", "consumer reads y after item A");  // NOT ordered: the race
  EXPECT_EQ(buffer.get(), 20);
  ctx.read("y", "consumer reads y after item B");  // ordered via slot 1
  team.join();
  ctx.flush();

  const auto& races = ctx.detector().races();
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races.front().variable, "y");
  EXPECT_NE(races.front().second.where.find("after item A"), std::string::npos);
}

// --- the sharded analysis pipeline (PR 4) -----------------------------

// Mutex-bearing test objects live on the heap throughout this section:
// libstdc++'s std::mutex never calls pthread_mutex_destroy, so TSan
// cannot tell when a stack slot is reused by a different mutex in a
// later test, and its cumulative lock-order graph then reports cycles
// spanning unrelated tests. Freed heap memory resets that metadata.
life::TracedLifeResult piped_life(const life::Grid& initial, bool use_barrier,
                                  std::size_t shards, std::size_t queue_capacity = 8) {
  const auto pipeline = std::make_unique<AnalysisPipeline>(
      AnalysisPipeline::Options{.shards = shards, .queue_capacity = queue_capacity});
  life::TracedLifeOptions options;
  options.use_barrier = use_barrier;
  options.pipeline = pipeline.get();
  return life::traced_life_check(initial, 3, 3, options);
}

TEST(AnalysisPipelineTest, RaceReportsByteIdenticalAcrossShardCounts) {
  // The determinism contract: the barrier-less Life's full race report
  // — every reported pair, in inline detection order, with inline event
  // numbers — survives any sharding of the analysis.
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 2022);
  const auto inline_run = life::traced_life_check(initial, 3, 3, /*use_barrier=*/false);
  ASSERT_FALSE(inline_run.race_free);
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const auto piped = piped_life(initial, /*use_barrier=*/false, shards);
    EXPECT_EQ(piped.report, inline_run.report) << shards << " shards";
    EXPECT_EQ(piped.races.size(), inline_run.races.size()) << shards << " shards";
    EXPECT_EQ(piped.events, inline_run.events) << shards << " shards";
  }
}

TEST(AnalysisPipelineTest, RaceFreeCertificateByteIdenticalAcrossShardCounts) {
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 2022);
  const auto inline_run = life::traced_life_check(initial, 3, 3, /*use_barrier=*/true);
  ASSERT_TRUE(inline_run.race_free);
  for (const std::size_t shards : {1u, 2u, 4u}) {
    const auto piped = piped_life(initial, /*use_barrier=*/true, shards);
    EXPECT_TRUE(piped.race_free) << shards << " shards";
    EXPECT_EQ(piped.report, inline_run.report) << shards << " shards";
    EXPECT_EQ(piped.grid, inline_run.grid) << shards << " shards";
  }
}

TEST(AnalysisPipelineTest, CapacityTwoQueueForcesBackpressureAndStaysExact) {
  // Pre-built batches published back-to-back: the producer's cost per
  // batch is a queue push, the pipeline's is FastTrack analysis of
  // every event in it, so a capacity-2 queue must fill and block the
  // producer — and the verdict must not care. (Driving this through a
  // TraceContext would pace the producer with the drain's own merge
  // cost, which is exactly what the pipeline exists to get off the
  // critical path.)
  constexpr int kBatches = 48;
  constexpr int kPerBatch = 1500;
  constexpr std::uint32_t kVars = 8;

  // Two crafted threads (context tids 1 and 2, forked in batch 0) write
  // and read the same variables with no ordering — every variable
  // races, and the vars spread across both shards.
  const auto make_batch = [&](int batch_index) {
    EventBatch batch;
    if (batch_index == 0) {
      batch.new_sites = {""};  // site-table slot 0: the empty label
      for (std::uint32_t v = 0; v < kVars; ++v)
        batch.new_vars.push_back("v" + std::to_string(v));
      batch.events.push_back(Event{.kind = EventKind::Fork, .thread = 0, .id = 1});
      batch.events.push_back(Event{.kind = EventKind::Fork, .thread = 0, .id = 2});
    }
    for (int i = 0; i < kPerBatch; ++i) {
      const auto var = static_cast<NameId>(i % kVars);
      batch.events.push_back(Event{.kind = EventKind::Write, .thread = 1, .id = var});
      batch.events.push_back(Event{.kind = EventKind::Read, .thread = 2, .id = var});
    }
    return batch;
  };

  // Inline reference: the identical stream through one Detector, which
  // numbers events exactly like the router does.
  const auto inline_detector = std::make_unique<race::Detector>();
  {
    std::vector<NameId> var_ids;
    for (std::uint32_t v = 0; v < kVars; ++v)
      var_ids.push_back(inline_detector->intern_var("v" + std::to_string(v)));
    const NameId site = inline_detector->intern_site("");
    const race::ThreadId t1 = inline_detector->fork(0);
    const race::ThreadId t2 = inline_detector->fork(0);
    for (int b = 0; b < kBatches; ++b) {
      for (int i = 0; i < kPerBatch; ++i) {
        inline_detector->write(t1, var_ids[i % kVars], site);
        inline_detector->read(t2, var_ids[i % kVars], site);
      }
    }
  }
  ASSERT_FALSE(inline_detector->race_free());

  const auto pipeline = std::make_unique<AnalysisPipeline>(
      AnalysisPipeline::Options{.shards = 2, .queue_capacity = 2});
  for (int b = 0; b < kBatches; ++b) pipeline->publish(make_batch(b));
  pipeline->wait_idle();

  EXPECT_GT(pipeline->publish_waits(), 0u)
      << "the capacity-2 queue never filled — backpressure untested";
  EXPECT_GE(pipeline->batch_high_water(), 2u);
  EXPECT_EQ(pipeline->summary(), inline_detector->summary());
  EXPECT_EQ(pipeline->events(), 2u + std::uint64_t{kBatches} * kPerBatch * 2);
}

TEST(AnalysisPipelineTest, RealThreadLifeCertificateMatchesInline) {
  // The capture side is real threads (ParallelLife::run); the analysis
  // side is the off-thread pipeline. The certificate must equal the
  // inline detector's from an identical run.
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 7);
  const auto inline_ctx = std::make_unique<TraceContext>();
  life::ParallelLife inline_life(initial, 3);
  inline_life.run(2, {.ctx = inline_ctx.get()});
  inline_ctx->flush();
  ASSERT_TRUE(inline_ctx->detector().race_free());

  const auto pipeline = std::make_unique<AnalysisPipeline>(
      AnalysisPipeline::Options{.shards = 2, .queue_capacity = 4});
  const auto ctx = std::make_unique<TraceContext>(
      TraceContext::Options{.own_detector = false});
  ctx->attach_pipeline(*pipeline);
  life::ParallelLife life(initial, 3);
  life.run(2, {.ctx = ctx.get()});
  ctx->flush();

  EXPECT_TRUE(pipeline->race_free());
  EXPECT_EQ(pipeline->summary(), inline_ctx->detector().summary());
  EXPECT_EQ(life.grid(), inline_life.grid());
}

TEST(AnalysisPipelineTest, MergedMetricsEqualTheInlineSink) {
  // Per-shard MetricsDelta accumulation, merged at wait_idle, must
  // reproduce the inline MetricsSink's totals exactly — threads, locks,
  // barrier cycles, event count.
  const auto script = [](TraceContext& ctx) {
    TracedVar<int> x("x", ctx);
    TracedMutex m("m", ctx);
    parallel::ThreadTeam team(3, ctx, [&](std::size_t) {
      for (int i = 0; i < 50; ++i) {
        std::scoped_lock hold(m);
        x.store(x.load() + 1);
      }
    });
    team.join();
    ctx.flush();
  };

  const auto inline_metrics = std::make_unique<MetricsSink>();
  {
    const auto ctx = std::make_unique<TraceContext>(
        TraceContext::Options{.own_detector = false});
    ctx->attach_sink(*inline_metrics);
    script(*ctx);
  }

  const auto piped_metrics = std::make_unique<MetricsSink>();
  {
    const auto pipeline = std::make_unique<AnalysisPipeline>(
        AnalysisPipeline::Options{.shards = 2, .queue_capacity = 4});
    pipeline->attach_metrics(*piped_metrics);
    const auto ctx = std::make_unique<TraceContext>(
        TraceContext::Options{.own_detector = false});
    ctx->attach_pipeline(*pipeline);
    script(*ctx);
  }

  EXPECT_EQ(piped_metrics->events(), inline_metrics->events());
  EXPECT_EQ(piped_metrics->barrier_cycles(), inline_metrics->barrier_cycles());
  EXPECT_EQ(piped_metrics->lock_acquires(), inline_metrics->lock_acquires());
  const auto inline_threads = inline_metrics->per_thread();
  const auto piped_threads = piped_metrics->per_thread();
  ASSERT_EQ(piped_threads.size(), inline_threads.size());
  for (std::size_t t = 0; t < inline_threads.size(); ++t) {
    EXPECT_EQ(piped_threads[t].reads, inline_threads[t].reads) << "thread " << t;
    EXPECT_EQ(piped_threads[t].writes, inline_threads[t].writes) << "thread " << t;
    EXPECT_EQ(piped_threads[t].acquires, inline_threads[t].acquires) << "thread " << t;
    EXPECT_EQ(piped_threads[t].releases, inline_threads[t].releases) << "thread " << t;
    EXPECT_EQ(piped_threads[t].barriers, inline_threads[t].barriers) << "thread " << t;
  }
}

TEST(AnalysisPipelineTest, PipelineRequiresAFreshContext) {
  const auto pipeline =
      std::make_unique<AnalysisPipeline>(AnalysisPipeline::Options{.shards = 1});
  const auto with_detector =  // owns an inline detector already
      std::make_unique<TraceContext>();
  EXPECT_THROW(with_detector->attach_pipeline(*pipeline), Error);
  EXPECT_THROW(AnalysisPipeline(AnalysisPipeline::Options{.shards = 0}), Error);
}

// --- sampling capture mode --------------------------------------------

TEST(SamplingCaptureTest, SameRateIsDeterministic) {
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 5);
  const auto run = [&] {
    life::TracedLifeOptions options;
    options.use_barrier = false;
    options.sample_rate = 0.25;
    return life::traced_life_check(initial, 3, 3, options);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_GT(first.sampled_out, 0u);
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.sampled_out, second.sampled_out);
  EXPECT_EQ(race_keys(first.races), race_keys(second.races));
}

TEST(SamplingCaptureTest, RateOneIsExactlyTheUnsampledRun) {
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 5);
  const auto plain = life::traced_life_check(initial, 3, 3, /*use_barrier=*/false);
  life::TracedLifeOptions options;
  options.use_barrier = false;
  options.sample_rate = 1.0;
  const auto sampled = life::traced_life_check(initial, 3, 3, options);
  EXPECT_EQ(sampled.sampled_out, 0u);
  EXPECT_EQ(sampled.report, plain.report);
  EXPECT_EQ(sampled.events, plain.events);
}

TEST(SamplingCaptureTest, SyncEventsAreNeverSampledOut) {
  // At rate 0 every access is dropped but the happens-before skeleton
  // (forks, joins, barriers) still flows — the run ends race-free with
  // only sync events analyzed, not empty.
  life::TracedLifeOptions options;
  options.use_barrier = true;
  options.sample_rate = 0.0;
  const auto run =
      life::traced_life_check(life::Grid::random(12, 12, 0.3, 5), 3, 2, options);
  EXPECT_TRUE(run.race_free);
  EXPECT_GT(run.events, 0u);       // the sync skeleton
  EXPECT_GT(run.sampled_out, 0u);  // every access
}

TEST(SamplingCaptureTest, SamplingComposesWithThePipeline) {
  // Sampling happens at capture, sharding at analysis; a sampled
  // pipelined run must equal the sampled inline run byte for byte.
  const life::Grid initial = life::Grid::random(12, 12, 0.3, 5);
  life::TracedLifeOptions inline_options;
  inline_options.use_barrier = false;
  inline_options.sample_rate = 0.5;
  const auto inline_run = life::traced_life_check(initial, 3, 3, inline_options);

  const auto pipeline = std::make_unique<AnalysisPipeline>(
      AnalysisPipeline::Options{.shards = 2, .queue_capacity = 4});
  life::TracedLifeOptions piped_options = inline_options;
  piped_options.pipeline = pipeline.get();
  const auto piped = life::traced_life_check(initial, 3, 3, piped_options);
  EXPECT_EQ(piped.report, inline_run.report);
  EXPECT_EQ(piped.sampled_out, inline_run.sampled_out);
}

// --- the Eraser-style lockset detector --------------------------------

TEST(LocksetDetectorTest, ConsistentLockingIsClean) {
  race::LocksetDetector d;
  const race::ThreadId t1 = d.fork(0);
  d.acquire(0, "m");
  d.write(0, "v", "first");
  d.release(0, "m");
  d.acquire(t1, "m");
  d.write(t1, "v", "second");
  d.release(t1, "m");
  EXPECT_TRUE(d.race_free());
  EXPECT_TRUE(d.lockset_defined("v"));
  EXPECT_EQ(d.candidate_lockset("v"), std::vector<std::string>{"m"});
}

TEST(LocksetDetectorTest, EmptyIntersectionIsReported) {
  race::LocksetDetector d;
  const race::ThreadId t1 = d.fork(0);
  d.acquire(0, "m1");
  d.write(0, "v", "under m1");
  d.release(0, "m1");
  d.acquire(t1, "m2");
  d.write(t1, "v", "under m2");  // candidate lockset becomes {m2}
  d.release(t1, "m2");
  EXPECT_TRUE(d.race_free());  // still non-empty — Eraser reports lazily
  d.acquire(0, "m1");
  d.write(0, "v", "under m1 again");  // {m2} ∩ {m1} = ∅ -> report
  d.release(0, "m1");
  ASSERT_EQ(d.races().size(), 1u);
  EXPECT_EQ(d.races().front().variable, "v");
  EXPECT_NE(d.races().front().explanation.find("locking discipline"), std::string::npos);
  EXPECT_TRUE(d.candidate_lockset("v").empty());
}

TEST(LocksetDetectorTest, SharedReadsAloneAreNotReported) {
  race::LocksetDetector d;
  const race::ThreadId t1 = d.fork(0);
  d.write(0, "v", "init");     // Exclusive
  d.read(t1, "v", "reader 1");  // Shared, lockset {}
  d.read(0, "v", "reader 2");
  EXPECT_TRUE(d.race_free());  // empty lockset but never Shared-Modified
  EXPECT_TRUE(d.lockset_defined("v"));
  EXPECT_TRUE(d.candidate_lockset("v").empty());
}

TEST(LocksetDetectorTest, ReleaseWithoutHoldThrows) {
  race::LocksetDetector d;
  EXPECT_THROW(d.release(0, "m"), Error);
}

TEST(LocksetDetectorTest, BarrierBlindnessIsTheDocumentedFalsePositive) {
  // The same stream into both algorithms: a write, a barrier, a write.
  // Happens-before proves it ordered; lockset cannot see the barrier.
  race::Detector hb;
  race::LocksetDetector lockset;
  for (race::EventSink* sink : {static_cast<race::EventSink*>(&hb),
                                static_cast<race::EventSink*>(&lockset)}) {
    const race::ThreadId t1 = sink->fork(0);
    sink->write(0, "cell", "round 0");
    sink->barrier({0, t1});
    sink->write(t1, "cell", "round 1");
  }
  EXPECT_TRUE(hb.race_free());
  ASSERT_FALSE(lockset.race_free());
  EXPECT_EQ(lockset.races().front().variable, "cell");
}

TEST(LocksetDetectorTest, DisagreesWithHappensBeforeOnBarrierLife) {
  // The differential check bench_race_overhead's real-thread mode
  // relies on: barrier-synchronized Life is race-free under HB and
  // flagged by lockset on the identical event stream.
  const life::Grid initial = life::Grid::random(8, 8, 0.3, 5);
  const auto hb = life::traced_life_check(initial, 2, 2, /*use_barrier=*/true);
  EXPECT_TRUE(hb.race_free);
  race::LocksetDetector lockset;
  const auto ls = life::traced_life_check_with(lockset, initial, 2, 2, /*use_barrier=*/true);
  EXPECT_FALSE(ls.race_free);
  EXPECT_EQ(hb.events, ls.events);  // identical stream, different verdicts
}

TEST(LocksetDetectorTest, AgreesWithHappensBeforeOnLockDiscipline) {
  // Where the program's discipline really is "one lock per variable",
  // the two algorithms agree in both directions.
  for (const bool locked : {false, true}) {
    race::Detector hb;
    race::LocksetDetector lockset;
    for (race::EventSink* sink : {static_cast<race::EventSink*>(&hb),
                                  static_cast<race::EventSink*>(&lockset)}) {
      const race::ThreadId t1 = sink->fork(0);
      for (const race::ThreadId t : {race::ThreadId{0}, t1}) {
        if (locked) sink->acquire(t, "m");
        sink->read(t, "counter", "load");
        sink->write(t, "counter", "store");
        if (locked) sink->release(t, "m");
      }
    }
    EXPECT_EQ(hb.race_free(), locked);
    EXPECT_EQ(lockset.race_free(), locked);
  }
}

// --- epoch-based buffer reclamation ----------------------------------

TEST(EpochReclaim, JoinedBuffersAreFreedAfterAGracePeriod) {
  TraceContext ctx;
  constexpr std::size_t kWorkers = 4;
  const NameId var = ctx.intern_var("x");
  {
    parallel::ThreadTeam team(kWorkers, ctx, [&](std::size_t) { ctx.read(var); });
    team.join();
  }
  // A retired buffer is only freed once every live thread has advanced
  // past its retirement — with the main thread still short of the last
  // retirement epoch, at least that buffer must still be held.
  EXPECT_LT(ctx.buffers_reclaimed(), kWorkers);
  ctx.flush();  // the drain advances main's epoch past every retirement
  EXPECT_EQ(ctx.buffers_reclaimed(), kWorkers);
  // Reclamation frees the buffer memory, not the accounting: the
  // retired threads' capture stats survive for buffer_stats readers.
  EXPECT_EQ(ctx.buffer_stats().size(), kWorkers + 1);
}

TEST(EpochReclaim, ScriptedForkJoinChurnReclaimsEveryBuffer) {
  TraceContext ctx;
  const NameId var = ctx.intern_var("x");
  const NameId site = ctx.intern_site("churn");
  constexpr std::uint64_t kChurn = 50;
  for (std::uint64_t i = 0; i < kChurn; ++i) {
    const ThreadId child = ctx.fork_thread(0);
    ctx.write_as(child, var, site);
    ctx.join_thread(0, child);
  }
  ctx.flush();
  EXPECT_EQ(ctx.buffers_reclaimed(), kChurn);
  // Exactly one writer at a time, joined in between: race-free.
  EXPECT_TRUE(ctx.detector().race_free());
}

TEST(EpochReclaim, RecordingAsAJoinedThreadThrows) {
  TraceContext ctx;
  const ThreadId child = ctx.fork_thread(0);
  ctx.join_thread(0, child);
  EXPECT_THROW(ctx.read_as(child, ctx.intern_var("x"), 0), cs31::Error);
}

TEST(EpochReclaim, MutexStreamModeReclaimsIdentically) {
  TraceContext::Options options;
  options.capture = CaptureMode::mutex_stream;
  TraceContext ctx(options);
  const NameId var = ctx.intern_var("x");
  for (int i = 0; i < 8; ++i) {
    const ThreadId child = ctx.fork_thread(0);
    ctx.write_as(child, var, 0);
    ctx.join_thread(0, child);
  }
  ctx.flush();
  EXPECT_EQ(ctx.buffers_reclaimed(), 8u);
}

}  // namespace
}  // namespace cs31::trace
