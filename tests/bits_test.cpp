// Unit and property tests for the bits module: two's-complement words,
// width-limited arithmetic flags, base conversion, IEEE-754 fields, and
// the C type model.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <vector>

#include "bits/convert.hpp"
#include "bits/ctypes.hpp"
#include "bits/float32.hpp"
#include "bits/integer.hpp"
#include "common/error.hpp"

namespace cs31::bits {
namespace {

TEST(Word, ConstructsAndReadsBothSignednesses) {
  const Word w(0xFF, 8);
  EXPECT_EQ(w.as_unsigned(), 255u);
  EXPECT_EQ(w.as_signed(), -1);
  EXPECT_TRUE(w.msb());
}

TEST(Word, RejectsBadWidthAndOverflowingPattern) {
  EXPECT_THROW(Word(0, 0), Error);
  EXPECT_THROW(Word(0, 65), Error);
  EXPECT_THROW(Word(0x100, 8), Error);
  EXPECT_NO_THROW(Word(0xFF, 8));
}

TEST(Word, FromSignedChecksRange) {
  EXPECT_EQ(Word::from_signed(-128, 8).as_unsigned(), 0x80u);
  EXPECT_EQ(Word::from_signed(127, 8).as_unsigned(), 0x7Fu);
  EXPECT_THROW(Word::from_signed(128, 8), Error);
  EXPECT_THROW(Word::from_signed(-129, 8), Error);
}

TEST(Word, FromUnsignedChecksRange) {
  EXPECT_EQ(Word::from_unsigned(255, 8).as_unsigned(), 255u);
  EXPECT_THROW(Word::from_unsigned(256, 8), Error);
}

TEST(Word, SignExtensionReplicatesTopBit) {
  const Word neg = Word::from_signed(-5, 8);
  EXPECT_EQ(neg.sign_extend(16).as_signed(), -5);
  EXPECT_EQ(neg.sign_extend(16).as_unsigned(), 0xFFFBu);
  const Word pos = Word::from_signed(5, 8);
  EXPECT_EQ(pos.sign_extend(16).as_unsigned(), 5u);
}

TEST(Word, ZeroExtensionKeepsPattern) {
  const Word w(0xFF, 8);
  EXPECT_EQ(w.zero_extend(16).as_unsigned(), 0xFFu);
  EXPECT_EQ(w.zero_extend(16).as_signed(), 255);
}

TEST(Word, TruncationIsNarrowingCast) {
  const Word w(0x1FF, 16);
  EXPECT_EQ(w.truncate(8).as_unsigned(), 0xFFu);
  EXPECT_THROW((void)w.truncate(17), Error);
}

TEST(Word, BitAccess) {
  const Word w(0b1010, 4);
  EXPECT_FALSE(w.bit(0));
  EXPECT_TRUE(w.bit(1));
  EXPECT_FALSE(w.bit(2));
  EXPECT_TRUE(w.bit(3));
  EXPECT_THROW((void)w.bit(4), Error);
  EXPECT_THROW((void)w.bit(-1), Error);
}

TEST(Arith, AddSetsCarryOnUnsignedOverflow) {
  const ArithResult r = add(Word(0xFF, 8), Word(1, 8));
  EXPECT_EQ(r.pattern, 0u);
  EXPECT_TRUE(r.flags.carry);
  EXPECT_TRUE(r.flags.zero);
  EXPECT_FALSE(r.flags.overflow);  // -1 + 1 = 0 is fine in signed terms
}

TEST(Arith, AddSetsOverflowOnSignedOverflow) {
  const ArithResult r = add(Word(0x7F, 8), Word(1, 8));  // 127 + 1
  EXPECT_EQ(r.pattern, 0x80u);
  EXPECT_TRUE(r.flags.overflow);
  EXPECT_FALSE(r.flags.carry);
  EXPECT_TRUE(r.flags.sign);
}

TEST(Arith, SubBorrow) {
  const ArithResult r = sub(Word(0, 8), Word(1, 8));
  EXPECT_EQ(r.pattern, 0xFFu);
  EXPECT_TRUE(r.flags.carry);  // borrow
  EXPECT_TRUE(r.flags.sign);
}

TEST(Arith, SubSignedOverflow) {
  // -128 - 1 overflows at 8 bits.
  const ArithResult r = sub(Word(0x80, 8), Word(1, 8));
  EXPECT_EQ(r.pattern, 0x7Fu);
  EXPECT_TRUE(r.flags.overflow);
}

TEST(Arith, WidthMismatchThrows) {
  EXPECT_THROW((void)add(Word(0, 8), Word(0, 16)), Error);
  EXPECT_THROW((void)sub(Word(0, 8), Word(0, 16)), Error);
}

TEST(Arith, NegateMinValueOverflows) {
  const ArithResult r = Word(0x80, 8).negate();
  EXPECT_EQ(r.pattern, 0x80u);  // -(-128) == -128 at 8 bits
  EXPECT_TRUE(r.flags.overflow);
}

TEST(Arith, Width64CarryDetection) {
  const Word max64 = Word::from_unsigned(~std::uint64_t{0}, 64);
  const ArithResult r = add(max64, Word(1, 64));
  EXPECT_EQ(r.pattern, 0u);
  EXPECT_TRUE(r.flags.carry);
}

// Property sweep: at every width, signed arithmetic through Word matches
// host arithmetic whenever the true result is representable, and flags
// report exactly the unrepresentable cases.
class ArithProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArithProperty, AddMatchesHostWhenRepresentable) {
  const int w = GetParam();
  const std::int64_t lo = min_signed(w), hi = max_signed(w);
  // Walk a grid of interesting values at this width.
  std::vector<std::int64_t> samples;
  for (const std::int64_t v : {lo, lo + 1, std::int64_t{-2}, std::int64_t{-1},
                               std::int64_t{0}, std::int64_t{1}, std::int64_t{2},
                               hi - 1, hi}) {
    if (v >= lo && v <= hi) samples.push_back(v);
  }
  for (const std::int64_t a : samples) {
    for (const std::int64_t b : samples) {
      const ArithResult r = add(Word::from_signed(a, w), Word::from_signed(b, w));
      const std::int64_t true_sum = a + b;  // samples are small enough at w<=62
      const bool representable = true_sum >= lo && true_sum <= hi;
      EXPECT_EQ(r.flags.overflow, !representable) << "w=" << w << " a=" << a << " b=" << b;
      if (representable) {
        EXPECT_EQ(Word(r.pattern, w).as_signed(), true_sum)
            << "w=" << w << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST_P(ArithProperty, SubIsAddOfNegation) {
  const int w = GetParam();
  std::vector<std::int64_t> samples;
  for (const std::int64_t v :
       {min_signed(w), std::int64_t{-3}, std::int64_t{0}, std::int64_t{1}, max_signed(w)}) {
    if (v >= min_signed(w) && v <= max_signed(w)) samples.push_back(v);
  }
  for (const std::int64_t a : samples) {
    for (const std::int64_t b : samples) {
      const Word wa = Word::from_signed(a, w), wb = Word::from_signed(b, w);
      const ArithResult d = sub(wa, wb);
      // a - b and a + (-b) agree bit-for-bit (mod 2^w).
      const std::uint64_t expected =
          (wa.pattern() + (~wb.pattern() + 1)) & low_mask(w);
      EXPECT_EQ(d.pattern, expected) << "w=" << w << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(ArithProperty, RangesAreConsistent) {
  const int w = GetParam();
  EXPECT_EQ(static_cast<std::uint64_t>(max_signed(w)) * 2 + 1, max_unsigned(w));
  EXPECT_EQ(min_signed(w), -max_signed(w) - 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithProperty,
                         ::testing::Values(2, 3, 4, 7, 8, 12, 16, 24, 31, 32, 48, 62));

TEST(Convert, BinaryRendering) {
  EXPECT_EQ(to_binary(0b1010, 4), "1010");
  EXPECT_EQ(to_binary(1, 8), "00000001");
  EXPECT_EQ(to_binary_grouped(0xAB, 8), "1010 1011");
  EXPECT_EQ(to_binary_grouped(0x15, 6), "01 0101");
}

TEST(Convert, HexRendering) {
  EXPECT_EQ(to_hex(0xDEADBEEF, 32), "0xdeadbeef");
  EXPECT_EQ(to_hex(0x5, 6), "0x05");  // rounds up to whole nibbles
}

TEST(Convert, ParseBinary) {
  EXPECT_EQ(parse_binary("1010"), 10u);
  EXPECT_EQ(parse_binary("0b1010"), 10u);
  EXPECT_EQ(parse_binary("10 10"), 10u);
  EXPECT_THROW((void)parse_binary(""), Error);
  EXPECT_THROW((void)parse_binary("102"), Error);
  EXPECT_THROW((void)parse_binary(std::string(65, '1')), Error);
}

TEST(Convert, ParseHex) {
  EXPECT_EQ(parse_hex("0xFF"), 255u);
  EXPECT_EQ(parse_hex("ff"), 255u);
  EXPECT_EQ(parse_hex("DeadBeef"), 0xDEADBEEFu);
  EXPECT_THROW((void)parse_hex("0xG"), Error);
  EXPECT_THROW((void)parse_hex("11112222333344445"), Error);
}

TEST(Convert, ParseDecimalSignedAndUnsigned) {
  EXPECT_EQ(parse_decimal("255", 8).as_unsigned(), 255u);
  EXPECT_EQ(parse_decimal("-1", 8).as_unsigned(), 0xFFu);
  EXPECT_EQ(parse_decimal("-128", 8).as_signed(), -128);
  EXPECT_THROW((void)parse_decimal("-129", 8), Error);
  EXPECT_THROW((void)parse_decimal("256", 8), Error);
  EXPECT_THROW((void)parse_decimal("12a", 8), Error);
  EXPECT_THROW((void)parse_decimal("", 8), Error);
}

TEST(Convert, RoundTripsAcrossBases) {
  for (const std::uint64_t v : {0ull, 1ull, 0x7Full, 0x80ull, 0xFFull}) {
    EXPECT_EQ(parse_binary(to_binary(v, 8)), v);
    EXPECT_EQ(parse_hex(to_hex(v, 8)), v);
  }
}

TEST(Convert, ConversionRowMatchesHomeworkExample) {
  // The homework's canonical example: 0xA3 as an 8-bit value.
  const ConversionRow row = conversion_row(Word(0xA3, 8));
  EXPECT_EQ(row.binary, "1010 0011");
  EXPECT_EQ(row.hex, "0xa3");
  EXPECT_EQ(row.as_unsigned, 163u);
  EXPECT_EQ(row.as_signed, -93);
}

TEST(Float32, DecomposesOne) {
  const Float32Fields f = decompose(1.0f);
  EXPECT_FALSE(f.sign);
  EXPECT_EQ(f.exponent, 127u);
  EXPECT_EQ(f.fraction, 0u);
  EXPECT_EQ(f.cls, FloatClass::Normal);
  EXPECT_EQ(f.unbiased_exponent(), 0);
  EXPECT_DOUBLE_EQ(value_of(f), 1.0);
}

TEST(Float32, ClassifiesSpecials) {
  EXPECT_EQ(decompose(0.0f).cls, FloatClass::Zero);
  EXPECT_EQ(decompose(0x80000000u).cls, FloatClass::Zero);  // -0
  EXPECT_EQ(decompose(0x7F800000u).cls, FloatClass::Infinity);
  EXPECT_EQ(decompose(0x7F800001u).cls, FloatClass::NaN);
  EXPECT_EQ(decompose(0x00000001u).cls, FloatClass::Denormal);
}

TEST(Float32, ValueMatchesBitCastForSamples) {
  const float samples[] = {0.5f, -2.75f, 100.0f, 3.14159f, 1e-20f, -1e20f};
  for (const float v : samples) {
    EXPECT_NEAR(value_of(decompose(v)), static_cast<double>(v),
                std::abs(static_cast<double>(v)) * 1e-7);
  }
}

TEST(Float32, ComposeRoundTrips) {
  const std::uint32_t pattern = std::bit_cast<std::uint32_t>(-2.5f);
  const Float32Fields f = decompose(pattern);
  EXPECT_EQ(compose(f.sign, f.exponent, f.fraction), pattern);
  EXPECT_THROW((void)compose(false, 256, 0), Error);
  EXPECT_THROW((void)compose(false, 0, 1u << 23), Error);
}

// Property sweep: for every exponent value and a band of fractions, the
// textbook-formula value agrees with the hardware bit-cast reading.
class Float32Sweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Float32Sweep, FormulaMatchesHardwareAcrossAllExponents) {
  const std::uint32_t fraction = GetParam();
  for (std::uint32_t exponent = 0; exponent <= 0xFF; ++exponent) {
    for (const bool sign : {false, true}) {
      const std::uint32_t pattern = compose(sign, exponent, fraction);
      const Float32Fields f = decompose(pattern);
      const float hw = std::bit_cast<float>(pattern);
      if (f.cls == FloatClass::NaN) {
        EXPECT_NE(hw, hw) << "hardware agrees it is NaN";
        EXPECT_NE(value_of(f), value_of(f));
        continue;
      }
      EXPECT_EQ(value_of(f), static_cast<double>(hw))
          << "sign=" << sign << " exp=" << exponent << " frac=" << fraction;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FractionBand, Float32Sweep,
                         ::testing::Values(0u, 1u, 0x400000u, 0x7FFFFFu, 0x155555u));

TEST(Float32, DescribeMentionsClass) {
  EXPECT_NE(describe(decompose(1.5f)).find("normal"), std::string::npos);
  EXPECT_NE(describe(decompose(0.0f)).find("zero"), std::string::npos);
}

TEST(CTypes, SizesMatchCourseMachines) {
  EXPECT_EQ(ctype_info(CType::Int).size_bytes, 4);
  EXPECT_EQ(ctype_info(CType::Char).size_bytes, 1);
  EXPECT_EQ(ctype_info(CType::Long).size_bytes, 8);
  EXPECT_EQ(ctype_info(CType::Pointer).size_bytes, 8);
}

TEST(CTypes, RangesMatchTwoComplement) {
  EXPECT_EQ(ctype_min(CType::Int), -2147483648ll);
  EXPECT_EQ(ctype_max(CType::Int), 2147483647ull);
  EXPECT_EQ(ctype_min(CType::UnsignedChar), 0);
  EXPECT_EQ(ctype_max(CType::UnsignedChar), 255ull);
  EXPECT_THROW((void)ctype_min(CType::Float), Error);
}

TEST(CTypes, IncrementWrapsAtTypeMax) {
  // Lab 1's demonstration: INT_MAX + 1 wraps to INT_MIN.
  const Word max_int = Word::from_signed(2147483647, 32);
  const Word wrapped = ctype_increment(CType::Int, max_int);
  EXPECT_EQ(wrapped.as_signed(), -2147483648ll);
  EXPECT_THROW((void)ctype_increment(CType::Int, Word(0, 8)), Error);
}

TEST(CTypes, TableListsEveryType) {
  const std::string table = ctype_table();
  for (const CTypeInfo& info : all_ctypes()) {
    EXPECT_NE(table.find(info.name), std::string::npos) << info.name;
  }
}

}  // namespace
}  // namespace cs31::bits
