// Property tests for the teaching instruction encoding: randomized
// encode/decode round trips over the full operand space, and robustness
// of the decoder against arbitrary byte patterns (it must either decode
// or throw — never crash or read out of bounds).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/ia32.hpp"

namespace cs31::isa {
namespace {

struct Rng {
  std::uint32_t state;
  std::uint32_t next(std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  }
};

Operand random_operand(Rng& rng) {
  switch (rng.next(4)) {
    case 0: return Operand::none();
    case 1: return Operand::immediate(static_cast<std::int32_t>(rng.next(0xFFFFFF)) - 0x7FFFFF);
    case 2: return Operand::of_reg(static_cast<Reg>(rng.next(8)));
    default: {
      MemRef m;
      m.disp = static_cast<std::int32_t>(rng.next(0x10000)) - 0x8000;
      if (rng.next(2)) m.base = static_cast<Reg>(rng.next(8));
      if (rng.next(2)) m.index = static_cast<Reg>(rng.next(8));
      static constexpr std::uint8_t kScales[] = {1, 2, 4, 8};
      m.scale = kScales[rng.next(4)];
      if (!m.base && !m.index) m.base = Reg::Eax;  // memory needs a register
      return Operand::memory(m);
    }
  }
}

class EncodingFuzz : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EncodingFuzz, RandomInstructionsRoundTrip) {
  Rng rng{GetParam() | 1u};
  for (int trial = 0; trial < 500; ++trial) {
    Instruction ins;
    ins.op = static_cast<Mnemonic>(rng.next(static_cast<std::uint32_t>(Mnemonic::Hlt) + 1));
    const bool is_jump =
        (ins.op >= Mnemonic::Jmp && ins.op <= Mnemonic::Jns) || ins.op == Mnemonic::Call;
    if (is_jump) {
      ins.target = rng.next(0x100000);
    } else {
      ins.src = random_operand(rng);
      ins.dst = random_operand(rng);
    }
    const std::vector<std::uint8_t> bytes = encode(ins);
    ASSERT_EQ(bytes.size(), kInstrBytes);
    const Instruction back = decode(bytes.data());
    ASSERT_EQ(back, ins) << to_string(ins);
    // And the re-encode is byte-identical (canonical form).
    ASSERT_EQ(encode(back), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingFuzz, ::testing::Values(1u, 2u, 3u, 4u));

TEST(EncodingRobustness, ArbitraryBytesDecodeOrThrowCleanly) {
  Rng rng{777};
  std::uint8_t bytes[kInstrBytes];
  int decoded = 0, rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    for (std::uint8_t& b : bytes) b = static_cast<std::uint8_t>(rng.next(256));
    try {
      const Instruction ins = decode(bytes);
      (void)to_string(ins);  // rendering must also be safe
      ++decoded;
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(decoded + rejected, 2000);
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 0) << "bad opcodes/registers must be rejected";
}

TEST(EncodingRobustness, NullDecodeThrows) {
  EXPECT_THROW((void)decode(nullptr), Error);
}

TEST(Encoding, ToStringCoversEveryMnemonic) {
  for (unsigned op = 0; op <= static_cast<unsigned>(Mnemonic::Hlt); ++op) {
    Instruction ins;
    ins.op = static_cast<Mnemonic>(op);
    ins.src = Operand::of_reg(Reg::Eax);
    ins.dst = Operand::of_reg(Reg::Ebx);
    EXPECT_FALSE(to_string(ins).empty()) << op;
    EXPECT_FALSE(mnemonic_name(ins.op).empty()) << op;
  }
}

}  // namespace
}  // namespace cs31::isa
