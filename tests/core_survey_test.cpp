// Curriculum-model (Table I) and survey-simulator (Figure 1) tests:
// full TCPP coverage, topic lookups, and the shape properties the paper
// reports for the survey results.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "core/curriculum.hpp"
#include "survey/survey.hpp"

namespace cs31 {
namespace {

using core::Curriculum;
using core::Emphasis;
using core::TcppCategory;

TEST(Curriculum, HasAllFourTcppCategories) {
  const Curriculum& c = Curriculum::cs31();
  for (const TcppCategory cat :
       {TcppCategory::Pervasive, TcppCategory::Architecture, TcppCategory::Programming,
        TcppCategory::Algorithms}) {
    EXPECT_FALSE(c.topics_in(cat).empty()) << core::category_name(cat);
  }
  // Table I's counts: 4 pervasive topics, 14 architecture, 11
  // programming, 6 algorithms.
  EXPECT_EQ(c.topics_in(TcppCategory::Pervasive).size(), 4u);
  EXPECT_EQ(c.topics_in(TcppCategory::Architecture).size(), 14u);
  EXPECT_EQ(c.topics_in(TcppCategory::Programming).size(), 11u);
  EXPECT_EQ(c.topics_in(TcppCategory::Algorithms).size(), 6u);
}

TEST(Curriculum, EveryTopicIsCoveredBySomeModule) {
  EXPECT_TRUE(Curriculum::cs31().uncovered_topics().empty());
}

TEST(Curriculum, KeyTopicLookups) {
  const Curriculum& c = Curriculum::cs31();
  EXPECT_EQ(c.topic("pthreads").category, TcppCategory::Programming);
  EXPECT_EQ(c.topic("pthreads").emphasis, Emphasis::Emphasize);
  EXPECT_EQ(c.topic("Amdahl's Law").emphasis, Emphasis::Mention)
      << "the paper defers the deeper Amdahl dive to upper-level courses";
  EXPECT_THROW((void)c.topic("quantum computing"), Error);
}

TEST(Curriculum, CoverageTracesToModulesAndLabs) {
  const Curriculum& c = Curriculum::cs31();
  const auto caching_modules = c.covering_modules("caching");
  ASSERT_FALSE(caching_modules.empty());
  EXPECT_NE(std::find(caching_modules.begin(), caching_modules.end(),
                      "Memory Hierarchy & Caching"),
            caching_modules.end());
  const auto pthread_labs = c.covering_labs("pthreads");
  EXPECT_NE(std::find(pthread_labs.begin(), pthread_labs.end(), 10), pthread_labs.end())
      << "Lab 10 is the pthreads lab";
}

TEST(Curriculum, ElevenLabsAndTwelveHomeworks) {
  const Curriculum& c = Curriculum::cs31();
  EXPECT_EQ(c.labs().size(), 11u);  // Lab 0 .. Lab 10
  EXPECT_EQ(c.homeworks().size(), 12u);
  EXPECT_EQ(c.labs().front().number, 0);
  EXPECT_EQ(c.labs().back().number, 10);
}

TEST(Curriculum, Table1RendersEveryCategoryAndTopic) {
  const std::string table = Curriculum::cs31().render_table1();
  EXPECT_NE(table.find("Pervasive"), std::string::npos);
  EXPECT_NE(table.find("Algorithms"), std::string::npos);
  EXPECT_NE(table.find("pthreads"), std::string::npos);
  EXPECT_NE(table.find("Amdahl's Law"), std::string::npos);
}

TEST(Curriculum, ScheduleFollowsThePaperArcAndIsConsistent) {
  const Curriculum& c = Curriculum::cs31();
  const auto& weeks = c.schedule();
  ASSERT_EQ(weeks.size(), 14u);
  // Week numbers are 1..14 in order.
  for (std::size_t i = 0; i < weeks.size(); ++i) {
    EXPECT_EQ(weeks[i].number, static_cast<int>(i + 1));
  }
  // Every scheduled module exists, and they appear in the paper's arc:
  // binary before C before architecture before memory before OS before
  // parallelism.
  auto first_week_of = [&](const std::string& module) {
    for (const core::Week& w : weeks) {
      if (w.module == module) return w.number;
    }
    ADD_FAILURE() << module << " not scheduled";
    return -1;
  };
  EXPECT_LT(first_week_of("Binary Representation"), first_week_of("C Programming"));
  EXPECT_LT(first_week_of("C Programming"), first_week_of("Assembly Programming"));
  EXPECT_LT(first_week_of("Assembly Programming"),
            first_week_of("Memory Hierarchy & Caching"));
  EXPECT_LT(first_week_of("Memory Hierarchy & Caching"),
            first_week_of("Operating Systems"));
  EXPECT_LT(first_week_of("Operating Systems"),
            first_week_of("Shared Memory Parallelism"));
  // Every lab 0..10 is due exactly once; every homework appears.
  std::vector<int> lab_due_counts(11, 0);
  for (const core::Week& w : weeks) {
    if (w.lab_due >= 0) {
      ASSERT_LT(w.lab_due, 11);
      ++lab_due_counts[static_cast<std::size_t>(w.lab_due)];
    }
    if (!w.module.empty()) {
      bool found = false;
      for (const core::CourseModule& m : c.modules()) found = found || m.name == w.module;
      EXPECT_TRUE(found) << w.module;
    }
    if (!w.homework.empty()) {
      bool found = false;
      for (const core::Homework& h : c.homeworks()) found = found || h.title == w.homework;
      EXPECT_TRUE(found) << w.homework;
    }
  }
  for (int lab = 0; lab <= 10; ++lab) {
    EXPECT_EQ(lab_due_counts[static_cast<std::size_t>(lab)], 1) << "lab " << lab;
  }
}

TEST(Survey, Figure1TopicsExistInCurriculum) {
  const auto topics = survey::figure1_topics();
  EXPECT_GE(topics.size(), 17u) << "Figure 1 plots a broad PDC topic set";
  for (const auto& t : topics) {
    EXPECT_NO_THROW((void)Curriculum::cs31().topic(t.name)) << t.name;
  }
}

TEST(Survey, RatingModelRespectsScaleAndDecay) {
  using survey::rate_topic;
  for (const Emphasis e : {Emphasis::Mention, Emphasis::Cover, Emphasis::Emphasize}) {
    for (const double ability : {-1.0, 0.0, 1.0}) {
      for (const unsigned ago : {0u, 2u, 4u}) {
        const unsigned r = rate_topic(e, ability, ago, 0.2, 0.0);
        EXPECT_LE(r, 4u);
      }
    }
  }
  // Decay is monotone.
  EXPECT_GE(rate_topic(Emphasis::Emphasize, 0, 0, 0.3, 0),
            rate_topic(Emphasis::Emphasize, 0, 4, 0.3, 0));
  // Emphasis is monotone.
  EXPECT_GE(rate_topic(Emphasis::Emphasize, 0, 1, 0.2, 0),
            rate_topic(Emphasis::Mention, 0, 1, 0.2, 0));
  EXPECT_THROW((void)survey::rate_topic(Emphasis::Cover, 2.0, 0, 0.1, 0), Error);
}

TEST(Survey, SimulationReproducesFigure1Shape) {
  const auto topics = survey::figure1_topics();
  const auto results = survey::simulate(topics);
  ASSERT_EQ(results.size(), topics.size());

  double heavy_sum = 0, light_sum = 0;
  int heavy_n = 0, light_n = 0;
  for (std::size_t i = 0; i < topics.size(); ++i) {
    // The paper: "students recognized all of these topics" — averages
    // stay at or above recognition level (1).
    EXPECT_GE(results[i].average, 1.0) << topics[i].name;
    EXPECT_LE(results[i].average, 4.0);
    EXPECT_GE(results[i].median, results[i].average - 1.0);
    // Histogram accounts for every respondent.
    unsigned total = 0;
    for (const unsigned h : results[i].histogram) total += h;
    EXPECT_EQ(total, 300u);  // 60 x 5 semesters
    if (topics[i].emphasis == Emphasis::Emphasize) {
      heavy_sum += results[i].average;
      ++heavy_n;
    }
    if (topics[i].emphasis == Emphasis::Mention) {
      light_sum += results[i].average;
      ++light_n;
    }
  }
  ASSERT_GT(heavy_n, 0);
  ASSERT_GT(light_n, 0);
  // "Topics that CS 31 emphasizes heavily ... rate their understanding
  // at deeper levels."
  EXPECT_GT(heavy_sum / heavy_n, light_sum / light_n + 0.5);
  // Heavily-emphasized topics approach the analyze/apply levels.
  EXPECT_GT(heavy_sum / heavy_n, 2.5);
}

TEST(Survey, SimulationIsDeterministicPerSeed) {
  const auto topics = survey::figure1_topics();
  survey::CohortConfig cfg;
  const auto a = survey::simulate(topics, cfg);
  const auto b = survey::simulate(topics, cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].average, b[i].average);
    EXPECT_DOUBLE_EQ(a[i].median, b[i].median);
  }
  cfg.seed = 777;
  const auto c = survey::simulate(topics, cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].average != c[i].average;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Survey, RetentionLossLowersAverages) {
  const auto topics = survey::figure1_topics();
  survey::CohortConfig none;
  none.retention_loss_per_semester = 0.0;
  survey::CohortConfig heavy;
  heavy.retention_loss_per_semester = 0.5;
  const auto fresh = survey::simulate(topics, none);
  const auto faded = survey::simulate(topics, heavy);
  double fresh_mean = 0, faded_mean = 0;
  for (std::size_t i = 0; i < topics.size(); ++i) {
    fresh_mean += fresh[i].average;
    faded_mean += faded[i].average;
  }
  EXPECT_GT(fresh_mean, faded_mean);
}

TEST(Survey, RenderShowsEveryTopicRow) {
  const auto results = survey::simulate(survey::figure1_topics());
  const std::string chart = survey::render_figure1(results);
  EXPECT_NE(chart.find("Figure 1"), std::string::npos);
  EXPECT_NE(chart.find("pthreads"), std::string::npos);
  EXPECT_NE(chart.find("avg"), std::string::npos);
  EXPECT_NE(chart.find("med"), std::string::npos);
}

TEST(Survey, ValidationErrors) {
  EXPECT_THROW((void)survey::simulate({}), Error);
  survey::CohortConfig cfg;
  cfg.students_per_semester = 0;
  EXPECT_THROW((void)survey::simulate(survey::figure1_topics(), cfg), Error);
}

}  // namespace
}  // namespace cs31
