// Machine (emulator) tests: arithmetic and flag semantics cross-checked
// against host 32-bit arithmetic, addressing modes, the stack
// discipline, call/ret/leave frames, and all conditional jumps.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"
#include "isa/machine.hpp"

namespace cs31::isa {
namespace {

/// Assemble, load, run to halt, and hand back the machine.
Machine run_source(const std::string& src, std::size_t max_steps = 100000) {
  Machine m;
  m.load(assemble(src));
  m.run(max_steps);
  return m;
}

TEST(Machine, MovAndArithmetic) {
  const Machine m = run_source(R"(
    movl $20, %eax
    movl $22, %ebx
    addl %ebx, %eax
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Eax), 42u);
}

TEST(Machine, ImulSignedMultiply) {
  const Machine m = run_source(R"(
    movl $-6, %eax
    movl $7, %ebx
    imull %ebx, %eax
    hlt
)");
  EXPECT_EQ(static_cast<std::int32_t>(m.reg(Reg::Eax)), -42);
}

// Flag semantics sweep: cmp against host comparison for signed and
// unsigned relations, across a grid of interesting values.
class CmpFlags : public ::testing::TestWithParam<std::pair<std::int32_t, std::int32_t>> {};

TEST_P(CmpFlags, ConditionCodesMatchHostComparisons) {
  const auto [a, b] = GetParam();
  Machine m;
  m.load(assemble("cmpl $" + std::to_string(b) + ", %eax\nhlt\n"));
  m.set_reg(Reg::Eax, static_cast<std::uint32_t>(a));
  m.run();
  const Eflags f = m.flags();
  const std::uint32_t ua = static_cast<std::uint32_t>(a), ub = static_cast<std::uint32_t>(b);
  EXPECT_EQ(f.zf, a == b);
  EXPECT_EQ(f.cf, ua < ub);                 // unsigned below
  EXPECT_EQ(f.sf != f.of, a < b);           // signed less-than identity
  EXPECT_EQ(!f.zf && f.sf == f.of, a > b);  // signed greater-than identity
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CmpFlags,
    ::testing::Values(std::pair{0, 0}, std::pair{1, 2}, std::pair{2, 1},
                      std::pair{-1, 1}, std::pair{1, -1}, std::pair{-5, -3},
                      std::pair{-3, -5}, std::pair{2147483647, -2147483648},
                      std::pair{-2147483648, 2147483647}, std::pair{-1, -1}));

TEST(Machine, ConditionalJumpsFollowFlags) {
  // Signed vs unsigned comparison: -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
  const Machine m = run_source(R"(
    movl $-1, %eax
    cmpl $1, %eax
    jl signed_less
    movl $0, %ebx
    jmp unsigned_part
signed_less:
    movl $1, %ebx
unsigned_part:
    movl $-1, %eax
    cmpl $1, %eax
    ja unsigned_above
    movl $0, %ecx
    hlt
unsigned_above:
    movl $1, %ecx
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Ebx), 1u) << "-1 < 1 signed";
  EXPECT_EQ(m.reg(Reg::Ecx), 1u) << "0xffffffff > 1 unsigned";
}

TEST(Machine, AddressingModes) {
  Machine m;
  m.load(assemble(R"(
    movl $0x2000, %eax
    movl $2, %ebx
    movl $7, 0(%eax)
    movl $8, 4(%eax)
    movl $9, 8(%eax)
    movl (%eax,%ebx,4), %ecx   # mem[0x2000 + 2*4] = 9
    movl 4(%eax), %edx
    hlt
)"));
  m.run();
  EXPECT_EQ(m.reg(Reg::Ecx), 9u);
  EXPECT_EQ(m.reg(Reg::Edx), 8u);
  EXPECT_EQ(m.load32(0x2000), 7u);
}

TEST(Machine, LeaComputesWithoutMemoryAccess) {
  const Machine m = run_source(R"(
    movl $0x10, %eax
    movl $3, %ebx
    leal 5(%eax,%ebx,2), %ecx
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Ecx), 0x10u + 3 * 2 + 5);
}

TEST(Machine, PushPopStackDiscipline) {
  Machine m;
  m.load(assemble(R"(
    movl $11, %eax
    movl $22, %ebx
    pushl %eax
    pushl %ebx
    popl %ecx
    popl %edx
    hlt
)"));
  const std::uint32_t esp0 = 0;  // captured after load below
  m.run();
  EXPECT_EQ(m.reg(Reg::Ecx), 22u) << "LIFO order";
  EXPECT_EQ(m.reg(Reg::Edx), 11u);
  (void)esp0;
  // Balanced pushes/pops restore ESP to the load-time top.
  Machine fresh;
  fresh.load(assemble("hlt\n"));
  EXPECT_EQ(m.reg(Reg::Esp), fresh.reg(Reg::Esp));
}

TEST(Machine, CallRetAndFramePointerDiscipline) {
  // The canonical prologue/epilogue the course traces for a week.
  const Machine m = run_source(R"(
main:
    movl $5, %eax
    pushl %eax          # argument
    call square
    addl $4, %esp       # caller cleans up
    hlt
square:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %ebx  # the argument
    imull %ebx, %ebx
    movl %ebx, %eax
    leave
    ret
)");
  EXPECT_EQ(m.reg(Reg::Eax), 25u);
}

TEST(Machine, NestedCallsReturnCorrectly) {
  const Machine m = run_source(R"(
main:
    call f
    hlt
f:
    pushl %ebp
    movl %esp, %ebp
    call g
    addl $1, %eax
    leave
    ret
g:
    movl $10, %eax
    ret
)");
  EXPECT_EQ(m.reg(Reg::Eax), 11u);
}

TEST(Machine, RetFromOutermostFrameHalts) {
  Machine m;
  m.load(assemble("movl $1, %eax\nret\n"));
  m.run();
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.reg(Reg::Eax), 1u);
}

TEST(Machine, ShiftsSetCarryFromShiftedBit) {
  const Machine m = run_source(R"(
    movl $1, %eax
    shll $31, %eax      # eax = 0x80000000
    sarl $31, %eax      # arithmetic: eax = -1
    movl $1, %ebx
    shrl $1, %ebx       # logical: CF gets the 1
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Eax), 0xFFFFFFFFu);
  EXPECT_TRUE(m.flags().cf);
}

TEST(Machine, IncDecPreserveCarry) {
  Machine m;
  m.load(assemble(R"(
    movl $-1, %eax
    addl $1, %eax       # sets CF
    incl %ebx           # must not clear CF
    hlt
)"));
  m.run();
  EXPECT_TRUE(m.flags().cf);
}

TEST(Machine, TestAndCmpDoNotWriteOperands) {
  const Machine m = run_source(R"(
    movl $7, %eax
    testl %eax, %eax
    cmpl $3, %eax
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Eax), 7u);
}

TEST(Machine, SegfaultOnWildAccess) {
  Machine m(4096);
  m.load(assemble("movl $100000, %eax\nmovl (%eax), %ebx\nhlt\n", 0));
  EXPECT_THROW(m.run(), Error);
}

TEST(Machine, EipOutsideImageThrows) {
  Machine m;
  m.load(assemble("nop\nnop\n"));  // falls off the end
  EXPECT_THROW(m.run(), Error);
}

TEST(Machine, WritingToImmediateThrows) {
  Machine m;
  m.load(assemble("movl %eax, $5\nhlt\n"));
  EXPECT_THROW(m.run(), Error);
}

TEST(Machine, StartSymbolSelectsEntryPoint) {
  Machine m;
  m.load(assemble("helper:\n  hlt\n_start:\n  movl $9, %eax\n  hlt\n"));
  m.run();
  EXPECT_EQ(m.reg(Reg::Eax), 9u);
}

TEST(Machine, RunawayGuardThrows) {
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  EXPECT_THROW(m.run(1000), Error);
}

TEST(Machine, TooSmallMemoryRejected) {
  EXPECT_THROW(Machine(100), Error);
}

// --- run_limited: the grading service's resource budgets ---------------

TEST(RunLimited, HaltedWellUnderBothLimits) {
  Machine m;
  m.load(assemble("movl $5, %eax\n  hlt\n"));
  const auto outcome = m.run_limited({1000, 10.0});
  EXPECT_EQ(outcome.reason, Machine::StopReason::Halted);
  EXPECT_EQ(outcome.instructions, 2u);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.reg(Reg::Eax), 5u);
}

TEST(RunLimited, InstructionLimitIsAnOutcomeNotAnException) {
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  const auto outcome = m.run_limited({1000, 0.0});
  EXPECT_EQ(outcome.reason, Machine::StopReason::InstructionLimit);
  EXPECT_EQ(outcome.instructions, 1000u);
  EXPECT_FALSE(m.halted());
}

TEST(RunLimited, WallClockLimitStopsARunawayLoop) {
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  // No instruction limit at all: only the wall clock can stop this.
  const auto outcome = m.run_limited({0, 0.05});
  EXPECT_EQ(outcome.reason, Machine::StopReason::TimeLimit);
  EXPECT_FALSE(m.halted());
}

TEST(RunLimited, InstructionLimitBindsBeforeAGenerousWallClock) {
  // The grading service's configuration: a deterministic instruction
  // budget far below a generous wall-clock backstop must be the limit
  // that fires, or report streams would depend on machine load.
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  const auto outcome = m.run_limited({5000, 60.0});
  EXPECT_EQ(outcome.reason, Machine::StopReason::InstructionLimit);
  EXPECT_EQ(outcome.instructions, 5000u);
}

TEST(RunLimited, BothLimitsZeroRejected) {
  Machine m;
  m.load(assemble("hlt\n"));
  EXPECT_THROW(m.run_limited({0, 0.0}), Error);
}

TEST(RunLimited, ResumableAfterALimitStop) {
  // A limited run leaves the machine in a valid paused state: granting
  // more budget continues from where it stopped.
  Machine m;
  m.load(assemble("movl $0, %eax\nloop:\n  incl %eax\n  cmpl $100, %eax\n  jne loop\n  hlt\n"));
  const auto first = m.run_limited({10, 0.0});
  EXPECT_EQ(first.reason, Machine::StopReason::InstructionLimit);
  const auto rest = m.run_limited({100000, 0.0});
  EXPECT_EQ(rest.reason, Machine::StopReason::Halted);
  EXPECT_EQ(m.reg(Reg::Eax), 100u);
}

}  // namespace
}  // namespace cs31::isa
