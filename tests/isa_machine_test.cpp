// Machine (emulator) tests: arithmetic and flag semantics cross-checked
// against host 32-bit arithmetic, addressing modes, the stack
// discipline, call/ret/leave frames, and all conditional jumps.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analyze/cfg.hpp"
#include "common/error.hpp"
#include "isa/machine.hpp"
#include "isa/maze.hpp"
#include "isa/predecode.hpp"
#include "isa/program_gen.hpp"

namespace cs31::isa {
namespace {

/// Assemble, load, run to halt, and hand back the machine.
Machine run_source(const std::string& src, std::size_t max_steps = 100000) {
  Machine m;
  m.load(assemble(src));
  m.run(max_steps);
  return m;
}

TEST(Machine, MovAndArithmetic) {
  const Machine m = run_source(R"(
    movl $20, %eax
    movl $22, %ebx
    addl %ebx, %eax
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Eax), 42u);
}

TEST(Machine, ImulSignedMultiply) {
  const Machine m = run_source(R"(
    movl $-6, %eax
    movl $7, %ebx
    imull %ebx, %eax
    hlt
)");
  EXPECT_EQ(static_cast<std::int32_t>(m.reg(Reg::Eax)), -42);
}

// Flag semantics sweep: cmp against host comparison for signed and
// unsigned relations, across a grid of interesting values.
class CmpFlags : public ::testing::TestWithParam<std::pair<std::int32_t, std::int32_t>> {};

TEST_P(CmpFlags, ConditionCodesMatchHostComparisons) {
  const auto [a, b] = GetParam();
  Machine m;
  m.load(assemble("cmpl $" + std::to_string(b) + ", %eax\nhlt\n"));
  m.set_reg(Reg::Eax, static_cast<std::uint32_t>(a));
  m.run();
  const Eflags f = m.flags();
  const std::uint32_t ua = static_cast<std::uint32_t>(a), ub = static_cast<std::uint32_t>(b);
  EXPECT_EQ(f.zf, a == b);
  EXPECT_EQ(f.cf, ua < ub);                 // unsigned below
  EXPECT_EQ(f.sf != f.of, a < b);           // signed less-than identity
  EXPECT_EQ(!f.zf && f.sf == f.of, a > b);  // signed greater-than identity
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CmpFlags,
    ::testing::Values(std::pair{0, 0}, std::pair{1, 2}, std::pair{2, 1},
                      std::pair{-1, 1}, std::pair{1, -1}, std::pair{-5, -3},
                      std::pair{-3, -5}, std::pair{2147483647, -2147483648},
                      std::pair{-2147483648, 2147483647}, std::pair{-1, -1}));

TEST(Machine, ConditionalJumpsFollowFlags) {
  // Signed vs unsigned comparison: -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
  const Machine m = run_source(R"(
    movl $-1, %eax
    cmpl $1, %eax
    jl signed_less
    movl $0, %ebx
    jmp unsigned_part
signed_less:
    movl $1, %ebx
unsigned_part:
    movl $-1, %eax
    cmpl $1, %eax
    ja unsigned_above
    movl $0, %ecx
    hlt
unsigned_above:
    movl $1, %ecx
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Ebx), 1u) << "-1 < 1 signed";
  EXPECT_EQ(m.reg(Reg::Ecx), 1u) << "0xffffffff > 1 unsigned";
}

TEST(Machine, AddressingModes) {
  Machine m;
  m.load(assemble(R"(
    movl $0x2000, %eax
    movl $2, %ebx
    movl $7, 0(%eax)
    movl $8, 4(%eax)
    movl $9, 8(%eax)
    movl (%eax,%ebx,4), %ecx   # mem[0x2000 + 2*4] = 9
    movl 4(%eax), %edx
    hlt
)"));
  m.run();
  EXPECT_EQ(m.reg(Reg::Ecx), 9u);
  EXPECT_EQ(m.reg(Reg::Edx), 8u);
  EXPECT_EQ(m.load32(0x2000), 7u);
}

TEST(Machine, LeaComputesWithoutMemoryAccess) {
  const Machine m = run_source(R"(
    movl $0x10, %eax
    movl $3, %ebx
    leal 5(%eax,%ebx,2), %ecx
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Ecx), 0x10u + 3 * 2 + 5);
}

TEST(Machine, PushPopStackDiscipline) {
  Machine m;
  m.load(assemble(R"(
    movl $11, %eax
    movl $22, %ebx
    pushl %eax
    pushl %ebx
    popl %ecx
    popl %edx
    hlt
)"));
  const std::uint32_t esp0 = 0;  // captured after load below
  m.run();
  EXPECT_EQ(m.reg(Reg::Ecx), 22u) << "LIFO order";
  EXPECT_EQ(m.reg(Reg::Edx), 11u);
  (void)esp0;
  // Balanced pushes/pops restore ESP to the load-time top.
  Machine fresh;
  fresh.load(assemble("hlt\n"));
  EXPECT_EQ(m.reg(Reg::Esp), fresh.reg(Reg::Esp));
}

TEST(Machine, CallRetAndFramePointerDiscipline) {
  // The canonical prologue/epilogue the course traces for a week.
  const Machine m = run_source(R"(
main:
    movl $5, %eax
    pushl %eax          # argument
    call square
    addl $4, %esp       # caller cleans up
    hlt
square:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %ebx  # the argument
    imull %ebx, %ebx
    movl %ebx, %eax
    leave
    ret
)");
  EXPECT_EQ(m.reg(Reg::Eax), 25u);
}

TEST(Machine, NestedCallsReturnCorrectly) {
  const Machine m = run_source(R"(
main:
    call f
    hlt
f:
    pushl %ebp
    movl %esp, %ebp
    call g
    addl $1, %eax
    leave
    ret
g:
    movl $10, %eax
    ret
)");
  EXPECT_EQ(m.reg(Reg::Eax), 11u);
}

TEST(Machine, RetFromOutermostFrameHalts) {
  Machine m;
  m.load(assemble("movl $1, %eax\nret\n"));
  m.run();
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.reg(Reg::Eax), 1u);
}

TEST(Machine, ShiftsSetCarryFromShiftedBit) {
  const Machine m = run_source(R"(
    movl $1, %eax
    shll $31, %eax      # eax = 0x80000000
    sarl $31, %eax      # arithmetic: eax = -1
    movl $1, %ebx
    shrl $1, %ebx       # logical: CF gets the 1
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Eax), 0xFFFFFFFFu);
  EXPECT_TRUE(m.flags().cf);
}

TEST(Machine, IncDecPreserveCarry) {
  Machine m;
  m.load(assemble(R"(
    movl $-1, %eax
    addl $1, %eax       # sets CF
    incl %ebx           # must not clear CF
    hlt
)"));
  m.run();
  EXPECT_TRUE(m.flags().cf);
}

TEST(Machine, TestAndCmpDoNotWriteOperands) {
  const Machine m = run_source(R"(
    movl $7, %eax
    testl %eax, %eax
    cmpl $3, %eax
    hlt
)");
  EXPECT_EQ(m.reg(Reg::Eax), 7u);
}

TEST(Machine, SegfaultOnWildAccess) {
  Machine m(4096);
  m.load(assemble("movl $100000, %eax\nmovl (%eax), %ebx\nhlt\n", 0));
  EXPECT_THROW(m.run(), Error);
}

TEST(Machine, EipOutsideImageThrows) {
  Machine m;
  m.load(assemble("nop\nnop\n"));  // falls off the end
  EXPECT_THROW(m.run(), Error);
}

TEST(Machine, WritingToImmediateThrows) {
  Machine m;
  m.load(assemble("movl %eax, $5\nhlt\n"));
  EXPECT_THROW(m.run(), Error);
}

TEST(Machine, StartSymbolSelectsEntryPoint) {
  Machine m;
  m.load(assemble("helper:\n  hlt\n_start:\n  movl $9, %eax\n  hlt\n"));
  m.run();
  EXPECT_EQ(m.reg(Reg::Eax), 9u);
}

TEST(Machine, RunawayGuardThrows) {
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  EXPECT_THROW(m.run(1000), Error);
}

TEST(Machine, TooSmallMemoryRejected) {
  EXPECT_THROW(Machine(100), Error);
}

// --- run_limited: the grading service's resource budgets ---------------

TEST(RunLimited, HaltedWellUnderBothLimits) {
  Machine m;
  m.load(assemble("movl $5, %eax\n  hlt\n"));
  const auto outcome = m.run_limited({1000, 10.0});
  EXPECT_EQ(outcome.reason, Machine::StopReason::Halted);
  EXPECT_EQ(outcome.instructions, 2u);
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.reg(Reg::Eax), 5u);
}

TEST(RunLimited, InstructionLimitIsAnOutcomeNotAnException) {
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  const auto outcome = m.run_limited({1000, 0.0});
  EXPECT_EQ(outcome.reason, Machine::StopReason::InstructionLimit);
  EXPECT_EQ(outcome.instructions, 1000u);
  EXPECT_FALSE(m.halted());
}

TEST(RunLimited, WallClockLimitStopsARunawayLoop) {
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  // No instruction limit at all: only the wall clock can stop this.
  const auto outcome = m.run_limited({0, 0.05});
  EXPECT_EQ(outcome.reason, Machine::StopReason::TimeLimit);
  EXPECT_FALSE(m.halted());
}

TEST(RunLimited, InstructionLimitBindsBeforeAGenerousWallClock) {
  // The grading service's configuration: a deterministic instruction
  // budget far below a generous wall-clock backstop must be the limit
  // that fires, or report streams would depend on machine load.
  Machine m;
  m.load(assemble("loop:\n  jmp loop\n"));
  const auto outcome = m.run_limited({5000, 60.0});
  EXPECT_EQ(outcome.reason, Machine::StopReason::InstructionLimit);
  EXPECT_EQ(outcome.instructions, 5000u);
}

TEST(RunLimited, BothLimitsZeroRejected) {
  Machine m;
  m.load(assemble("hlt\n"));
  EXPECT_THROW(m.run_limited({0, 0.0}), Error);
}

TEST(RunLimited, ResumableAfterALimitStop) {
  // A limited run leaves the machine in a valid paused state: granting
  // more budget continues from where it stopped.
  Machine m;
  m.load(assemble("movl $0, %eax\nloop:\n  incl %eax\n  cmpl $100, %eax\n  jne loop\n  hlt\n"));
  const auto first = m.run_limited({10, 0.0});
  EXPECT_EQ(first.reason, Machine::StopReason::InstructionLimit);
  const auto rest = m.run_limited({100000, 0.0});
  EXPECT_EQ(rest.reason, Machine::StopReason::Halted);
  EXPECT_EQ(m.reg(Reg::Eax), 100u);
}

// --- the two execution cores: edge cases the fuzzer can't aim at ------
//
// Machine::run defaults to the predecoded core; set_core(Switch) pins
// the reference interpreter. Each case here runs on both and compares,
// so the suite documents *which* semantics the block cache must get
// right: self-modifying stores, jumps into the middle of a cached
// block, flag recipes on boundary operands, and budgets that cut a
// block mid-stride.

/// Run the same source to halt on each core and hand both machines back.
std::pair<Machine, Machine> run_both(const std::string& src, std::size_t max_steps = 100000) {
  std::pair<Machine, Machine> pair;
  pair.first.load(assemble(src));  // default: predecoded
  pair.second.set_core(Machine::Core::Switch);
  pair.second.load(assemble(src));
  pair.first.run(max_steps);
  pair.second.run(max_steps);
  return pair;
}

void expect_same_state(const Machine& fast, const Machine& slow) {
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(fast.reg(static_cast<Reg>(i)), slow.reg(static_cast<Reg>(i)))
        << reg_name(static_cast<Reg>(i));
  }
  EXPECT_EQ(fast.reg(Reg::Eip), slow.reg(Reg::Eip));
  EXPECT_EQ(fast.flags() == slow.flags(), true);
  EXPECT_EQ(fast.instructions_executed(), slow.instructions_executed());
  EXPECT_EQ(fast.halted(), slow.halted());
}

/// Source for a program that overwrites the instruction at `patch_me`
/// with `replacement` (a single instruction) before reaching it.
std::string self_modifying_source(const std::string& replacement) {
  // The replacement's 16 encoded bytes, as four store immediates.
  const Image encoded = assemble(replacement + "\n");
  std::uint32_t words[4];
  for (int w = 0; w < 4; ++w) {
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<std::uint32_t>(encoded.bytes[4 * w + b]) << (8 * b);
    }
    words[w] = v;
  }
  // Two-pass trick: label addresses depend only on instruction count,
  // so assemble once with dummy immediates to learn patch_me's address,
  // then emit the real source.
  const auto source_with = [&](std::uint32_t addr) {
    std::string src = "_start:\n    movl $" + std::to_string(addr) + ", %esi\n";
    for (int w = 0; w < 4; ++w) {
      src += "    movl $" + std::to_string(static_cast<std::int32_t>(words[w])) + ", " +
             std::to_string(4 * w) + "(%esi)\n";
    }
    src += "patch_me:\n    movl $1, %ebx\n    hlt\n";
    return src;
  };
  return source_with(assemble(source_with(0)).symbol("patch_me"));
}

TEST(TwoCores, SelfModifyingStoreIsExecutedFromFreshBytes) {
  const std::string src = self_modifying_source("movl $99, %ebx");
  auto [fast, slow] = run_both(src);
  expect_same_state(fast, slow);
  // The patched instruction, not the original, must have executed.
  EXPECT_EQ(fast.reg(Reg::Ebx), 99u);
  // Every one of the four code-range stores flushed the block cache.
  EXPECT_GE(fast.code_cache_stats().invalidations, 4u);
}

TEST(TwoCores, SelfModifyingNextFetchSeesTheNewOpcode) {
  // The patch turns the *immediately next* instruction into an addl —
  // the store and its consumer are back to back, so the fast core must
  // cut its block at the store, not just eventually notice.
  const std::string src = self_modifying_source("addl $7, %ebx");
  auto [fast, slow] = run_both(src);
  expect_same_state(fast, slow);
  EXPECT_EQ(fast.reg(Reg::Ebx), slow.reg(Reg::Ebx));
}

TEST(TwoCores, ExternalStore32IntoCodeInvalidatesTheCache) {
  // Machine::store32 is the debugger's poke; landing it in the image
  // must flush predecoded blocks just like an executed store.
  Machine m;
  m.load(assemble("_start:\n    movl $1, %eax\n    movl $2, %ebx\n    hlt\n"));
  (void)m.run_limited({1, 0.0});  // populate the cache
  const std::size_t before = m.code_cache_stats().invalidations;
  const Image patch = assemble("movl $42, %ebx\n");
  const std::uint32_t target = m.image().base + 16;  // the movl $2 slot
  for (int w = 0; w < 4; ++w) {
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b) {
      v |= static_cast<std::uint32_t>(patch.bytes[4 * w + b]) << (8 * b);
    }
    m.store32(target + 4 * w, v);
  }
  EXPECT_GT(m.code_cache_stats().invalidations, before);
  m.run(100);
  EXPECT_EQ(m.reg(Reg::Ebx), 42u);
}

TEST(TwoCores, JumpIntoTheMiddleOfACachedBlock) {
  // The loop re-enters at `mid`, inside the block predecoded from
  // _start: the cache must serve an overlapping block, not misexecute.
  const std::string src = R"(
_start:
    movl $1, %eax
mid:
    addl $1, %eax
    cmpl $10, %eax
    jl mid
    hlt
)";
  auto [fast, slow] = run_both(src);
  expect_same_state(fast, slow);
  EXPECT_EQ(fast.reg(Reg::Eax), 10u);
  const auto& stats = fast.code_cache_stats();
  // Blocks at _start, at mid (overlapping), and at the hlt.
  EXPECT_GE(stats.predecodes, 3u);
  // The loop body reused the cached mid block on every iteration.
  EXPECT_GT(stats.lookups, stats.predecodes);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(TwoCores, FlagRecipesOnBoundaryOperands) {
  // Each source ends halted with the interesting flags still set; the
  // cores must agree bit-for-bit, and the values pin x86 semantics.
  const std::string cases[] = {
      // negl INT_MIN: result is INT_MIN again, OF and CF both set.
      "movl $-2147483648, %eax\n    negl %eax\n    hlt\n",
      // INT_MAX + 1 overflows to the sign bit.
      "movl $2147483647, %eax\n    addl $1, %eax\n    hlt\n",
      // Shift by zero leaves every flag untouched (cmp sets them first).
      "movl $5, %eax\n    cmpl $5, %eax\n    shll $0, %eax\n    hlt\n",
      // Shift count is masked to 5 bits: 32 behaves like 0.
      "movl $-1, %eax\n    cmpl $1, %eax\n    shrl $32, %eax\n    hlt\n",
      // incl wraps 0xffffffff to zero, preserving CF (set by the cmp's
      // borrow: 0 < 1 unsigned).
      "movl $-1, %eax\n    movl $0, %ebx\n    cmpl $1, %ebx\n    incl %eax\n    hlt\n",
      // decl of zero borrows into the sign bit, CF again preserved.
      "movl $0, %eax\n    cmpl $1, %eax\n    decl %eax\n    hlt\n",
  };
  for (const std::string& src : cases) {
    auto [fast, slow] = run_both(src);
    expect_same_state(fast, slow);
  }
  // Spot-pin the recipes themselves (not just core agreement).
  const Machine neg_min = run_both(cases[0]).first;
  EXPECT_EQ(neg_min.reg(Reg::Eax), 0x80000000u);
  EXPECT_TRUE(neg_min.flags().of);
  EXPECT_TRUE(neg_min.flags().cf);
  const Machine inc_wrap = run_both(cases[4]).first;
  EXPECT_EQ(inc_wrap.reg(Reg::Eax), 0u);
  EXPECT_TRUE(inc_wrap.flags().zf);
  EXPECT_TRUE(inc_wrap.flags().cf) << "incl must preserve the borrow from cmpl";
}

TEST(TwoCores, BudgetStopExactlyAtABlockBoundary) {
  // Four instructions up to and including the jmp, then a second block.
  const std::string src = R"(
_start:
    movl $1, %eax
    movl $2, %ebx
    movl $3, %ecx
    jmp next
next:
    movl $4, %edx
    hlt
)";
  const Image image = assemble(src);
  for (const Machine::Core core : {Machine::Core::Predecoded, Machine::Core::Switch}) {
    Machine m;
    m.set_core(core);
    m.load(image);
    const auto outcome = m.run_limited({4, 0.0});
    EXPECT_EQ(outcome.reason, Machine::StopReason::InstructionLimit);
    EXPECT_EQ(outcome.instructions, 4u);
    EXPECT_EQ(m.reg(Reg::Eip), image.symbol("next")) << "stopped on the block boundary";
    EXPECT_EQ(m.reg(Reg::Edx), 0u) << "the next block must not have started";
    const auto rest = m.run_limited({100, 0.0});
    EXPECT_EQ(rest.reason, Machine::StopReason::Halted);
    EXPECT_EQ(rest.instructions, 2u);
    EXPECT_EQ(m.reg(Reg::Edx), 4u);
  }
}

TEST(TwoCores, BudgetStopMidBlock) {
  const std::string src = R"(
_start:
    movl $1, %eax
    movl $2, %ebx
    movl $3, %ecx
    jmp next
next:
    movl $4, %edx
    hlt
)";
  const Image image = assemble(src);
  for (const Machine::Core core : {Machine::Core::Predecoded, Machine::Core::Switch}) {
    Machine m;
    m.set_core(core);
    m.load(image);
    const auto outcome = m.run_limited({2, 0.0});
    EXPECT_EQ(outcome.reason, Machine::StopReason::InstructionLimit);
    EXPECT_EQ(outcome.instructions, 2u);
    // Stopped between the second and third instruction of the block.
    EXPECT_EQ(m.reg(Reg::Eip), image.base + 32u);
    EXPECT_EQ(m.reg(Reg::Ebx), 2u);
    EXPECT_EQ(m.reg(Reg::Ecx), 0u);
    const auto rest = m.run_limited({100, 0.0});
    EXPECT_EQ(rest.reason, Machine::StopReason::Halted);
    EXPECT_EQ(rest.instructions, 4u);
  }
}

TEST(TwoCores, StepAlwaysUsesTheSwitchInterpreter) {
  // Single-stepping is the debugger's teaching view: it must work (and
  // agree with run) regardless of the selected core, and stepping a
  // machine must interleave cleanly with fast-core runs.
  Machine m;
  m.load(assemble("movl $1, %eax\n    addl $2, %eax\n    imull $3, %eax\n    hlt\n"));
  EXPECT_TRUE(m.step());
  EXPECT_EQ(m.reg(Reg::Eax), 1u);
  (void)m.run_limited({1, 0.0});  // fast core continues mid-program
  EXPECT_EQ(m.reg(Reg::Eax), 3u);
  EXPECT_TRUE(m.step());
  EXPECT_EQ(m.reg(Reg::Eax), 9u);
  (void)m.run_limited({10, 0.0});
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.instructions_executed(), 4u);
}

TEST(TwoCores, MemoryTracingFallsBackToTheReferenceCore) {
  // The memory trace is defined by the reference interpreter's access
  // order; with tracing on, run() must produce it even though the
  // machine still reports the predecoded core as selected.
  Machine traced;
  traced.set_trace_memory(true);
  traced.load(assemble("pushl $7\n    popl %eax\n    hlt\n"));
  traced.run(100);
  ASSERT_EQ(traced.memory_trace().size(), 2u);
  EXPECT_TRUE(traced.memory_trace()[0].is_write);
  EXPECT_FALSE(traced.memory_trace()[1].is_write);
  EXPECT_EQ(traced.core(), Machine::Core::Predecoded);
}

TEST(TwoCores, ReloadingTheSameImageKeepsTheBlockCacheWarm) {
  // The maze-attempt / grader-regrade pattern: load, run, load the same
  // image again. The code bytes in memory are untouched, so every
  // predecoded block is still exact — the reload must keep them.
  const Image image = assemble("_start:\n    movl $5, %eax\n    addl $2, %eax\n    hlt\n");
  Machine m;
  m.load(image);
  m.run(100);
  const std::size_t warm = m.code_cache_stats().predecodes;
  EXPECT_GE(warm, 1u);
  for (int rep = 0; rep < 3; ++rep) {
    m.load(image);
    EXPECT_EQ(m.instructions_executed(), 0u);  // architectural reset still full
    m.run(100);
    EXPECT_EQ(m.reg(Reg::Eax), 7u);
  }
  // Reused, never re-predecoded.
  EXPECT_EQ(m.code_cache_stats().predecodes, warm);
  EXPECT_GT(m.code_cache_stats().lookups, warm);
}

TEST(TwoCores, ReloadingADifferentImageResetsTheCache) {
  const Image first = assemble("movl $1, %eax\n    hlt\n");
  // Same length, same base, different bytes.
  const Image second = assemble("movl $2, %eax\n    hlt\n");
  Machine m;
  m.load(first);
  m.run(100);
  EXPECT_EQ(m.reg(Reg::Eax), 1u);
  m.load(second);
  m.run(100);
  EXPECT_EQ(m.reg(Reg::Eax), 2u);
  // Identical bytes but different symbols must also be treated as a new
  // image: the entry label moved even though the encoding did not.
  const Image late_entry = assemble("skip:\n    movl $3, %eax\n_start:\n    hlt\n");
  const Image early_entry = assemble("_start:\n    movl $3, %eax\nskip:\n    hlt\n");
  ASSERT_EQ(late_entry.bytes, early_entry.bytes);
  m.load(early_entry);
  m.run(100);
  EXPECT_EQ(m.reg(Reg::Eax), 3u);
  m.load(late_entry);
  m.run(100);
  EXPECT_EQ(m.reg(Reg::Eax), 0u);  // entered at the hlt directly
}

TEST(TwoCores, ReloadAfterSelfModificationRestoresTheImageBytes) {
  // A run that patched its own code dirtied memory: the next load of
  // the same image must notice, re-copy the pristine bytes, and drop
  // the cache rather than reuse blocks decoded from patched code.
  const Image image = assemble(self_modifying_source("movl $99, %ebx"));
  Machine m;
  m.load(image);
  m.run(100000);
  EXPECT_EQ(m.reg(Reg::Ebx), 99u);
  m.load(image);
  m.run(100000);
  EXPECT_EQ(m.reg(Reg::Ebx), 99u);  // original movl $1 patched again, not stale
  // And the cores still agree after the reload cycle.
  Machine slow;
  slow.set_core(Machine::Core::Switch);
  slow.load(image);
  slow.run(100000);
  expect_same_state(m, slow);
}

TEST(TwoCores, LazyBlockDiscoveryAgreesWithTheStaticCfg) {
  // predecode.hpp's block rule (entry to first control transfer) is
  // the same leader rule cs31::analyze uses for its ISA CFGs; this
  // pins the lazy, jump-target-driven discovery against the static
  // whole-image pass. The one sanctioned difference: a static block
  // also ends where the *next leader* begins (a fallthrough target),
  // while a lazy block keeps going to the control transfer — so every
  // static block must be a prefix of the lazy block at its leader.
  const auto is_control = [](Mnemonic op) {
    return (op >= Mnemonic::Jmp && op <= Mnemonic::Jns) || op == Mnemonic::Call ||
           op == Mnemonic::Ret || op == Mnemonic::Hlt;
  };
  const Image images[] = {Maze(12).image(), assemble(generate_program(7).source)};
  for (const Image& image : images) {
    const analyze::IsaCfg cfg = analyze::build_cfg(image);
    std::vector<std::uint8_t> mem(1u << 16, 0);
    std::copy(image.bytes.begin(), image.bytes.end(), mem.begin() + image.base);
    predecode::BlockCache cache;
    cache.reset(image.base, static_cast<std::uint32_t>(image.bytes.size()));
    for (const analyze::IsaBlock& block : cfg.blocks) {
      const predecode::PredecodedBlock& lazy = cache.obtain(block.start, mem.data());
      ASSERT_EQ(lazy.start, block.start);
      ASSERT_GE(lazy.ops.size(), block.instrs.size()) << "static block at " << block.start;
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        EXPECT_EQ(lazy.ops[i].addr, block.instrs[i].addr);
      }
      const std::uint32_t static_end =
          block.start + static_cast<std::uint32_t>(block.instrs.size()) * kInstrBytes;
      if (is_control(block.instrs.back().ins.op)) {
        // Both discoveries cut the block at the control transfer.
        EXPECT_EQ(lazy.ops.size(), block.instrs.size()) << "static block at " << block.start;
        EXPECT_TRUE(lazy.ends_in_control);
      } else if (static_end < image.base + image.bytes.size()) {
        // The static block stopped at a fallthrough leader; the lazy
        // block ran on and must itself end at a control transfer.
        EXPECT_GT(lazy.ops.size(), block.instrs.size());
        EXPECT_TRUE(lazy.ends_in_control);
      }
    }
  }
}

}  // namespace
}  // namespace cs31::isa
