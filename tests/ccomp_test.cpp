// Mini-C compiler tests: lexer, parser diagnostics, and — the real
// grader — compile-and-run programs executed on the IA-32 subset
// machine, cross-checked against natively computed expectations.
#include <gtest/gtest.h>

#include <functional>

#include "ccomp/codegen.hpp"
#include "ccomp/lexer.hpp"
#include "ccomp/parser.hpp"
#include "common/error.hpp"

namespace cs31::cc {
namespace {

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  const auto tokens = lex("int x = a <= 3 && b != ~4; // comment\nreturn x << 1;");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokKind::KwInt);
  EXPECT_EQ(tokens[1].kind, TokKind::Ident);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[4].kind, TokKind::LessEq);
  EXPECT_EQ(tokens[6].kind, TokKind::AmpAmp);
  EXPECT_EQ(tokens.back().kind, TokKind::End);
}

TEST(Lexer, TracksLinesAndRejectsStrays) {
  const auto tokens = lex("int a;\nint b;\n");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[3].line, 2);
  EXPECT_THROW(lex("int @;"), Error);
  EXPECT_THROW(lex("int x = 99999999999;"), Error);
}

TEST(Parser, BuildsPrecedenceCorrectly) {
  const ProgramAst p = parse("int main() { return 2 + 3 * 4; }");
  const Stmt& ret = *p.functions[0].body[0];
  ASSERT_EQ(ret.kind, Stmt::Kind::Return);
  EXPECT_EQ(ret.expr->bin_op, BinOp::Add);
  EXPECT_EQ(ret.expr->rhs->bin_op, BinOp::Mul);
}

TEST(Parser, DiagnosticsCarryLines) {
  try {
    (void)parse("int main() {\n  return 1 +;\n}");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  EXPECT_THROW((void)parse("int f() {} int f() {}"), Error);
  EXPECT_THROW((void)parse(""), Error);
  EXPECT_THROW((void)parse("int main() { return 6 / 2; }"), Error)
      << "division is explicitly unsupported";
}

TEST(Codegen, EmitsTheCoursePrologue) {
  const std::string assembly = compile_to_assembly("int main() { int x = 1; return x; }");
  EXPECT_NE(assembly.find("pushl %ebp"), std::string::npos);
  EXPECT_NE(assembly.find("movl %esp, %ebp"), std::string::npos);
  EXPECT_NE(assembly.find("subl $4, %esp"), std::string::npos);
  EXPECT_NE(assembly.find("-4(%ebp)"), std::string::npos);
  EXPECT_NE(assembly.find("leave"), std::string::npos);
}

TEST(Codegen, SemanticErrors) {
  EXPECT_THROW((void)run_mini_c("int main() { return y; }"), Error);
  EXPECT_THROW((void)run_mini_c("int main() { int x; int x; return 0; }"), Error);
  EXPECT_THROW((void)run_mini_c("int main() { return f(1); }"), Error);
  EXPECT_THROW((void)run_mini_c("int f(int a) { return a; } int main() { return f(); }"),
               Error);
  EXPECT_THROW((void)run_mini_c("int f() { return 0; }"), Error) << "no main";
  EXPECT_THROW((void)run_mini_c("int main(int a) { return a; }", {}), Error)
      << "arity vs supplied args";
}

// ---- compile-and-run: every case runs on the emulated machine ----

struct RunCase {
  const char* name;
  const char* source;
  std::vector<std::int32_t> args;
  std::int32_t expected;
};

class CompileAndRun : public ::testing::TestWithParam<RunCase> {};

TEST_P(CompileAndRun, ProducesTheNativeAnswer) {
  const RunCase& c = GetParam();
  EXPECT_EQ(run_mini_c(c.source, c.args), c.expected) << c.source;
}

const RunCase kCases[] = {
    {"constant", "int main() { return 42; }", {}, 42},
    {"arith_precedence", "int main() { return 2 + 3 * 4 - 1; }", {}, 13},
    {"parens", "int main() { return (2 + 3) * 4; }", {}, 20},
    {"unary_neg", "int main() { return -7 + 10; }", {}, 3},
    {"bitwise", "int main() { return (12 & 10) | (1 ^ 3); }", {}, 8 | 2},
    {"bitnot", "int main() { return ~0; }", {}, -1},
    {"shifts", "int main() { return (1 << 5) + (-16 >> 2); }", {}, 32 - 4},
    {"locals_and_assign",
     "int main() { int x = 3; int y; y = x * x; x = y + 1; return x; }", {}, 10},
    {"comparisons",
     "int main() { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 5) + (5 == 5) + "
     "(6 != 6); }",
     {}, 3},
    {"negative_compares", "int main() { return (0-1 < 1) + (0-5 > 0-3); }", {}, 1},
    {"logical_and_or",
     "int main() { return (1 && 2) + (0 || 0) + (0 && 1) + (3 || 0); }", {}, 2},
    {"logical_not", "int main() { return !0 + !7; }", {}, 1},
    {"if_else",
     "int main(int n) { if (n > 10) { return 1; } else { return 2; } }", {11}, 1},
    {"if_else_taken_else",
     "int main(int n) { if (n > 10) { return 1; } else { return 2; } }", {9}, 2},
    {"dangling_else",
     "int main(int n) { if (n > 0) if (n > 5) return 1; else return 2; return 3; }",
     {3}, 2},
    {"while_sum", "int main(int n) { int s = 0; int i = 1; while (i <= n) { s = s + i; "
                  "i = i + 1; } return s; }",
     {100}, 5050},
    {"args_order", "int main(int a, int b) { return a - b; }", {10, 3}, 7},
    {"call_chain",
     "int sq(int x) { return x * x; } int main(int n) { return sq(n) + sq(n + 1); }",
     {3}, 25},
    {"recursion_factorial",
     "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } "
     "int main(int n) { return fact(n); }",
     {6}, 720},
    {"recursion_fib",
     "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } "
     "int main(int n) { return fib(n); }",
     {12}, 144},
    {"mutual_recursion",
     "int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); } "
     "int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); } "
     "int main(int n) { return is_even(n); }",
     {10}, 1},
    {"gcd_by_subtraction",
     "int gcd(int a, int b) { while (a != b) { if (a > b) { a = a - b; } else "
     "{ b = b - a; } } return a; } int main() { return gcd(48, 36); }",
     {}, 12},
    {"implicit_return_zero", "int main() { int x = 5; x = x + 1; }", {}, 0},
    {"void_return", "void side(int x) { return; } int main() { side(1); return 9; }",
     {}, 9},
    {"overflow_wraps",
     "int main() { int x = 2147483647; return x + 1 < 0; }", {}, 1},
    {"shadow_free_blocks",
     "int main() { int total = 0; { int inner = 2; total = total + inner; } "
     "return total; }",
     {}, 2},
    {"for_loop",
     "int main(int n) { int s = 0; for (int i = 1; i <= n; i = i + 1) { s = s + i; } "
     "return s; }",
     {10}, 55},
    {"for_empty_sections",
     "int main() { int i = 0; for (;;) { i = i + 1; if (i == 7) return i; } }", {}, 7},
    {"for_no_init",
     "int main() { int i = 3; int s = 0; for (; i > 0; i = i - 1) s = s + i; "
     "return s; }",
     {}, 6},
    {"nested_for",
     "int main() { int s = 0; for (int r = 0; r < 4; r = r + 1) "
     "for (int c = 0; c < 3; c = c + 1) s = s + 1; return s; }",
     {}, 12},
    {"three_args", "int f(int a, int b, int c) { return a * 100 + b * 10 + c; } "
                   "int main() { return f(1, 2, 3); }",
     {}, 123},
    {"expression_args",
     "int f(int a, int b) { return a - b; } int main() { return f(2 * 3, 1 + 1); }",
     {}, 4},
};

INSTANTIATE_TEST_SUITE_P(Programs, CompileAndRun, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<RunCase>& info) {
                           return info.param.name;
                         });

TEST(CompileAndRun, MutualRecursionNeedsNoPrototypes) {
  // All function names are visible program-wide (two-pass, like the
  // assembler's labels).
  EXPECT_EQ(run_mini_c("int a(int n) { if (n == 0) return 7; return b(n - 1); } "
                       "int b(int n) { return a(n); } int main() { return a(5); }"),
            7);
}

TEST(CompileAndRun, DeepRecursionUsesTheRealStack) {
  // 1000 frames through the emulated stack.
  EXPECT_EQ(run_mini_c("int depth(int n) { if (n == 0) return 0; "
                       "return 1 + depth(n - 1); } int main() { return depth(1000); }"),
            1000);
}

TEST(CompileAndRun, ShortCircuitSkipsSideEffects) {
  // If && evaluated its rhs eagerly, g() would flip the global-ish
  // variable via an argument round trip; encode with a counter carried
  // through returns instead (mini-C has no globals).
  EXPECT_EQ(run_mini_c("int boom(int x) { while (1) { x = x; } return x; } "
                       "int main() { if (0 && boom(1)) { return 1; } return 2; }"),
            2)
      << "rhs must not run: boom() never terminates";
}

}  // namespace
}  // namespace cs31::cc
