// Detector-guided DPOR exploration tests. The load-bearing tier is
// DiffExplore.*: on an exhaustively-enumerable corpus the explorer's
// distinct-race verdict must be SET-IDENTICAL to replaying every
// interleaving, and the full result must be BYTE-IDENTICAL across
// {1,2,4,8} replay workers (and batch/queue shapes) — the same
// determinism contract the grader and trace pipelines honour.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "race/explore.hpp"
#include "race/replay.hpp"

namespace cs31::race {
namespace {

std::set<std::string> key_set(const std::vector<RaceReport>& races) {
  std::set<std::string> keys;
  for (const RaceReport& r : races) {
    keys.insert(race_pair_key(r.variable, r.first, r.second));
  }
  return keys;
}

/// Every observable byte of a result, for cross-worker identity checks:
/// the summary line (counts, totals, first racy schedule), the walk
/// statistics, and each distinct race rendered in emission order.
std::string fingerprint(const ExploreResult& r) {
  std::ostringstream out;
  out << r.summary() << '\n'
      << "walk " << r.nodes_visited << ' ' << r.sleep_pruned << ' '
      << r.backtrack_points << '\n';
  for (const RaceReport& race : r.races) out << race.to_string() << '\n';
  return out.str();
}

/// The race_detective Act 7 script: mostly-independent threads (a and b
/// are thread-private) around one under-synchronized shared z.
std::vector<std::vector<std::string>> act7_script() {
  return {
      {"read a", "write a", "lock m", "write z", "unlock m", "read a", "write a"},
      {"read b", "write b", "read z", "write z", "read b", "write b", "write b"},
  };
}

// ---------------------------------------------------------------------
// The differential tier (ctest name: explore_diff_smoke)
// ---------------------------------------------------------------------

TEST(DiffExplore, SeededCorpusMatchesExhaustiveReplay) {
  struct Case {
    std::uint64_t seed;
    ScriptGenConfig cfg;
  };
  std::vector<Case> corpus;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    corpus.push_back({seed, {.threads = 2, .ops_per_thread = 5}});
  }
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    corpus.push_back({seed, {.threads = 3, .ops_per_thread = 3}});
  }
  for (std::uint64_t seed = 21; seed <= 22; ++seed) {
    corpus.push_back({seed, {.threads = 2, .ops_per_thread = 4, .barriers = true}});
  }
  corpus.push_back({31, {.threads = 3, .ops_per_thread = 2, .barriers = true}});

  for (const Case& c : corpus) {
    const auto scripts = generate_script(c.seed, c.cfg);
    const auto exhaustive = replay_all_interleavings(scripts, 200000);
    const auto exhaustive_keys = key_set(distinct_races(exhaustive));

    const ExploreResult res = explore_races(scripts);
    EXPECT_TRUE(res.complete) << "seed " << c.seed;
    EXPECT_FALSE(res.total_saturated) << "seed " << c.seed;
    EXPECT_EQ(res.interleavings_total, exhaustive.size()) << "seed " << c.seed;
    EXPECT_LE(res.schedules_replayed, exhaustive.size()) << "seed " << c.seed;
    EXPECT_EQ(key_set(res.races), exhaustive_keys)
        << "seed " << c.seed << ": DPOR verdict diverged from the exhaustive sweep";
  }
}

TEST(DiffExplore, ByteIdenticalAcrossWorkerCounts) {
  struct Variant {
    std::vector<std::vector<std::string>> scripts;
    ExploreOptions base;
  };
  std::vector<Variant> variants;
  variants.push_back({act7_script(), {}});
  variants.push_back(
      {generate_script(7, {.threads = 3, .ops_per_thread = 3, .barriers = true}), {}});
  {
    // Budgeted + guided + a tight settle window, so mid-run
    // reprioritization actually interleaves with emission.
    ExploreOptions budgeted;
    budgeted.max_schedules = 40;
    budgeted.settle_window = 8;
    RaceReport hint;
    hint.variable = "z";
    hint.first.where = "t0 write z";
    hint.second.where = "t1 write z";
    budgeted.hints.push_back(hint);
    variants.push_back({act7_script(), budgeted});
  }

  for (std::size_t v = 0; v < variants.size(); ++v) {
    ExploreOptions baseline = variants[v].base;
    baseline.workers = 1;
    const std::string expected = fingerprint(explore_races(variants[v].scripts, baseline));
    for (const std::size_t workers : {2u, 4u, 8u}) {
      for (const std::size_t batch : {1u, 8u}) {
        ExploreOptions opts = variants[v].base;
        opts.workers = workers;
        opts.batch = batch;
        opts.queue_capacity = workers == 4 ? 1 : 4;
        EXPECT_EQ(fingerprint(explore_races(variants[v].scripts, opts)), expected)
            << "variant " << v << " workers " << workers << " batch " << batch;
      }
    }
  }
}

TEST(DiffExplore, Act7VerdictMatchesExhaustiveAtAFractionOfTheSchedules) {
  const auto scripts = act7_script();
  const auto exhaustive = replay_all_interleavings(scripts, 10000);
  ASSERT_EQ(exhaustive.size(), 3432u);  // C(14,7)
  const auto exhaustive_keys = key_set(distinct_races(exhaustive));
  ASSERT_EQ(exhaustive_keys.size(), 2u);  // write/read z and write/write z

  const ExploreResult res = explore_races(scripts);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(key_set(res.races), exhaustive_keys);
  // The reduction floor the bench asserts precisely; 10x is the loose
  // tier-1 version (measured: far fewer).
  EXPECT_LE(res.schedules_replayed * 10, exhaustive.size());
}

// ---------------------------------------------------------------------
// Budgets: honest partial coverage instead of a throw
// ---------------------------------------------------------------------

TEST(Explore, ScheduleBudgetBindsHonestly) {
  // Every op writes the same variable, so every interleaving is its own
  // equivalence class: DPOR cannot prune, and only the budget stops it.
  const std::vector<std::vector<std::string>> scripts(
      3, std::vector<std::string>(4, "write z0"));
  ExploreOptions opts;
  opts.max_schedules = 50;
  const ExploreResult res = explore_races(scripts, opts);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.schedules_replayed, 50u);
  EXPECT_EQ(res.interleavings_total, 34650u);  // 12!/(4!4!4!)
  EXPECT_FALSE(res.total_saturated);
  EXPECT_NE(res.summary().find("budget hit"), std::string::npos);
  EXPECT_NE(res.summary().find("explored 50 of 34650"), std::string::npos);
  EXPECT_FALSE(res.races.empty());
}

TEST(Explore, EventBudgetBindsAtScheduleGranularity) {
  const std::vector<std::vector<std::string>> scripts(
      3, std::vector<std::string>(4, "write z0"));
  ExploreOptions opts;
  opts.max_events = 120;  // 12 ops per schedule -> exactly 10 schedules
  const ExploreResult res = explore_races(scripts, opts);
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.schedules_replayed, 10u);
}

TEST(Explore, SaturatedSpaceStillCompletesWhenMostOpsAreIndependent) {
  // 4 threads x 40 thread-private ops: the interleaving count overflows
  // uint64 (the old enumerate-then-replay path could never even start),
  // but only one write/write pair is dependent, so the reduced tree is
  // a handful of schedules and the explorer finishes UNBUDGETED.
  std::vector<std::vector<std::string>> scripts(4);
  for (std::size_t t = 0; t < 4; ++t) {
    for (int i = 0; i < 40; ++i) {
      scripts[t].push_back("write p" + std::to_string(t));
    }
  }
  scripts[0].insert(scripts[0].begin() + 20, "write shared");
  scripts[1].insert(scripts[1].begin() + 20, "write shared");

  const ExploreResult res = explore_races(scripts);
  EXPECT_TRUE(res.total_saturated);
  EXPECT_TRUE(res.complete);
  EXPECT_NE(res.summary().find(">1.8e19 (count saturated)"), std::string::npos);
  EXPECT_GE(res.schedules_replayed, 2u);
  EXPECT_LE(res.schedules_replayed, 10u);
  ASSERT_EQ(res.races.size(), 1u);
  EXPECT_EQ(res.races[0].variable, "shared");
}

// ---------------------------------------------------------------------
// Guidance
// ---------------------------------------------------------------------

TEST(Explore, HintSteersTheFirstScheduleOntoAKnownRace) {
  // The race needs t1's recv to precede t0's send (otherwise the
  // channel edge orders the two writes). Unguided exploration runs t0
  // to completion first — schedule 0 is race-free. A hint on the write
  // pair pulls t1 forward, so the guided schedule 0 exposes the race.
  const std::vector<std::vector<std::string>> scripts = {
      {"write z", "send q", "lock m", "unlock m", "lock m", "unlock m"},
      {"lock m", "unlock m", "lock m", "unlock m", "recv q", "write z"},
  };

  ExploreOptions blind;
  blind.max_schedules = 1;
  const ExploreResult blind_res = explore_races(scripts, blind);
  EXPECT_EQ(blind_res.schedules_replayed, 1u);
  EXPECT_TRUE(blind_res.races.empty());
  EXPECT_EQ(blind_res.first_race_at, ExploreResult::kNoRace);

  ExploreOptions guided;
  guided.max_schedules = 1;
  RaceReport hint;
  hint.variable = "z";
  hint.first.where = "t0 write z";
  hint.second.where = "t1 write z";
  guided.hints.push_back(hint);
  const ExploreResult guided_res = explore_races(scripts, guided);
  EXPECT_EQ(guided_res.schedules_replayed, 1u);
  ASSERT_EQ(guided_res.races.size(), 1u);
  EXPECT_EQ(guided_res.races[0].variable, "z");
  EXPECT_EQ(guided_res.first_race_at, 0u);

  // Guidance prunes nothing: the complete runs agree with each other.
  const ExploreResult full_blind = explore_races(scripts);
  ExploreOptions full_guided_opts;
  full_guided_opts.hints = guided.hints;
  const ExploreResult full_guided = explore_races(scripts, full_guided_opts);
  EXPECT_TRUE(full_blind.complete);
  EXPECT_TRUE(full_guided.complete);
  EXPECT_EQ(key_set(full_blind.races), key_set(full_guided.races));
}

TEST(Explore, ReprioritizationTogglePreservesTheCompleteVerdict) {
  const auto scripts = generate_script(3, {.threads = 3, .ops_per_thread = 3});
  ExploreOptions off;
  off.reprioritize_on_discovery = false;
  const ExploreResult with_feedback = explore_races(scripts);
  const ExploreResult without_feedback = explore_races(scripts, off);
  EXPECT_TRUE(with_feedback.complete);
  EXPECT_TRUE(without_feedback.complete);
  EXPECT_EQ(key_set(with_feedback.races), key_set(without_feedback.races));
}

// ---------------------------------------------------------------------
// Reduction shape, edges, validation
// ---------------------------------------------------------------------

TEST(Explore, FullyIndependentThreadsCollapseToOneSchedule) {
  const std::vector<std::vector<std::string>> scripts = {
      {"write a", "write a", "read a"},
      {"write b", "read b", "write b"},
  };
  const ExploreResult res = explore_races(scripts);
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.interleavings_total, 20u);
  EXPECT_EQ(res.schedules_replayed, 1u);  // one Mazurkiewicz class
  EXPECT_TRUE(res.races.empty());
  EXPECT_EQ(res.backtrack_points, 0u);
}

TEST(Explore, TrivialScriptsExploreTheirSingleSchedule) {
  const ExploreResult empty = explore_races({});
  EXPECT_TRUE(empty.complete);
  EXPECT_EQ(empty.schedules_replayed, 1u);
  EXPECT_EQ(empty.interleavings_total, 1u);
  EXPECT_TRUE(empty.races.empty());

  const ExploreResult solo = explore_races({{"write x", "read x"}});
  EXPECT_TRUE(solo.complete);
  EXPECT_EQ(solo.schedules_replayed, 1u);
  EXPECT_TRUE(solo.races.empty());
}

TEST(Explore, ConstructorRejectsMalformedScripts) {
  const auto make = [](std::vector<std::vector<std::string>> scripts) {
    return Explorer(std::move(scripts));
  };
  EXPECT_THROW(make({{"unlock m"}}), Error);
  EXPECT_THROW(make({{"lock m0", "unlock m1"}}), Error);
  EXPECT_THROW(make({{"frobnicate x"}}), Error);
  EXPECT_THROW(make({{"read"}}), Error);
  EXPECT_NO_THROW(make({{"lock m0", "write x", "unlock m0"}}));
}

TEST(Explore, GeneratedScriptsAreStructurallyValidAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const ScriptGenConfig cfg{.threads = 3, .ops_per_thread = 5, .barriers = seed % 2 == 0};
    const auto scripts = generate_script(seed, cfg);
    ASSERT_EQ(scripts.size(), 3u);
    EXPECT_NO_THROW((void)Explorer{scripts}) << "seed " << seed;
    EXPECT_EQ(scripts, generate_script(seed, cfg)) << "seed " << seed;
  }
  EXPECT_NE(generate_script(1), generate_script(2));
}

}  // namespace
}  // namespace cs31::race
