// Experiment E8 — the shared-counter lecture demonstration: a data race
// loses updates; the fixes (mutex, atomic, local-then-merge) differ
// hugely in cost — "using synchronization sparingly to enforce
// correctness while not having an overly large negative impact on
// performance".
//
// (a) correctness report: lost updates per strategy with real threads;
// (b) google-benchmark timing of each strategy's per-increment cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "parallel/sync.hpp"

namespace {

using cs31::parallel::SharedCounter;

void report_correctness(cs31::bench::JsonReport& json) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPer = 100000;
  const std::uint64_t expected = kThreads * kPer;

  std::printf("==============================================================\n");
  std::printf("E8: shared counter — race losses and synchronization cost\n");
  std::printf("==============================================================\n\n");
  std::printf("(a) %u threads x %llu increments (expected %llu)\n", kThreads,
              static_cast<unsigned long long>(kPer),
              static_cast<unsigned long long>(expected));
  std::printf("%-22s %12s %12s\n", "strategy", "result", "lost");

  struct Row {
    const char* name;
    SharedCounter::Mode mode;
  };
  const Row rows[] = {
      {"unsynchronized", SharedCounter::Mode::Unsynchronized},
      {"mutex per increment", SharedCounter::Mode::MutexPerIncrement},
      {"atomic fetch_add", SharedCounter::Mode::Atomic},
      {"local then merge", SharedCounter::Mode::LocalThenMerge},
  };
  json.config("threads", kThreads);
  json.config("increments_per_thread", kPer);
  for (const Row& row : rows) {
    const std::uint64_t result = SharedCounter::run(row.mode, kThreads, kPer);
    std::printf("%-22s %12llu %12lld\n", row.name,
                static_cast<unsigned long long>(result),
                static_cast<long long>(expected - result));
    std::string key = row.name;
    for (char& c : key) {
      if (c == ' ') c = '_';
    }
    json.metric(key + "_lost", static_cast<std::int64_t>(expected - result));
  }
  std::printf("  note: on a single-core host the unsynchronized race may lose\n"
              "  nothing (increments rarely interleave); the synchronized rows\n"
              "  are exact by construction everywhere.\n\n");
  std::printf("(b) per-strategy timing (google-benchmark)\n");
}

void BM_Counter(benchmark::State& state) {
  const auto mode = static_cast<SharedCounter::Mode>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SharedCounter::run(mode, threads, 20000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * threads * 20000);
}

BENCHMARK(BM_Counter)
    ->ArgsProduct({{static_cast<long>(SharedCounter::Mode::Unsynchronized),
                    static_cast<long>(SharedCounter::Mode::MutexPerIncrement),
                    static_cast<long>(SharedCounter::Mode::Atomic),
                    static_cast<long>(SharedCounter::Mode::LocalThenMerge)},
                   {1, 2, 4}})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("sync_overhead", argc, argv);
  json.workload("shared counter: lost updates + per-strategy synchronization cost");
  report_correctness(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
