// Sustained grading throughput, cold vs. warm: the "millions of users"
// measurement for cs31::grader.
//
//   (a) cold vs warm     a steady batch of distinct submissions graded
//                        by a fresh service (every verdict is a full
//                        toolchain run), then the identical batch again
//                        (every verdict is a cache hit). The warm/cold
//                        ratio is the cache's leverage — the perf-smoke
//                        mode asserts it stays >= 5x.
//   (b) duplicate storm  deadline hour: a batch that is ~97% duplicates
//                        of a handful of bodies. Cold throughput here
//                        already approaches warm rates, because the
//                        collapse does most grading by cache lookup.
//   (c) worker scaling   cold steady throughput at 1/2/4 workers.
//   (d) poison           hostile submissions (spins, syntax errors,
//                        malformed configs) mixed into the batch; the
//                        pool must grade everything and stay intact.
//
// Usage: bench_grader [--perf-smoke] [--json[=DIR]] [--timestamp=T]
//   --perf-smoke   smaller batches, assert the >=5x warm/cold floor and
//                  poison completeness, nonzero exit on violation (the
//                  tier-1 ctest entry).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "grader/loadgen.hpp"
#include "grader/service.hpp"

namespace {

using cs31::grader::GraderService;
using cs31::grader::LoadPlan;
using cs31::grader::make_scenario;

double seconds_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
}

GraderService::Options service_options(std::size_t workers) {
  GraderService::Options options;
  options.workers = workers;
  options.queue_capacity = 64;
  // Deterministic budget well under the wall-clock backstop: a poison
  // spin costs exactly 200k emulated instructions, not 5 s.
  options.limits = cs31::grader::ToolchainLimits{200'000, 5.0};
  return options;
}

/// Submit the plan, wait idle, and return submissions/second.
double grade_batch(GraderService& service, const LoadPlan& plan) {
  const auto begin = std::chrono::steady_clock::now();
  for (const auto& submission : plan.submissions) service.submit(submission);
  service.wait_idle();
  return static_cast<double>(plan.submissions.size()) / seconds_since(begin);
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("grader", argc, argv);
  json.workload(
      "batch grading service: steady/storm/poison scenarios, cold vs warm cache, "
      "worker scaling");

  bool perf_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-smoke") == 0) perf_smoke = true;
  }

  const std::size_t batch = perf_smoke ? 180 : 900;
  const std::size_t workers = 4;
  json.config("batch", batch);
  json.config("workers", workers);
  json.config("perf_smoke", perf_smoke);

  // (a) cold vs warm ------------------------------------------------------
  const LoadPlan steady = make_scenario("steady", batch, 1);
  GraderService service(service_options(workers));
  const double cold_rate = grade_batch(service, steady);
  const double warm_rate = grade_batch(service, steady);  // same bytes: all hits
  const auto warm_stats = service.stats();
  const double warm_over_cold = warm_rate / cold_rate;
  std::printf("(a) cold vs warm, %zu distinct submissions, %zu workers\n", batch, workers);
  std::printf("    cold  %10.0f submissions/s   (%" PRIu64 " toolchain runs)\n", cold_rate,
              warm_stats.toolchain_runs);
  std::printf("    warm  %10.0f submissions/s   (%" PRIu64 " cache hits)\n", warm_rate,
              warm_stats.cache.hits);
  std::printf("    warm/cold %.1fx\n\n", warm_over_cold);
  json.metric("cold_rate", cold_rate);
  json.metric("warm_rate", warm_rate);
  json.metric("warm_over_cold", warm_over_cold);
  json.metric("toolchain_runs", warm_stats.toolchain_runs);

  // (b) duplicate storm ---------------------------------------------------
  const LoadPlan storm = make_scenario("duplicate_storm", batch, 1);
  GraderService storm_service(service_options(workers));
  const double storm_rate = grade_batch(storm_service, storm);
  const auto storm_stats = storm_service.stats();
  std::printf("(b) duplicate storm, %zu submissions, %" PRIu64 " distinct bodies\n", batch,
              storm_stats.cache.misses);
  std::printf("    cold storm %7.0f submissions/s (%" PRIu64
              " toolchain runs, %" PRIu64 " hits, %" PRIu64 " collapsed)\n\n",
              storm_rate, storm_stats.toolchain_runs, storm_stats.cache.hits,
              storm_stats.cache.collapsed);
  json.metric("storm_rate", storm_rate);
  json.metric("storm_toolchain_runs", storm_stats.toolchain_runs);
  json.metric("storm_collapsed", storm_stats.cache.collapsed);

  // (c) worker scaling ----------------------------------------------------
  std::printf("(c) cold steady throughput vs worker count\n");
  for (const std::size_t w : {1u, 2u, 4u}) {
    GraderService scaled(service_options(w));
    const double rate = grade_batch(scaled, steady);
    std::printf("    %zu worker%s %9.0f submissions/s\n", w, w == 1 ? " " : "s", rate);
    json.metric("cold_rate_w" + std::to_string(w), rate);
  }
  std::printf("\n");

  // (d) poison ------------------------------------------------------------
  const LoadPlan poison = make_scenario("poison", perf_smoke ? 48 : 240, 1);
  GraderService poison_service(service_options(workers));
  const double poison_rate = grade_batch(poison_service, poison);
  const auto poison_stats = poison_service.stats();
  const bool pool_intact = poison_stats.graded == poison.submissions.size();
  std::printf("(d) poison scenario: %" PRIu64 "/%zu graded, pool %s, %7.0f submissions/s\n\n",
              poison_stats.graded, poison.submissions.size(),
              pool_intact ? "intact" : "LOST WORK", poison_rate);
  json.metric("poison_graded", poison_stats.graded);
  json.metric("poison_pool_intact", pool_intact);
  json.metric("poison_rate", poison_rate);

  // Floors (always reported; enforced in the smoke so tier-1 catches a
  // cache or pool regression).
  bool ok = true;
  if (warm_over_cold < 5.0) {
    std::fprintf(stderr, "FAIL: warm/cold %.2fx below the 5x floor\n", warm_over_cold);
    ok = false;
  }
  if (!pool_intact) {
    std::fprintf(stderr, "FAIL: poison scenario lost submissions\n");
    ok = false;
  }
  if (perf_smoke && !ok) return 1;
  std::printf("floors: warm/cold >= 5x %s, poison pool intact %s\n",
              warm_over_cold >= 5.0 ? "PASS" : "FAIL", pool_intact ? "PASS" : "FAIL");
  return 0;
}
