// Ablation — Lab 10's design choice: partition the Life grid into
// horizontal or vertical bands. Functionally equivalent (the tests prove
// it); this bench quantifies the balance and the cache-footprint
// difference (a vertical band strides across every row), via the cache
// simulator and the multicore model.
#include <cstdio>

#include "bench_json.hpp"
#include "life/life.hpp"
#include "memhier/cache.hpp"
#include "memhier/trace.hpp"
#include "parallel/speedup.hpp"
#include "parallel/threads.hpp"

namespace {

using namespace cs31;

// Addresses one thread touches when updating its band of a rows x cols
// int grid (reads dominated by the row-sweep order of step_region).
memhier::Trace band_trace(const parallel::GridRegion& region, std::size_t cols) {
  memhier::Trace trace;
  for (std::size_t r = region.rows.begin; r < region.rows.end; ++r) {
    for (std::size_t c = region.cols.begin; c < region.cols.end; ++c) {
      trace.push_back({static_cast<std::uint32_t>((r * cols + c) * 4), false});
    }
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("ablation_partition", argc, argv);
  json.workload("Life band partitioning: load balance, cache footprint, correctness");

  constexpr std::size_t kRows = 256, kCols = 256, kThreads = 8;
  json.config("rows", kRows);
  json.config("cols", kCols);
  json.config("threads", kThreads);
  std::printf("==============================================================\n");
  std::printf("Ablation: Life grid partitioning — horizontal vs vertical\n");
  std::printf("==============================================================\n\n");

  std::printf("(a) load balance (cells per thread, %zux%zu grid, %zu threads)\n",
              kRows, kCols, kThreads);
  for (const auto& [name, split] :
       {std::pair{"horizontal", parallel::GridSplit::Horizontal},
        std::pair{"vertical", parallel::GridSplit::Vertical}}) {
    const auto regions = parallel::grid_partition(kRows, kCols, kThreads, split);
    std::size_t min_cells = SIZE_MAX, max_cells = 0;
    for (const auto& region : regions) {
      const std::size_t cells = region.rows.size() * region.cols.size();
      min_cells = std::min(min_cells, cells);
      max_cells = std::max(max_cells, cells);
    }
    std::printf("  %-12s min %zu, max %zu (imbalance %.2f%%)\n", name, min_cells,
                max_cells, 100.0 * (max_cells - min_cells) / max_cells);
  }

  std::printf("\n(b) one thread's cache behaviour over its band (32 KiB, 64 B blocks)\n");
  std::printf("%-12s %10s %14s\n", "split", "hit rate", "spatial frac");
  for (const auto& [name, split] :
       {std::pair{"horizontal", parallel::GridSplit::Horizontal},
        std::pair{"vertical", parallel::GridSplit::Vertical}}) {
    const auto regions = parallel::grid_partition(kRows, kCols, kThreads, split);
    const memhier::Trace trace = band_trace(regions[0], kCols);
    memhier::CacheConfig cfg{.block_bytes = 64, .num_lines = 512, .associativity = 4};
    memhier::Cache cache(cfg);
    const memhier::CacheStats stats = replay(cache, trace);
    const memhier::LocalityReport loc = analyze_locality(trace, 64);
    std::printf("%-12s %9.1f%% %13.2f\n", name, 100 * stats.hit_rate(),
                loc.spatial_fraction);
    json.metric(std::string(name) + "_band_hit_rate", stats.hit_rate());
    json.metric(std::string(name) + "_spatial_fraction", loc.spatial_fraction);
  }
  std::printf("  note: within a band both orders scan rows, but a vertical band's\n"
              "  rows are short (cols/threads), so each row change is a %zu-byte\n"
              "  jump — more blocks touched per cell, worse block reuse at the\n"
              "  band edges.\n",
              kCols * 4);

  std::printf("\n(c) correctness cross-check at 256x256, 8 threads, 5 generations\n");
  const life::Grid initial = life::Grid::random(kRows, kCols, 0.3, 31);
  life::SerialLife serial(initial);
  life::ParallelLife horizontal(initial, kThreads, parallel::GridSplit::Horizontal);
  life::ParallelLife vertical(initial, kThreads, parallel::GridSplit::Vertical);
  serial.run(5);
  horizontal.run(5);
  vertical.run(5);
  std::printf("  horizontal == serial: %s; vertical == serial: %s\n",
              horizontal.grid() == serial.grid() ? "yes" : "NO",
              vertical.grid() == serial.grid() ? "yes" : "NO");
  json.metric("grids_match_serial",
              horizontal.grid() == serial.grid() && vertical.grid() == serial.grid());
  return horizontal.grid() == serial.grid() && vertical.grid() == serial.grid() ? 0 : 1;
}
