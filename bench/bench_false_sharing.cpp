// Extension bench — false sharing, the concrete face of the paper's
// "resource contention can reduce observed speedup": (a) the MSI model
// counts the invalidation ping-pong of adjacent per-thread counters vs
// cache-line-padded ones; (b) real threads time both layouts.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "memhier/coherence.hpp"

namespace {

// (b) real-thread layouts.
struct Packed {
  std::atomic<std::uint64_t> counters[4];
};
struct Padded {
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value;
  };
  Slot counters[4];
};

template <typename Layout, typename Get>
double time_layout(Layout& layout, Get get, unsigned threads, std::uint64_t per_thread) {
  using clock = std::chrono::steady_clock;
  std::vector<std::thread> workers;
  const auto t0 = clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& counter = get(layout, t);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        counter.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return std::chrono::duration<double>(clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs31::memhier;
  cs31::bench::JsonReport json("false_sharing", argc, argv);
  json.workload("adjacent vs padded per-thread counters: MSI model + real threads");
  json.config("threads", 4);
  json.config("increments_per_thread", 2'000'000);

  std::printf("==============================================================\n");
  std::printf("False sharing: adjacent vs padded per-thread counters\n");
  std::printf("==============================================================\n\n");

  std::printf("(a) MSI protocol model, 4 cores, 10k increments each\n");
  std::printf("%-22s %10s %14s %12s\n", "layout", "hit rate", "invalidations",
              "bus traffic");
  {
    MsiSystem adjacent(4, 64);
    MsiSystem padded(4, 64);
    for (int i = 0; i < 10000; ++i) {
      for (unsigned core = 0; core < 4; ++core) {
        adjacent.access(core, core * 8, true);    // all in one 64 B block
        padded.access(core, core * 64, true);     // one block per core
      }
    }
    for (const auto& [name, sys] :
         {std::pair<const char*, const MsiSystem*>{"adjacent (one block)", &adjacent},
          std::pair<const char*, const MsiSystem*>{"padded (64 B apart)", &padded}}) {
      std::printf("%-22s %9.1f%% %14llu %12llu\n", name, 100 * sys->stats().hit_rate(),
                  static_cast<unsigned long long>(sys->stats().invalidations),
                  static_cast<unsigned long long>(sys->stats().bus_reads +
                                                  sys->stats().bus_read_exclusives));
    }
    json.metric("msi_invalidations_adjacent", adjacent.stats().invalidations);
    json.metric("msi_invalidations_padded", padded.stats().invalidations);
  }

  std::printf("\n(b) real threads on this host (4 threads x 2M increments)\n");
  const unsigned cores = std::thread::hardware_concurrency();
  constexpr std::uint64_t kPer = 2'000'000;
  Packed packed{};
  Padded padded{};
  const double t_packed = time_layout(
      packed, [](Packed& p, unsigned t) -> std::atomic<std::uint64_t>& {
        return p.counters[t];
      },
      4, kPer);
  const double t_padded = time_layout(
      padded, [](Padded& p, unsigned t) -> std::atomic<std::uint64_t>& {
        return p.counters[t].value;
      },
      4, kPer);
  std::printf("%-22s %10.4f s\n", "adjacent", t_packed);
  std::printf("%-22s %10.4f s  (%.2fx)\n", "padded", t_padded, t_packed / t_padded);
  std::printf("  note: the gap needs multiple hardware cores to appear; this host\n"
              "  has %u. The MSI model in (a) shows the mechanism either way.\n",
              cores);
  json.config("hardware_cores", cores);
  json.metric("adjacent_seconds", t_packed);
  json.metric("padded_seconds", t_padded);
  json.metric("padded_speedup", t_packed / t_padded);
  return 0;
}
