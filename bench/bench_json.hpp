// Uniform machine-readable output for every bench_* target.
//
// Each bench main constructs one JsonReport from its argv; the report
// swallows the two harness flags so the bench's own flag parsing (if
// any) never sees them:
//
//   --json[=DIR]       enable JSON output; write BENCH_<name>.json into
//                      DIR (default: the current directory)
//   --timestamp=TEXT   opaque run timestamp recorded verbatim — passed
//                      in by the harness so reports are reproducible
//                      and the benches stay clock-free
//
// The schema is fixed across all benches:
//
//   {
//     "bench": "<name>",
//     "workload": "<one-line description of what was measured>",
//     "timestamp": "<harness-provided, may be empty>",
//     "config": { ... },     // knobs: sizes, thread counts, policies
//     "metrics": { ... }     // results: seconds, rates, counts
//   }
//
// config/metric calls are cheap no-ops when --json is absent, so the
// human-readable tables stay the primary interface and the JSON rides
// along. Keys keep insertion order. Non-finite doubles serialize as
// null (JSON has no NaN/inf).
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cs31::bench {

class JsonReport {
 public:
  /// Parses and removes `--json[=DIR]` and `--timestamp=TEXT` from
  /// argv (adjusting argc), so later argv scans in the bench see only
  /// their own flags.
  JsonReport(std::string name, int& argc, char** argv) : name_(std::move(name)) {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--json") == 0) {
        enabled_ = true;
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        enabled_ = true;
        dir_ = arg + 7;
      } else if (std::strncmp(arg, "--timestamp=", 12) == 0) {
        timestamp_ = arg + 12;
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  /// Writes on destruction if `write()` was never called explicitly.
  ~JsonReport() {
    if (enabled_ && !written_) write();
  }

  [[nodiscard]] bool enabled() const { return enabled_; }

  void workload(std::string description) { workload_ = std::move(description); }

  void config(const std::string& key, const std::string& value) {
    add(config_, key, quote(value));
  }
  void config(const std::string& key, const char* value) {
    add(config_, key, quote(value));
  }
  void config(const std::string& key, double value) { add(config_, key, number(value)); }
  void config(const std::string& key, bool value) {
    add(config_, key, value ? "true" : "false");
  }
  template <typename Int, typename = std::enable_if_t<std::is_integral_v<Int>>>
  void config(const std::string& key, Int value) {
    add(config_, key, integer(value));
  }

  void metric(const std::string& key, const std::string& value) {
    add(metrics_, key, quote(value));
  }
  void metric(const std::string& key, const char* value) {
    add(metrics_, key, quote(value));
  }
  void metric(const std::string& key, double value) { add(metrics_, key, number(value)); }
  void metric(const std::string& key, bool value) {
    add(metrics_, key, value ? "true" : "false");
  }
  template <typename Int, typename = std::enable_if_t<std::is_integral_v<Int>>>
  void metric(const std::string& key, Int value) {
    add(metrics_, key, integer(value));
  }

  /// Writes BENCH_<name>.json (no-op unless --json was given). Returns
  /// false when the file could not be opened.
  bool write() {
    written_ = true;
    if (!enabled_) return true;
    const std::string path = dir_ + "/BENCH_" + name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"bench\": %s,\n  \"workload\": %s,\n  \"timestamp\": %s,\n",
                 quote(name_).c_str(), quote(workload_).c_str(),
                 quote(timestamp_).c_str());
    emit(out, "config", config_);
    std::fprintf(out, ",\n");
    emit(out, "metrics", metrics_);
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("\n[json] wrote %s\n", path.c_str());
    return true;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  static void add(Fields& fields, const std::string& key, std::string encoded) {
    for (auto& [k, v] : fields) {
      if (k == key) {
        v = std::move(encoded);  // last write wins, order kept
        return;
      }
    }
    fields.emplace_back(key, std::move(encoded));
  }

  static std::string quote(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static std::string number(double value) {
    if (!std::isfinite(value)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
  }

  template <typename Int>
  static std::string integer(Int value) {
    char buf[32];
    if constexpr (std::is_signed_v<Int>) {
      std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(value));
    } else {
      std::snprintf(buf, sizeof buf, "%" PRIu64, static_cast<std::uint64_t>(value));
    }
    return buf;
  }

  static void emit(std::FILE* out, const char* section, const Fields& fields) {
    std::fprintf(out, "  \"%s\": {", section);
    const char* sep = "\n";
    for (const auto& [key, value] : fields) {
      std::fprintf(out, "%s    %s: %s", sep, quote(key).c_str(), value.c_str());
      sep = ",\n";
    }
    std::fprintf(out, fields.empty() ? "}" : "\n  }");
  }

  std::string name_;
  std::string workload_;
  std::string timestamp_;
  std::string dir_ = ".";
  Fields config_;
  Fields metrics_;
  bool enabled_ = false;
  bool written_ = false;
};

}  // namespace cs31::bench
