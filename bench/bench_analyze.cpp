// Static-analysis throughput: how fast cs31::analyze turns programs
// into findings, at both levels it owns.
//
// (a) mini-C: a synthesized program of realistic functions (loops,
//     branches, short-circuit conditions) through the full
//     analyze_program pass stack — CFG build, forward init lattice,
//     backward liveness, reachability, constant folding, return-path
//     check — reported as functions/s.
// (b) teaching ISA: lint_image over a deep maze image and over the
//     compiled image of the same mini-C program — CFG + leaders,
//     callee-save summaries, register-state and stack-depth lattices,
//     coverage — reported as instructions/s.
//
// (c) concurrency: analyze_scripts over a seeded generate_script corpus
//     — per-thread lockset interpretation, barrier epochs, the wait-
//     order graph, every check — reported as scripts/s, plus the prune
//     ratio the static facts buy the DPOR explorer on a lock-
//     disciplined corpus (unpruned vs seeded blocking exploration).
//
// Numbers answer the practical course question: is the analyzer cheap
// enough to run on every compile (it sits on by default in the ccomp
// pipeline), on every `lint` in the debugger, and on every script
// submission before exploration? --json emits BENCH_analyze.json and
// BENCH_analyze_concur.json for the harness.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analyze/checks_c.hpp"
#include "analyze/checks_isa.hpp"
#include "analyze/checks_script.hpp"
#include "bench_json.hpp"
#include "ccomp/codegen.hpp"
#include "ccomp/parser.hpp"
#include "isa/assembler.hpp"
#include "isa/maze.hpp"
#include "race/explore.hpp"

namespace {

using namespace cs31;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// A program of `count` distinct functions with the statement mix the
/// checks actually work on: nested control flow, short-circuit
/// conditions, a call, and enough locals to make the lattices earn
/// their keep. Every function is clean — we measure analysis, not
/// rendering.
std::string synthesize_mini_c(int count) {
  std::string src = "int leaf(int a, int b) { return a * 3 + b; }\n";
  for (int k = 0; k < count; ++k) {
    const std::string name = "worker_" + std::to_string(k);
    src +=
        "int " + name + "(int a, int b) {\n"
        "  int s = 0;\n"
        "  int i = 0;\n"
        "  while (i < a) {\n"
        "    if ((i & 1) && b > 0 || i > 100) { s = s + leaf(i, b); }\n"
        "    else { s = s - b; }\n"
        "    i = i + 1;\n"
        "  }\n"
        "  if (s < 0) { s = 0 - s; }\n"
        "  return s;\n"
        "}\n";
  }
  src += "int main(int a, int b) { return worker_0(a, b); }\n";
  return src;
}

}  // namespace

int main(int argc, char** argv) {
  // JsonReport strips --json/--timestamp from argv; keep a copy so the
  // second report (the concur section) sees the same flags.
  std::vector<char*> argv_concur(argv, argv + argc);
  int argc_concur = argc;
  cs31::bench::JsonReport json("analyze", argc, argv);
  json.workload("cs31::analyze throughput: mini-C functions/s and ISA instructions/s");

  const int kFunctions = 60;
  const int kCReps = 50;
  const int kIsaReps = 50;
  const unsigned kMazeFloors = 16;
  json.config("functions", kFunctions);
  json.config("c_reps", kCReps);
  json.config("isa_reps", kIsaReps);
  json.config("maze_floors", kMazeFloors);

  std::printf("=========================================================\n");
  std::printf("cs31::analyze throughput (on-by-default budget check)\n");
  std::printf("=========================================================\n\n");

  // (a) mini-C pass stack.
  const std::string source = synthesize_mini_c(kFunctions);
  const cc::ProgramAst program = cc::parse(source);
  std::size_t findings = 0;
  const auto c_start = std::chrono::steady_clock::now();
  for (int r = 0; r < kCReps; ++r) {
    findings += analyze::analyze_program(program).size();
  }
  const double c_secs = seconds_since(c_start);
  const double fn_total = static_cast<double>(program.functions.size()) * kCReps;
  const double fns_per_sec = fn_total / c_secs;
  std::printf("mini-C   : %4zu functions x %d reps  %8.3f s  %12.0f functions/s\n",
              program.functions.size(), kCReps, c_secs, fns_per_sec);
  if (findings != 0) {
    std::fprintf(stderr, "FAIL: the synthesized corpus should analyze clean\n");
    return 1;
  }
  json.metric("c_seconds", c_secs);
  json.metric("c_functions_per_sec", fns_per_sec);

  // (b) ISA lint, over a maze and over the compiled corpus.
  const isa::Maze maze(kMazeFloors);
  const isa::Image compiled = cc::compile(source);
  const std::size_t instr_total = maze.image().instruction_count() + compiled.instruction_count();
  std::size_t isa_findings = 0;
  const auto isa_start = std::chrono::steady_clock::now();
  for (int r = 0; r < kIsaReps; ++r) {
    isa_findings += analyze::lint_image(maze.image()).size();
    isa_findings += analyze::lint_image(compiled).size();
  }
  const double isa_secs = seconds_since(isa_start);
  const double instrs_per_sec = static_cast<double>(instr_total) * kIsaReps / isa_secs;
  std::printf("ISA lint : %4zu instrs    x %d reps  %8.3f s  %12.0f instructions/s\n",
              instr_total, kIsaReps, isa_secs, instrs_per_sec);
  if (isa_findings != 0) {
    std::fprintf(stderr, "FAIL: the maze and the compiled corpus should lint clean\n");
    return 1;
  }
  json.metric("isa_instructions", instr_total);
  json.metric("isa_seconds", isa_secs);
  json.metric("isa_instructions_per_sec", instrs_per_sec);

  if (!json.write()) return 1;

  // (c) concurrency checks + the pruning they buy.
  cs31::bench::JsonReport concur_json("analyze_concur", argc_concur, argv_concur.data());
  concur_json.workload(
      "analyze_scripts throughput (scripts/s) and DPOR prune ratio on a "
      "lock-disciplined corpus");

  std::printf("\n---------------------------------------------------------\n");
  std::printf("concurrency: static script analysis + exploration pruning\n");
  std::printf("---------------------------------------------------------\n\n");

  // Throughput over a mixed corpus: the same shapes the differential
  // tier uses (plain, barriers, lock cycles, channel misuse), repeated
  // until the clock can see it.
  const int kScriptSeeds = 200;
  const int kScriptReps = 10;
  concur_json.config("script_seeds", kScriptSeeds);
  concur_json.config("script_reps", kScriptReps);
  std::vector<std::vector<std::vector<std::string>>> corpus;
  corpus.reserve(kScriptSeeds);
  for (int s = 0; s < kScriptSeeds; ++s) {
    race::ScriptGenConfig config;
    config.threads = 2 + s % 2;
    config.ops_per_thread = 4;
    config.barriers = s % 4 == 1;
    config.lock_cycles = s % 4 == 2;
    config.channel_misuse = s % 4 == 3;
    if (config.lock_cycles) config.locks = 2;
    corpus.push_back(race::generate_script(static_cast<std::uint64_t>(s), config));
  }
  std::size_t concur_findings = 0;
  const auto concur_start = std::chrono::steady_clock::now();
  for (int r = 0; r < kScriptReps; ++r) {
    for (const auto& scripts : corpus) {
      concur_findings += analyze::analyze_scripts(scripts).diagnostics.size();
    }
  }
  const double concur_secs = seconds_since(concur_start);
  const double scripts_per_sec =
      static_cast<double>(kScriptSeeds) * kScriptReps / concur_secs;
  std::printf("scripts  : %4d scripts   x %d reps  %8.3f s  %12.0f scripts/s\n",
              kScriptSeeds, kScriptReps, concur_secs, scripts_per_sec);
  if (concur_findings == 0) {
    std::fprintf(stderr, "FAIL: the mixed script corpus should produce findings\n");
    return 1;
  }
  concur_json.metric("concur_seconds", concur_secs);
  concur_json.metric("scripts_per_sec", scripts_per_sec);

  // Prune ratio: blocking exploration with and without the summary's
  // independence facts, over the corpus the analyzer can prove
  // disciplined (one consistent guard per shared variable).
  const int kPruneSeeds = 100;
  concur_json.config("prune_seeds", kPruneSeeds);
  std::uint64_t unpruned_schedules = 0, pruned_schedules = 0;
  for (int s = 0; s < kPruneSeeds; ++s) {
    race::ScriptGenConfig config;
    config.threads = 2;
    config.ops_per_thread = 4;
    config.locks = 2;
    config.channels = 0;
    config.lock_discipline = true;
    const auto scripts = race::generate_script(static_cast<std::uint64_t>(s), config);
    race::ExploreOptions plain;
    plain.model_blocking = true;
    unpruned_schedules += race::explore_races(scripts, plain).schedules_replayed;
    const auto seeded = analyze::seed_explore_options(analyze::analyze_scripts(scripts));
    pruned_schedules += race::explore_races(scripts, seeded).schedules_replayed;
  }
  const double prune_ratio =
      static_cast<double>(unpruned_schedules) / static_cast<double>(pruned_schedules);
  std::printf("pruning  : %6llu schedules -> %llu with static facts  (%.2fx)\n",
              static_cast<unsigned long long>(unpruned_schedules),
              static_cast<unsigned long long>(pruned_schedules), prune_ratio);
  if (prune_ratio < 2.0) {
    std::fprintf(stderr, "FAIL: disciplined-corpus prune ratio below the 2x floor\n");
    return 1;
  }
  concur_json.metric("unpruned_schedules", unpruned_schedules);
  concur_json.metric("pruned_schedules", pruned_schedules);
  concur_json.metric("prune_ratio", prune_ratio);

  std::printf("\nall levels clean; analysis cost is per-compile noise, not a tax\n");
  return concur_json.write() ? 0 : 1;
}
