// Experiment E3 — Lab 10's headline result: "near linear speedup up to
// 16 threads" for the parallel Game of Life.
//
// Two measurements:
//  (a) the deterministic MulticoreModel (a 512x512 grid priced in work
//      cycles with barrier/critical-section/contention costs), which
//      reproduces the paper's shape on any host; and
//  (b) real std::thread wall-clock on this machine, reported with the
//      host's core count — on a 1-core CI box this is expected to stay
//      flat (the model is the substitution documented in DESIGN.md).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_json.hpp"
#include "life/life.hpp"
#include "parallel/speedup.hpp"

namespace {

double wall_seconds_for(const cs31::life::Grid& initial, std::size_t threads,
                        std::size_t generations) {
  using clock = std::chrono::steady_clock;
  cs31::life::ParallelLife sim(initial, threads);
  const auto t0 = clock::now();
  sim.run(generations);
  return std::chrono::duration<double>(clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cs31;
  cs31::bench::JsonReport json("life_speedup", argc, argv);
  json.workload("parallel Life speedup: 16-core model + real threads on this host");
  json.config("model_grid", "512x512");
  json.config("real_grid", "128x128");

  std::printf("==============================================================\n");
  std::printf("E3: parallel Game of Life speedup, 1..16 threads (Lab 10)\n");
  std::printf("==============================================================\n\n");

  // (a) Simulated 16-core machine, 512x512 grid, 100 generations.
  parallel::WorkloadModel model;
  model.total_work = 512ull * 512ull * 100ull;  // cell updates
  model.rounds = 100;                           // one barrier pair per generation
  model.serial_work = 512ull * 512ull / 100;    // setup + per-run serial swap cost
  model.barrier_cost = 400;                     // cycles per barrier stage
  model.critical_section = 60;                  // stats mutex per thread per round
  model.contention_factor = 0.004;              // shared-memory bandwidth pressure

  std::printf("(a) simulated 16-core machine, 512x512 grid, 100 generations\n");
  std::printf("%8s %14s %9s %11s\n", "threads", "model cycles", "speedup", "efficiency");
  const double t1 = parallel::modeled_time(model, 1);
  for (unsigned p = 1; p <= 16; ++p) {
    const double tp = parallel::modeled_time(model, p);
    std::printf("%8u %14.0f %8.2fx %10.1f%%\n", p, tp, t1 / tp, 100.0 * t1 / tp / p);
  }
  const double s16 = parallel::modeled_speedup(model, 16);
  std::printf("  -> 16-thread speedup %.2fx (paper: near-linear up to 16 threads)\n\n",
              s16);
  json.metric("modeled_speedup_16_threads", s16);

  // (b) Real threads on this host.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("(b) real std::thread wall-clock on this host (%u hardware core%s)\n",
              cores, cores == 1 ? "" : "s");
  const life::Grid initial = life::Grid::random(128, 128, 0.35, 42);
  const double base = wall_seconds_for(initial, 1, 40);
  std::printf("%8s %12s %9s\n", "threads", "seconds", "speedup");
  for (const std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    const double t = wall_seconds_for(initial, p, 40);
    std::printf("%8zu %12.4f %8.2fx\n", p, t, base / t);
    json.metric("real_speedup_" + std::to_string(p) + "_threads", base / t);
  }
  json.config("hardware_cores", cores);
  std::printf(
      "  note: with %u hardware core%s, real speedup cannot exceed ~%u; the\n"
      "  model in (a) is the paper-shape reproduction (DESIGN.md, E3).\n",
      cores, cores == 1 ? "" : "s", cores);

  return s16 > 12.0 ? 0 : 1;  // "near linear": >= 75% efficiency at 16
}
