// Ablation — page-replacement policy (the course teaches LRU; FIFO and
// Clock quantify the design choice): fault rates across workload shapes
// under tight RAM.
#include <cstdio>

#include "bench_json.hpp"
#include "vm/paging.hpp"

namespace {

using namespace cs31::vm;

double fault_rate(PageReplacement policy, int workload, std::uint32_t frames) {
  PagingConfig cfg;
  cfg.page_bytes = 256;
  cfg.virtual_pages = 32;
  cfg.physical_frames = frames;
  cfg.replacement = policy;
  PagingSystem vm(cfg);
  vm.create_process();
  std::uint32_t state = 12345;
  auto rnd = [&](std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  };
  for (int i = 0; i < 4000; ++i) {
    std::uint32_t page = 0;
    switch (workload) {
      case 0:  // 80/20 hot-set
        page = rnd(10) < 8 ? rnd(frames - 1) : frames + rnd(16);
        break;
      case 1:  // sequential loop one page larger than RAM (anti-LRU)
        page = static_cast<std::uint32_t>(i) % (frames + 1);
        break;
      case 2:  // uniform random over 2x RAM
        page = rnd(2 * frames);
        break;
    }
    vm.access(page * 256 + rnd(256), rnd(4) == 0);
  }
  return vm.stats().fault_rate();
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("ablation_vm", argc, argv);
  json.workload("page replacement fault rates across hot-set/loop/uniform workloads");
  json.config("frames", 8);
  json.config("accesses", 4000);
  std::printf("==============================================================\n");
  std::printf("Ablation: page replacement (LRU vs FIFO vs Clock), 8 frames\n");
  std::printf("==============================================================\n\n");
  std::printf("%8s %12s %14s %12s\n", "policy", "hot-set", "loop (RAM+1)", "uniform");
  for (const auto& [name, policy] : {std::pair{"LRU", PageReplacement::Lru},
                                    std::pair{"FIFO", PageReplacement::Fifo},
                                    std::pair{"Clock", PageReplacement::Clock}}) {
    const double hot = fault_rate(policy, 0, 8);
    std::printf("%8s %11.1f%% %13.1f%% %11.1f%%\n", name, 100 * hot,
                100 * fault_rate(policy, 1, 8), 100 * fault_rate(policy, 2, 8));
    json.metric(std::string(name) + "_hot_set_fault_rate", hot);
  }
  std::printf(
      "\nshape: LRU/Clock protect the hot set (recency matters); the loop one\n"
      "page bigger than RAM faults on every access under LRU/FIFO — Belady's\n"
      "anomaly territory — and Clock approximates LRU at a fraction of the\n"
      "bookkeeping, which is why real kernels use it.\n");
  return 0;
}
