// Experiment E6 — "TLB caching of address translations to speed-up
// effective memory access time" plus page-fault handling: EAT sweeps
// over TLB hit ratio and fault rate, and a trace-driven two-process
// workload with context switches and LRU replacement (the VM2 homework
// at benchmark scale).
#include <cstdio>

#include "bench_json.hpp"
#include "vm/paging.hpp"
#include "vm/tlb.hpp"

int main(int argc, char** argv) {
  using namespace cs31::vm;
  cs31::bench::JsonReport json("vm_eat", argc, argv);
  json.workload("EAT vs TLB hit ratio and fault rate; two-process paging trace");

  std::printf("==============================================================\n");
  std::printf("E6: effective access time with TLB and demand paging\n");
  std::printf("==============================================================\n\n");

  const double mem_ns = 100, tlb_ns = 1, fault_ns = 8e6;
  json.config("mem_ns", mem_ns);
  json.config("tlb_ns", tlb_ns);
  json.config("fault_ns", fault_ns);
  json.metric("eat_ns_tlb_hit_98_no_faults",
              effective_access_time_ns(0.98, 0, mem_ns, tlb_ns, fault_ns));
  json.metric("eat_ns_tlb_hit_98_fault_1e4",
              effective_access_time_ns(0.98, 1e-4, mem_ns, tlb_ns, fault_ns));

  std::printf("(a) EAT vs TLB hit ratio (no faults; mem=%.0fns tlb=%.0fns)\n", mem_ns,
              tlb_ns);
  std::printf("%12s %12s %10s\n", "TLB hit", "EAT (ns)", "slowdown");
  const double best = effective_access_time_ns(1.0, 0, mem_ns, tlb_ns, fault_ns);
  for (const double hit : {1.0, 0.99, 0.95, 0.9, 0.8, 0.5, 0.0}) {
    const double eat = effective_access_time_ns(hit, 0, mem_ns, tlb_ns, fault_ns);
    std::printf("%11.0f%% %12.1f %9.2fx\n", hit * 100, eat, eat / best);
  }

  std::printf("\n(b) EAT vs page-fault rate (TLB hit 98%%; fault=%.0fms)\n",
              fault_ns / 1e6);
  std::printf("%12s %14s\n", "fault rate", "EAT (ns)");
  for (const double fr : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
    std::printf("%12g %14.1f\n", fr,
                effective_access_time_ns(0.98, fr, mem_ns, tlb_ns, fault_ns));
  }
  std::printf("  (the course's point: even tiny fault rates dominate EAT)\n");

  std::printf("\n(c) trace-driven two-process workload, LRU frames, TLB on/off\n");
  std::printf("%10s %10s %10s %12s %12s %10s\n", "TLB", "accesses", "faults",
              "evictions", "TLB hit", "switches");
  for (const std::uint32_t tlb_entries : {0u, 8u}) {
    PagingConfig cfg;
    cfg.page_bytes = 256;
    cfg.virtual_pages = 64;
    cfg.physical_frames = 24;
    cfg.tlb_entries = tlb_entries;
    PagingSystem vm(cfg);
    const std::uint32_t a = vm.create_process();
    const std::uint32_t b = vm.create_process();
    // Each process repeatedly sweeps a 16-page working set; the kernel
    // context-switches between them every 64 accesses.
    std::uint32_t next = 0;
    for (int quantum = 0; quantum < 64; ++quantum) {
      vm.switch_to(quantum % 2 == 0 ? a : b);
      for (int i = 0; i < 64; ++i) {
        vm.access((next % (16 * 256 / 4)) * 4, i % 7 == 0);
        next += 13;
      }
    }
    const VmStats& s = vm.stats();
    std::printf("%10s %10llu %10llu %12llu %11.1f%% %10llu\n",
                tlb_entries == 0 ? "off" : "8-entry",
                static_cast<unsigned long long>(s.accesses),
                static_cast<unsigned long long>(s.page_faults),
                static_cast<unsigned long long>(s.evictions),
                vm.tlb_stats() ? 100 * vm.tlb_stats()->hit_rate() : 0.0,
                static_cast<unsigned long long>(s.context_switches));
    const char* key = tlb_entries == 0 ? "tlb_off" : "tlb_8";
    json.metric(std::string(key) + "_page_faults", s.page_faults);
    json.metric(std::string(key) + "_hit_rate",
                vm.tlb_stats() ? vm.tlb_stats()->hit_rate() : 0.0);
  }
  std::printf(
      "\nshape check: TLB turns most translations into hits while faults and\n"
      "context-switch counts are unchanged (translation is orthogonal to paging).\n");
  return 0;
}
