// Exhaustive replay vs detector-guided DPOR exploration: the
// measurement behind race::Explorer's reason to exist.
//
//   (a) head-to-head     the race_detective Act 7 script (C(14,7) =
//                        3432 interleavings, 2 distinct races): replay
//                        every schedule, then let the explorer replay
//                        one representative per equivalence class.
//                        Same verdict required; the schedule ratio is
//                        the reduction the perf-smoke floor guards.
//   (b) corpus           seeded generated scripts (the differential
//                        tier's generator): per-seed reduction table
//                        with verdict equality asserted on every row.
//   (c) over the wall    a 4-thread script whose interleaving count
//                        saturates uint64 (far beyond 10^9 — the
//                        exhaustive path could not even start). The
//                        explorer, budgeted and hint-guided, finds the
//                        planted race in a handful of schedules and
//                        reports its partial coverage honestly.
//
// Usage: bench_replay_explore [--perf-smoke] [--json[=DIR]] [--timestamp=T]
//   --perf-smoke   assert the >=10x schedule-reduction floor at equal
//                  distinct-race coverage, and that the budgeted
//                  monster run finds the planted race; nonzero exit on
//                  violation (the tier-1 ctest entry).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "race/explore.hpp"
#include "race/replay.hpp"

namespace {

using cs31::race::ExploreOptions;
using cs31::race::ExploreResult;
using cs31::race::RaceReport;
using cs31::race::ReplayResult;
using cs31::race::ScriptGenConfig;

double seconds_since(std::chrono::steady_clock::time_point begin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
}

std::set<std::string> key_set(const std::vector<RaceReport>& races) {
  std::set<std::string> keys;
  for (const RaceReport& r : races) {
    keys.insert(cs31::race::race_pair_key(r.variable, r.first, r.second));
  }
  return keys;
}

std::vector<std::vector<std::string>> act7_script() {
  return {
      {"read a", "write a", "lock m", "write z", "unlock m", "read a", "write a"},
      {"read b", "write b", "read z", "write z", "read b", "write b", "write b"},
  };
}

/// 4 threads, ~40 ops each, almost all thread-private, plus a shared
/// lock-protected section per thread and one UNPROTECTED write pair on
/// `racy` in threads 0 and 1. The interleaving count saturates uint64.
std::vector<std::vector<std::string>> monster_script() {
  std::vector<std::vector<std::string>> scripts(4);
  for (std::size_t t = 0; t < 4; ++t) {
    const std::string p = "write p" + std::to_string(t);
    for (int i = 0; i < 20; ++i) scripts[t].push_back(p);
    scripts[t].push_back("lock m0");
    scripts[t].push_back("write guarded");
    scripts[t].push_back("unlock m0");
    if (t < 2) scripts[t].push_back("write racy");
    for (int i = 0; i < 20; ++i) scripts[t].push_back(p);
  }
  return scripts;
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("replay_explore", argc, argv);
  json.workload(
      "exhaustive interleaving replay vs DPOR exploration: schedule reduction at equal "
      "distinct-race coverage, plus a budgeted saturated-space run");

  bool perf_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-smoke") == 0) perf_smoke = true;
  }
  json.config("perf_smoke", perf_smoke);
  const std::size_t workers = 4;
  json.config("explorer_workers", workers);

  bool equal_verdicts = true;

  // (a) head-to-head on the Act 7 script ----------------------------------
  const auto act7 = act7_script();
  auto begin = std::chrono::steady_clock::now();
  const std::vector<ReplayResult> exhaustive = cs31::race::replay_all_interleavings(act7, 10000);
  const double exhaustive_s = seconds_since(begin);
  std::uint64_t exhaustive_events = 0;
  for (const ReplayResult& r : exhaustive) exhaustive_events += r.events;
  const auto exhaustive_keys = key_set(cs31::race::distinct_races(exhaustive));

  ExploreOptions opts;
  opts.workers = workers;
  begin = std::chrono::steady_clock::now();
  const ExploreResult explored = cs31::race::explore_races(act7, opts);
  const double explored_s = seconds_since(begin);
  equal_verdicts = equal_verdicts && key_set(explored.races) == exhaustive_keys;

  const double ratio = static_cast<double>(exhaustive.size()) /
                       static_cast<double>(explored.schedules_replayed);
  std::printf("(a) Act 7 head-to-head (%zu interleavings, %zu distinct races)\n",
              exhaustive.size(), exhaustive_keys.size());
  std::printf("    exhaustive %6zu schedules  %9.0f events/s\n", exhaustive.size(),
              static_cast<double>(exhaustive_events) / exhaustive_s);
  std::printf("    explorer   %6" PRIu64 " schedules  %9.0f events/s   (%s)\n",
              explored.schedules_replayed,
              static_cast<double>(explored.events_replayed) / explored_s,
              explored.summary().c_str());
  std::printf("    reduction  %.0fx fewer schedules, verdicts %s\n\n", ratio,
              equal_verdicts ? "identical" : "DIVERGED");
  json.metric("act7_exhaustive_schedules", static_cast<std::uint64_t>(exhaustive.size()));
  json.metric("act7_explorer_schedules", explored.schedules_replayed);
  json.metric("act7_reduction_ratio", ratio);
  json.metric("act7_exhaustive_events_per_s",
              static_cast<double>(exhaustive_events) / exhaustive_s);
  json.metric("act7_explorer_events_per_s",
              static_cast<double>(explored.events_replayed) / explored_s);

  // (b) seeded corpus reduction table --------------------------------------
  struct Row {
    std::uint64_t seed;
    ScriptGenConfig cfg;
  };
  std::vector<Row> rows;
  for (std::uint64_t seed = 1; seed <= (perf_smoke ? 4u : 8u); ++seed) {
    rows.push_back({seed, {.threads = 2, .ops_per_thread = 5}});
  }
  for (std::uint64_t seed = 11; seed <= (perf_smoke ? 12u : 14u); ++seed) {
    rows.push_back({seed, {.threads = 3, .ops_per_thread = 3}});
  }
  std::uint64_t corpus_exhaustive = 0;
  std::uint64_t corpus_explored = 0;
  std::printf("(b) seeded corpus (threads x ops): exhaustive vs DPOR schedules\n");
  for (const Row& row : rows) {
    const auto scripts = cs31::race::generate_script(row.seed, row.cfg);
    const auto full = cs31::race::replay_all_interleavings(scripts, 200000);
    const ExploreResult res = cs31::race::explore_races(scripts, opts);
    const bool same = key_set(res.races) == key_set(cs31::race::distinct_races(full));
    equal_verdicts = equal_verdicts && same;
    corpus_exhaustive += full.size();
    corpus_explored += res.schedules_replayed;
    std::printf("    seed %2" PRIu64 " (%zux%zu)  %6zu -> %4" PRIu64
                "  (%zu race(s), verdicts %s)\n",
                row.seed, row.cfg.threads, row.cfg.ops_per_thread, full.size(),
                res.schedules_replayed, res.races.size(), same ? "identical" : "DIVERGED");
  }
  const double corpus_ratio =
      static_cast<double>(corpus_exhaustive) / static_cast<double>(corpus_explored);
  std::printf("    total %" PRIu64 " -> %" PRIu64 " schedules (%.0fx reduction)\n\n",
              corpus_exhaustive, corpus_explored, corpus_ratio);
  json.metric("corpus_exhaustive_schedules", corpus_exhaustive);
  json.metric("corpus_explorer_schedules", corpus_explored);
  json.metric("corpus_reduction_ratio", corpus_ratio);
  json.metric("equal_verdicts", equal_verdicts);

  // (c) the saturated space, budgeted and guided ---------------------------
  const auto monster = monster_script();
  ExploreOptions budgeted = opts;
  budgeted.max_schedules = 200;
  RaceReport hint;
  hint.variable = "racy";
  hint.first.where = "t0 write racy";
  hint.second.where = "t1 write racy";
  budgeted.hints.push_back(hint);
  begin = std::chrono::steady_clock::now();
  const ExploreResult big = cs31::race::explore_races(monster, budgeted);
  const double big_s = seconds_since(begin);
  bool found_planted = false;
  for (const RaceReport& r : big.races) found_planted = found_planted || r.variable == "racy";
  std::printf("(c) saturated space under budget (4 threads, %zu ops, hinted)\n",
              monster[0].size() + monster[1].size() + monster[2].size() + monster[3].size());
  std::printf("    %s\n", big.summary().c_str());
  std::printf("    planted race %s in %.3fs, %9.0f events/s\n\n",
              found_planted ? "FOUND" : "MISSED", big_s,
              static_cast<double>(big.events_replayed) / big_s);
  json.metric("monster_schedules", big.schedules_replayed);
  json.metric("monster_total_saturated", big.total_saturated);
  json.metric("monster_found_planted_race", found_planted);
  json.metric("monster_events_per_s", static_cast<double>(big.events_replayed) / big_s);

  // Floors (always reported; enforced in the smoke so tier-1 catches a
  // pruning or guidance regression).
  bool ok = true;
  if (!equal_verdicts) {
    std::fprintf(stderr, "FAIL: explorer verdict diverged from the exhaustive sweep\n");
    ok = false;
  }
  if (ratio < 10.0 || corpus_ratio < 10.0) {
    std::fprintf(stderr, "FAIL: reduction %.1fx (act7) / %.1fx (corpus) below the 10x floor\n",
                 ratio, corpus_ratio);
    ok = false;
  }
  if (!found_planted || !big.total_saturated) {
    std::fprintf(stderr, "FAIL: budgeted saturated-space run missed the planted race\n");
    ok = false;
  }
  if (perf_smoke && !ok) return 1;
  std::printf("floors: reduction >= 10x %s, verdict parity %s, saturated-space race %s\n",
              ratio >= 10.0 && corpus_ratio >= 10.0 ? "PASS" : "FAIL",
              equal_verdicts ? "PASS" : "FAIL", found_planted ? "PASS" : "FAIL");
  return 0;
}
