// Experiment E7 — Amdahl's Law and its observed droop: theoretical
// curves for several serial fractions, the MulticoreModel's contention-
// bent curves, and Gustafson's scaled-speedup contrast (the extension
// the course defers to upper-level work).
#include <cstdio>

#include "bench_json.hpp"
#include "parallel/speedup.hpp"

int main(int argc, char** argv) {
  using namespace cs31::parallel;
  cs31::bench::JsonReport json("amdahl", argc, argv);
  json.workload("Amdahl/Gustafson curves and the contention model's droop");
  json.config("max_cores", 32);

  std::printf("==============================================================\n");
  std::printf("E7: Amdahl's Law — theory vs contention-model reality\n");
  std::printf("==============================================================\n\n");

  const double fractions[] = {0.0, 0.01, 0.05, 0.10, 0.25};
  std::printf("(a) theoretical Amdahl speedup\n%8s", "cores");
  for (const double f : fractions) std::printf("   f=%-5.2f", f);
  std::printf("\n");
  for (unsigned p = 1; p <= 32; p *= 2) {
    std::printf("%8u", p);
    for (const double f : fractions) std::printf(" %8.2fx", amdahl_speedup(f, p));
    std::printf("\n");
  }
  std::printf("%8s", "limit");
  for (const double f : fractions) {
    if (f == 0.0) {
      std::printf(" %8s", "inf");
    } else {
      std::printf(" %8.2fx", amdahl_limit(f));
    }
  }
  std::printf("\n\n");

  std::printf("(b) modeled machine (f=0.05 equivalent) with contention/barriers\n");
  WorkloadModel model;
  model.total_work = 1'000'000;
  model.serial_work = 52'632;  // ~5%% serial fraction of the 1-thread run
  model.rounds = 50;
  model.barrier_cost = 200;
  model.critical_section = 20;
  model.contention_factor = 0.004;
  std::printf("%8s %12s %12s %12s\n", "cores", "amdahl", "modeled", "droop");
  const double f = 0.05;
  bool droop_grows = true;
  double prev_droop = 0;
  for (unsigned p = 1; p <= 32; p *= 2) {
    const double ideal = amdahl_speedup(f, p);
    const double real = modeled_speedup(model, p);
    const double droop = ideal - real;
    std::printf("%8u %11.2fx %11.2fx %11.2fx\n", p, ideal, real, droop);
    if (p > 1 && droop < prev_droop - 1e-9) droop_grows = false;
    prev_droop = droop;
  }
  std::printf("  (paper: \"resource contention can reduce observed speedup from\n"
              "   theoretical ideal linear speedup\" — droop grows with cores: %s)\n\n",
              droop_grows ? "yes" : "no");
  json.metric("amdahl_limit_f05", amdahl_limit(0.05));
  json.metric("modeled_speedup_32_cores", modeled_speedup(model, 32));
  json.metric("droop_grows_with_cores", droop_grows);

  std::printf("(c) Gustafson's scaled speedup (extension)\n%8s %10s %10s\n", "cores",
              "amdahl.1", "gustafson.1");
  for (unsigned p = 1; p <= 32; p *= 2) {
    std::printf("%8u %9.2fx %9.2fx\n", p, amdahl_speedup(0.1, p),
                gustafson_speedup(0.1, p));
  }
  json.metric("gustafson_speedup_32_f10", gustafson_speedup(0.1, 32));
  return 0;
}
