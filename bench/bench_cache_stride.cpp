// Experiment E4 — the caching unit's closing exercise: two nested-loop
// blocks accessing a 2-D array in different stride patterns, analyzed
// "with cache behavior in mind".
//
//  (a) trace-driven cache simulation: hit rates for row-major vs
//      column-major sweeps across cache geometries; and
//  (b) real wall-clock for the same two loops over a large int matrix
//      on this host (google-benchmark timing loop).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "memhier/cache.hpp"
#include "memhier/trace.hpp"

namespace {

constexpr std::uint32_t kRows = 256, kCols = 256;

void report_simulated(cs31::bench::JsonReport& json) {
  using namespace cs31::memhier;
  std::printf("==============================================================\n");
  std::printf("E4: nested-loop stride patterns vs the cache (%ux%u int array)\n",
              kRows, kCols);
  std::printf("==============================================================\n\n");
  std::printf("(a) simulated hit rates\n");
  std::printf("%-28s %10s %10s %8s\n", "cache", "row-major", "col-major", "gap");

  struct Geometry {
    const char* name;
    CacheConfig config;
  };
  const Geometry geometries[] = {
      {"direct 4KiB/32B", {.block_bytes = 32, .num_lines = 128, .associativity = 1}},
      {"direct 8KiB/64B", {.block_bytes = 64, .num_lines = 128, .associativity = 1}},
      {"2-way  8KiB/64B", {.block_bytes = 64, .num_lines = 128, .associativity = 2}},
      {"4-way 16KiB/64B", {.block_bytes = 64, .num_lines = 256, .associativity = 4}},
  };
  bool row_always_wins = true;
  for (const Geometry& g : geometries) {
    Cache row_cache(g.config), col_cache(g.config);
    const CacheStats row = replay(row_cache, row_major_trace(0, kRows, kCols));
    const CacheStats col = replay(col_cache, column_major_trace(0, kRows, kCols));
    std::printf("%-28s %9.1f%% %9.1f%% %7.1fx\n", g.name, 100 * row.hit_rate(),
                100 * col.hit_rate(),
                col.miss_rate() > 0 ? col.miss_rate() / row.miss_rate() : 0.0);
    row_always_wins = row_always_wins && row.hit_rate() > col.hit_rate();
  }

  const LocalityReport row_loc =
      cs31::memhier::analyze_locality(row_major_trace(0, kRows, kCols), 64);
  const LocalityReport col_loc =
      cs31::memhier::analyze_locality(column_major_trace(0, kRows, kCols), 64);
  std::printf("\nlocality analyzer: row-major spatial fraction %.2f, column-major %.2f\n",
              row_loc.spatial_fraction, col_loc.spatial_fraction);
  std::printf("shape check: row-major wins in every geometry: %s\n\n",
              row_always_wins ? "yes (matches the class exercise)" : "NO");
  json.metric("row_major_spatial_fraction", row_loc.spatial_fraction);
  json.metric("col_major_spatial_fraction", col_loc.spatial_fraction);
  json.metric("row_major_wins_every_geometry", row_always_wins);
}

// (b) real timing of the two loop orders.
std::vector<int> g_matrix(kRows * kCols * 16, 1);  // 4 MiB: larger than L1/L2

void BM_RowMajor(benchmark::State& state) {
  const std::size_t rows = kRows * 4, cols = kCols * 4;
  for (auto _ : state) {
    long sum = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) sum += g_matrix[r * cols + c];
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_RowMajor);

void BM_ColumnMajor(benchmark::State& state) {
  const std::size_t rows = kRows * 4, cols = kCols * 4;
  for (auto _ : state) {
    long sum = 0;
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t r = 0; r < rows; ++r) sum += g_matrix[r * cols + c];
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ColumnMajor);

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("cache_stride", argc, argv);
  json.workload("row-major vs column-major sweep: simulated hit rates + real timing");
  json.config("rows", kRows);
  json.config("cols", kCols);
  report_simulated(json);
  std::printf("(b) real wall-clock on this host\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
