// Extension bench — Lab 2 meets the parallelism module: the O(N^2)
// sorts students write vs merge sort vs parallel merge sort, showing
// that algorithmic improvement dwarfs parallel speedup (a "thinking in
// parallel" lesson the course sets up with Big-O vs hardware costs).
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_json.hpp"
#include "labs/sorting.hpp"

namespace {

using namespace cs31::labs;

std::vector<int> data_of(std::int64_t n) {
  std::vector<int> data(static_cast<std::size_t>(n));
  fill_random(data, 77);
  return data;
}

void BM_Bubble(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    bubble_sort(d);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_Insertion(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    insertion_sort(d);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_Selection(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    selection_sort(d);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_MergeSerial(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    parallel_merge_sort(d, 1);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_MergeParallel4(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    parallel_merge_sort(d, 4);
    benchmark::DoNotOptimize(d.data());
  }
}

constexpr long kSmall = 2000, kLarge = 20000;

BENCHMARK(BM_Bubble)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Insertion)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Selection)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_MergeSerial)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_MergeParallel4)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(5);

// The headline ratio for the JSON report: at kLarge elements, how much
// does the O(N log N) algorithm beat the O(N^2) one, and what does
// 4-way parallelism add on top? (The tables above are the full data.)
template <typename Sort>
double seconds_of(Sort sort) {
  std::vector<int> d = data_of(kLarge);
  const auto t0 = std::chrono::steady_clock::now();
  sort(d);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("sort_scaling", argc, argv);
  json.workload("O(N^2) sorts vs serial vs 4-thread merge sort (lab 2 data sizes)");
  json.config("small_n", kSmall);
  json.config("large_n", kLarge);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (json.enabled()) {
    const double bubble_s = seconds_of([](std::vector<int>& d) { bubble_sort(d); });
    const double merge1_s =
        seconds_of([](std::vector<int>& d) { parallel_merge_sort(d, 1); });
    const double merge4_s =
        seconds_of([](std::vector<int>& d) { parallel_merge_sort(d, 4); });
    json.metric("bubble_seconds_large", bubble_s);
    json.metric("merge_serial_seconds_large", merge1_s);
    json.metric("merge_parallel4_seconds_large", merge4_s);
    json.metric("algorithmic_win", bubble_s / merge1_s);
    json.metric("parallel_win", merge1_s / merge4_s);
  }
  return 0;
}
