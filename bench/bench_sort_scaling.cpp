// Extension bench — Lab 2 meets the parallelism module: the O(N^2)
// sorts students write vs merge sort vs parallel merge sort, showing
// that algorithmic improvement dwarfs parallel speedup (a "thinking in
// parallel" lesson the course sets up with Big-O vs hardware costs).
#include <benchmark/benchmark.h>

#include <vector>

#include "labs/sorting.hpp"

namespace {

using namespace cs31::labs;

std::vector<int> data_of(std::int64_t n) {
  std::vector<int> data(static_cast<std::size_t>(n));
  fill_random(data, 77);
  return data;
}

void BM_Bubble(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    bubble_sort(d);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_Insertion(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    insertion_sort(d);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_Selection(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    selection_sort(d);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_MergeSerial(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    parallel_merge_sort(d, 1);
    benchmark::DoNotOptimize(d.data());
  }
}

void BM_MergeParallel4(benchmark::State& state) {
  const std::vector<int> base = data_of(state.range(0));
  for (auto _ : state) {
    std::vector<int> d = base;
    parallel_merge_sort(d, 4);
    benchmark::DoNotOptimize(d.data());
  }
}

constexpr long kSmall = 2000, kLarge = 20000;

BENCHMARK(BM_Bubble)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Insertion)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_Selection)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_MergeSerial)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(5);
BENCHMARK(BM_MergeParallel4)->Arg(kSmall)->Arg(kLarge)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
