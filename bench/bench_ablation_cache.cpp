// Ablation — cache design choices (DESIGN.md: replacement policy,
// associativity, write policy). The course asks students to "briefly
// analyze cache design trade-offs and their effect on the cache hit
// rate"; this bench runs that analysis over the kit's trace generators.
#include <cstdio>
#include <tuple>

#include "bench_json.hpp"
#include "memhier/cache.hpp"
#include "memhier/trace.hpp"

namespace {

using namespace cs31::memhier;

double hit_rate_for(CacheConfig cfg, const Trace& trace) {
  Cache cache(cfg);
  return replay(cache, trace).hit_rate();
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("ablation_cache", argc, argv);
  json.workload("cache design sweeps: associativity, replacement, write policy, block size");
  json.config("cache_bytes", 4096);
  std::printf("==============================================================\n");
  std::printf("Ablation: cache design choices\n");
  std::printf("==============================================================\n\n");

  // Mixed workload: a looping working set slightly bigger than a way,
  // plus random traffic.
  Trace loop_trace = working_set_trace(0, 6 * 1024, 6, 16);
  Trace random = random_trace(64 * 1024, 32 * 1024, 4000, 9);
  Trace mixed = loop_trace;
  mixed.insert(mixed.end(), random.begin(), random.end());

  std::printf("(a) associativity sweep (4 KiB, 64 B blocks, LRU, loop+random mix)\n");
  std::printf("%8s %10s\n", "ways", "hit rate");
  for (const std::uint32_t ways : {1u, 2u, 4u, 8u, 64u}) {
    CacheConfig cfg{.block_bytes = 64, .num_lines = 64, .associativity = ways};
    const double rate = hit_rate_for(cfg, mixed);
    std::printf("%8u %9.1f%%\n", ways, 100 * rate);
    json.metric("hit_rate_ways_" + std::to_string(ways), rate);
  }

  // Hot-set + streaming: 16 hot blocks touched every other access amid
  // a pure stream — recency information is exactly what saves the hot set.
  Trace hot_stream;
  for (std::uint32_t i = 0; i < 16000; ++i) {
    if (i % 2 == 0) {
      hot_stream.push_back({(i / 2 % 16) * 64, false});
    } else {
      hot_stream.push_back({1 << 20 | (i * 64), false});
    }
  }

  std::printf("\n(b) replacement policy (4 KiB, 4-way) across access patterns\n");
  std::printf("%10s %12s %12s %12s\n", "policy", "hot+stream", "big loop", "random");
  for (const auto& [name, policy] :
       {std::pair{"LRU", Replacement::Lru}, std::pair{"FIFO", Replacement::Fifo},
        std::pair{"random", Replacement::Random}}) {
    CacheConfig cfg{.block_bytes = 64, .num_lines = 64, .associativity = 4};
    cfg.replacement = policy;
    const double hot = hit_rate_for(cfg, hot_stream);
    std::printf("%10s %11.1f%% %11.1f%% %11.1f%%\n", name, 100 * hot,
                100 * hit_rate_for(cfg, loop_trace), 100 * hit_rate_for(cfg, random));
    json.metric("hot_stream_hit_rate_" + std::string(name), hot);
  }
  std::printf("  (LRU protects the reused hot set from the stream; on a loop\n"
              "   slightly bigger than the cache, LRU evicts exactly what is\n"
              "   needed next — the classic anti-LRU pattern — and random wins;\n"
              "   random traffic is policy-agnostic)\n");

  std::printf("\n(c) write policy: memory traffic for a write-heavy sweep\n");
  std::printf("%-28s %12s %12s\n", "policy", "mem writes", "writebacks");
  Trace writes;
  for (std::uint32_t pass = 0; pass < 4; ++pass) {
    for (std::uint32_t a = 0; a < 8 * 1024; a += 16) writes.push_back({a, true});
  }
  using WriteRow = std::tuple<const char*, WritePolicy, bool>;
  for (const auto& [name, policy, allocate] :
       {WriteRow{"write-back + allocate", WritePolicy::WriteBack, true},
        WriteRow{"write-through + allocate", WritePolicy::WriteThrough, true},
        WriteRow{"write-through no-allocate", WritePolicy::WriteThrough, false}}) {
    CacheConfig cfg{.block_bytes = 64, .num_lines = 64, .associativity = 4};
    cfg.write_policy = policy;
    cfg.write_allocate = allocate;
    Cache cache(cfg);
    const CacheStats s = replay(cache, writes);
    std::printf("%-28s %12llu %12llu\n", name,
                static_cast<unsigned long long>(s.memory_writes),
                static_cast<unsigned long long>(s.writebacks));
  }
  std::printf("  (write-back coalesces repeated stores; write-through pays per store)\n");

  std::printf("\n(d) block size vs spatial locality (direct-mapped 4 KiB, row scan)\n");
  std::printf("%12s %10s\n", "block bytes", "hit rate");
  const Trace rows = row_major_trace(0, 128, 128);
  for (const std::uint32_t block : {4u, 16u, 64u, 256u}) {
    CacheConfig cfg{.block_bytes = block, .num_lines = 4096 / block, .associativity = 1};
    std::printf("%12u %9.1f%%\n", block, 100 * hit_rate_for(cfg, rows));
  }
  std::printf("  (bigger blocks amortize misses over sequential scans)\n");
  return 0;
}
