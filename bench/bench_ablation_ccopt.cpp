// Ablation — the mini-C optimizer: static instruction counts and
// dynamic instructions executed, with and without optimization, over
// representative programs (the course's "different equivalent assembly
// sequences" efficiency discussion, made measurable).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "ccomp/codegen.hpp"
#include "isa/machine.hpp"

namespace {

using namespace cs31;

struct Case {
  const char* name;
  const char* source;
  std::vector<std::int32_t> args;
};

std::size_t static_count(const std::string& source, bool optimize) {
  return isa::assemble(cc::compile_to_assembly(source, optimize)).instruction_count();
}

std::size_t dynamic_count(const std::string& source, const std::vector<std::int32_t>& args,
                          bool optimize) {
  // Build with entry stub by reusing run paths: recompile with the flag
  // and execute, counting instructions.
  isa::Machine machine;
  const std::string fn_asm = cc::compile_to_assembly(source, optimize);
  std::string stub = "_start:\n";
  for (auto it = args.rbegin(); it != args.rend(); ++it) {
    stub += "    pushl $" + std::to_string(*it) + "\n";
  }
  stub += "    call main\n    hlt\n";
  machine.load(isa::assemble(fn_asm + stub));
  machine.run(5'000'000);
  return machine.instructions_executed();
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("ablation_ccopt", argc, argv);
  json.workload("mini-C optimizer on/off: static and executed instruction counts");
  json.config("programs", 4);
  std::printf("==============================================================\n");
  std::printf("Ablation: mini-C optimizer (fold + strength-reduce + dead code)\n");
  std::printf("==============================================================\n\n");
  const Case cases[] = {
      {"constant-heavy",
       "int main(int x) { return (2 + 3 * 4) * (10 - 6) + x * (1 + 1) * 0 + x; }",
       {9}},
      {"scaled loop",
       "int main(int n) { int s = 0; for (int i = 0; i < n * 16; i = i + 1) "
       "{ s = s + i * 4; } return s; }",
       {8}},
      {"dead branches",
       "int main(int x) { if (1 < 2) { x = x + 1; } else { x = x * 99; } "
       "while (0) { x = 0; } return x * 8; }",
       {5}},
      {"recursion (little to fold)",
       "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); } "
       "int main() { return fib(12); }",
       {}},
  };
  std::printf("%-28s %12s %12s %14s %14s %8s\n", "program", "static -O0", "static -O1",
              "executed -O0", "executed -O1", "win");
  for (const Case& c : cases) {
    const std::size_t s0 = static_count(c.source, false);
    const std::size_t s1 = static_count(c.source, true);
    const std::size_t d0 = dynamic_count(c.source, c.args, false);
    const std::size_t d1 = dynamic_count(c.source, c.args, true);
    // Both versions must agree on the answer, or the "win" is a bug.
    const std::int32_t r0 = cc::run_mini_c(c.source, c.args, false);
    const std::int32_t r1 = cc::run_mini_c(c.source, c.args, true);
    std::printf("%-28s %12zu %12zu %14zu %14zu %7.2fx%s\n", c.name, s0, s1, d0, d1,
                static_cast<double>(d0) / static_cast<double>(d1),
                r0 == r1 ? "" : "  MISMATCH!");
    std::string key = c.name;
    for (char& ch : key) {
      if (ch == ' ' || ch == '(' || ch == ')') ch = '_';
    }
    json.metric(key + "_dynamic_win", static_cast<double>(d0) / static_cast<double>(d1));
    json.metric(key + "_results_agree", r0 == r1);
  }
  std::printf("\nshape: constant-heavy code shrinks the most; recursion barely\n"
              "changes (nothing to fold) — optimizations pay where the course\n"
              "says they do, in straight-line arithmetic.\n");
  return 0;
}
