// Experiment E10 — the memory-hierarchy motivation: the device pyramid's
// latency/capacity/cost trade-offs, two-level EAT as a function of hit
// rate, and a working-set sweep through a simulated L1/L2 hierarchy
// showing the AMAT cliffs at each capacity boundary.
#include <cstdio>

#include "bench_json.hpp"
#include "memhier/hierarchy.hpp"
#include "memhier/trace.hpp"

int main(int argc, char** argv) {
  using namespace cs31::memhier;
  cs31::bench::JsonReport json("memhier", argc, argv);
  json.workload("device pyramid, two-level EAT, working-set AMAT sweep");
  json.config("l1_bytes", 4096);
  json.config("l2_bytes", 65536);

  std::printf("==============================================================\n");
  std::printf("E10: the memory hierarchy — devices, EAT, and working sets\n");
  std::printf("==============================================================\n\n");

  std::printf("(a) the device pyramid (course's canonical table)\n");
  std::printf("%-12s %14s %16s %12s %10s\n", "device", "latency (ns)", "capacity (B)",
              "$/GB", "class");
  for (const StorageDevice& d : canonical_hierarchy()) {
    std::printf("%-12s %14.1f %16.0f %12.3f %10s\n", d.name.c_str(), d.latency_ns,
                d.capacity_bytes, d.dollars_per_gb, d.primary ? "primary" : "secondary");
  }

  std::printf("\n(b) two-level EAT vs hit rate (cache 1ns over DRAM 100ns)\n");
  std::printf("%10s %12s\n", "hit rate", "EAT (ns)");
  for (const double hit : {0.5, 0.8, 0.9, 0.95, 0.99, 1.0}) {
    std::printf("%9.0f%% %12.2f\n", hit * 100, effective_access_ns(hit, 1.0, 100.0));
  }
  std::printf("  (the course's punchline: only very high hit rates make the\n"
              "   hierarchy look like the fast level)\n");

  std::printf("\n(c) working-set sweep through L1(4KiB)/L2(64KiB) + DRAM\n");
  std::printf("%16s %10s %10s %12s\n", "working set", "L1 hit", "L2 hit", "AMAT (ns)");
  for (const std::uint32_t set_kib : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    MultiLevelCache mlc(
        {{{.block_bytes = 64, .num_lines = 64, .associativity = 4}, 1.0},    // 4 KiB L1
         {{.block_bytes = 64, .num_lines = 1024, .associativity = 8}, 10.0}},  // 64 KiB L2
        100.0);
    const Trace t = working_set_trace(0, set_kib * 1024, 8, 16);
    for (const Access& a : t) mlc.access(a.address, a.is_write);
    std::printf("%13u KiB %9.1f%% %9.1f%% %12.2f\n", set_kib,
                100 * mlc.level_stats(0).hit_rate(), 100 * mlc.level_stats(1).hit_rate(),
                mlc.amat_ns());
    json.metric("amat_ns_ws_" + std::to_string(set_kib) + "kib", mlc.amat_ns());
  }
  std::printf("  shape: AMAT steps up as the working set spills each level —\n"
              "  the figure every systems course draws; here regenerated from\n"
              "  the simulator.\n");
  return 0;
}
