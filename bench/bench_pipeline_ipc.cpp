// Experiment E5 — "pipelining makes efficient use of CPU circuitry
// resulting in an improved instructions per cycle rate": time real
// MiniCpu traces on the sequential and pipelined machine models, across
// program shapes, forwarding, and branch penalties.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "logic/cpu.hpp"
#include "logic/pipeline.hpp"

namespace {

using namespace cs31::logic;

std::vector<ExecRecord> trace_of_sum(unsigned elements) {
  MiniCpu cpu;
  for (unsigned i = 0; i < elements; ++i) cpu.set_mem(200 + i, 1);
  cpu.load_program(sample_sum_program(200, elements));
  cpu.run();
  return cpu.trace();
}

std::vector<ExecRecord> independent_trace(std::size_t n) {
  // Straight-line independent ALU work: the pipeline's best case.
  std::vector<ExecRecord> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i].wrote_reg = true;
    t[i].dest = static_cast<unsigned>(i % 8);
  }
  return t;
}

void row(const char* name, const std::vector<ExecRecord>& trace,
         const PipelineConfig& cfg) {
  const TimingResult seq = time_sequential(trace, cfg.stages);
  const TimingResult pipe = time_pipelined(trace, cfg);
  std::printf("%-26s %6zu %10zu %7.2f %10zu %7.2f %7zu %7zu %8.2fx\n", name,
              trace.size(), seq.cycles, seq.ipc(), pipe.cycles, pipe.ipc(),
              pipe.stall_cycles, pipe.flush_cycles, seq.time_ps() / pipe.time_ps());
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("pipeline_ipc", argc, argv);
  json.workload("5-stage pipeline vs sequential: IPC and time gain over MiniCpu traces");
  json.config("stages", 5);
  std::printf("==============================================================\n");
  std::printf("E5: pipelining vs sequential execution (5-stage model)\n");
  std::printf("    sequential cycle = sum of stages; pipelined = max stage\n");
  std::printf("==============================================================\n\n");
  std::printf("%-26s %6s %10s %7s %10s %7s %7s %7s %9s\n", "workload", "instr",
              "seq cyc", "IPC", "pipe cyc", "IPC", "stalls", "flush", "time gain");

  PipelineConfig fwd;                       // forwarding, 2-cycle branch penalty
  PipelineConfig no_fwd;
  no_fwd.forwarding = false;
  PipelineConfig cheap_branch;
  cheap_branch.branch_penalty = 1;

  row("independent ALU x1000", independent_trace(1000), fwd);
  row("sum loop n=16", trace_of_sum(16), fwd);
  row("sum loop n=64", trace_of_sum(64), fwd);
  row("sum loop n=250", trace_of_sum(250), fwd);
  row("sum loop n=250 (no fwd)", trace_of_sum(250), no_fwd);
  row("sum loop n=250 (bp=1)", trace_of_sum(250), cheap_branch);

  const auto trace = trace_of_sum(250);
  const double gain = time_sequential(trace, fwd.stages).time_ps() /
                      time_pipelined(trace, fwd).time_ps();
  std::printf(
      "\nshape check: pipelined IPC < 1 with hazards, > IPC_seq/5; time gain %.2fx\n"
      "(paper: pipelining presented as an efficiency win; no absolute numbers)\n",
      gain);
  json.metric("sum_loop_250_time_gain", gain);
  json.metric("sum_loop_250_pipelined_ipc", time_pipelined(trace, fwd).ipc());
  return gain > 1.5 ? 0 : 1;
}
