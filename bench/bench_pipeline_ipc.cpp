// Experiment E5 — "pipelining makes efficient use of CPU circuitry
// resulting in an improved instructions per cycle rate": time real
// MiniCpu traces on the sequential and pipelined machine models, across
// program shapes, forwarding, and branch penalties.
//
// Section two (E14) turns the same lens on the kit's own emulator: the
// ISA machine's two execution cores — the per-step switch interpreter
// and the predecoded threaded-dispatch core — timed on identical
// workloads (a tight hot loop, a seeded generated program, full maze
// solves), reported as instructions/second per core. Single-threaded
// wall-clock on whatever host runs the bench; the *ratio* between the
// cores is the portable number, and `--perf-smoke` asserts its >= 5x
// floor (exit 1 below it).
//
// Usage: bench_pipeline_ipc [--perf-smoke] [--json[=DIR]] [--timestamp=T]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "bench_json.hpp"
#include "isa/machine.hpp"
#include "isa/maze.hpp"
#include "isa/program_gen.hpp"
#include "logic/cpu.hpp"
#include "logic/pipeline.hpp"

namespace {

using namespace cs31::logic;

std::vector<ExecRecord> trace_of_sum(unsigned elements) {
  MiniCpu cpu;
  for (unsigned i = 0; i < elements; ++i) cpu.set_mem(200 + i, 1);
  cpu.load_program(sample_sum_program(200, elements));
  cpu.run();
  return cpu.trace();
}

std::vector<ExecRecord> independent_trace(std::size_t n) {
  // Straight-line independent ALU work: the pipeline's best case.
  std::vector<ExecRecord> t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i].wrote_reg = true;
    t[i].dest = static_cast<unsigned>(i % 8);
  }
  return t;
}

void row(const char* name, const std::vector<ExecRecord>& trace,
         const PipelineConfig& cfg) {
  const TimingResult seq = time_sequential(trace, cfg.stages);
  const TimingResult pipe = time_pipelined(trace, cfg);
  std::printf("%-26s %6zu %10zu %7.2f %10zu %7.2f %7zu %7zu %8.2fx\n", name,
              trace.size(), seq.cycles, seq.ipc(), pipe.cycles, pipe.ipc(),
              pipe.stall_cycles, pipe.flush_cycles, seq.time_ps() / pipe.time_ps());
}

// --- section two: the emulator's own execution cores -------------------

namespace isa = cs31::isa;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Instructions/second of `run_once` (which executes one workload pass
/// and returns its instruction count), repeated until `min_seconds` of
/// wall clock has been spent. One untimed warm-up pass first.
double measure_ips(double min_seconds, const std::function<std::size_t()>& run_once) {
  (void)run_once();  // warm: predecode caches, page in memory
  const auto start = std::chrono::steady_clock::now();
  std::size_t instructions = 0;
  double elapsed = 0.0;
  do {
    instructions += run_once();
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds);
  return static_cast<double>(instructions) / elapsed;
}

/// One long-lived machine per runner: each pass is `load` + `run`, the
/// regrade pattern. Reloading the identical image keeps the predecoded
/// block cache warm, so the timed region measures execution, not the
/// 64 KiB machine construction.
std::function<std::size_t()> image_runner(const isa::Image& image, isa::Machine::Core core) {
  auto m = std::make_shared<isa::Machine>(1u << 16);
  m->set_core(core);
  return [m, &image]() {
    m->load(image);
    return m->run(100'000'000);
  };
}

std::function<std::size_t()> maze_runner(const isa::Maze& maze, isa::Machine::Core core) {
  auto m = std::make_shared<isa::Machine>(1u << 16);
  m->set_core(core);
  // Resolve the per-floor entry points once; the run itself is tiny.
  auto entries = std::make_shared<std::vector<std::uint32_t>>();
  for (unsigned floor = 0; floor < maze.floors(); ++floor) {
    entries->push_back(maze.image().symbol("floor_" + std::to_string(floor)));
  }
  return [m, entries, &maze]() {
    std::size_t instructions = 0;
    for (unsigned floor = 0; floor < maze.floors(); ++floor) {
      m->load(maze.image());
      m->set_reg(isa::Reg::Eip, (*entries)[floor]);
      m->set_reg(isa::Reg::Eax, maze.solution(floor));
      instructions += m->run(100'000'000);
    }
    return instructions;
  };
}

/// The canonical student attack on the counting-loop floors: try every
/// guess 0..64 until %edi says "passed". Each wrong guess still runs
/// the whole summation loop, so this maze workload actually spends its
/// time emulating (~130 instructions per attempt) instead of in
/// per-attempt setup.
std::function<std::size_t()> maze_bruteforce_runner(const isa::Maze& maze,
                                                    isa::Machine::Core core) {
  auto m = std::make_shared<isa::Machine>(1u << 16);
  m->set_core(core);
  auto loop_floors = std::make_shared<std::vector<std::uint32_t>>();
  for (unsigned floor = 0; floor < maze.floors(); ++floor) {
    if (floor % 5 == 3) {  // the counting-loop archetype
      loop_floors->push_back(maze.image().symbol("floor_" + std::to_string(floor)));
    }
  }
  return [m, loop_floors, &maze]() {
    std::size_t instructions = 0;
    for (const std::uint32_t entry : *loop_floors) {
      for (std::uint32_t guess = 0; guess <= 64; ++guess) {
        m->load(maze.image());
        m->set_reg(isa::Reg::Eip, entry);
        m->set_reg(isa::Reg::Eax, guess);
        instructions += m->run(100'000'000);
        if (m->reg(isa::Reg::Edi) == 1) break;  // maze_pass reached
      }
    }
    return instructions;
  };
}

struct IsaWorkload {
  const char* name;
  std::function<std::size_t()> run_switch;
  std::function<std::size_t()> run_predecoded;
  bool in_floor;  // counted toward the >=5x assertion (emulation-bound rows)
};

/// A hand-written hot loop: one million executed instructions of pure
/// dispatch pressure, the fast core's best case.
isa::Image tight_loop_image() {
  return isa::assemble(R"(
_start:
    movl $200000, %ecx
spin:
    addl $3, %eax
    xorl %ebx, %eax
    imull $5, %edx
    decl %ecx
    jne spin
    hlt
)");
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("pipeline_ipc", argc, argv);
  json.workload("5-stage pipeline vs sequential IPC; switch vs predecoded emulator cores");
  json.config("stages", 5);
  bool perf_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-smoke") == 0) perf_smoke = true;
  }
  std::printf("==============================================================\n");
  std::printf("E5: pipelining vs sequential execution (5-stage model)\n");
  std::printf("    sequential cycle = sum of stages; pipelined = max stage\n");
  std::printf("==============================================================\n\n");
  std::printf("%-26s %6s %10s %7s %10s %7s %7s %7s %9s\n", "workload", "instr",
              "seq cyc", "IPC", "pipe cyc", "IPC", "stalls", "flush", "time gain");

  PipelineConfig fwd;                       // forwarding, 2-cycle branch penalty
  PipelineConfig no_fwd;
  no_fwd.forwarding = false;
  PipelineConfig cheap_branch;
  cheap_branch.branch_penalty = 1;

  row("independent ALU x1000", independent_trace(1000), fwd);
  row("sum loop n=16", trace_of_sum(16), fwd);
  row("sum loop n=64", trace_of_sum(64), fwd);
  row("sum loop n=250", trace_of_sum(250), fwd);
  row("sum loop n=250 (no fwd)", trace_of_sum(250), no_fwd);
  row("sum loop n=250 (bp=1)", trace_of_sum(250), cheap_branch);

  const auto trace = trace_of_sum(250);
  const double gain = time_sequential(trace, fwd.stages).time_ps() /
                      time_pipelined(trace, fwd).time_ps();
  std::printf(
      "\nshape check: pipelined IPC < 1 with hazards, > IPC_seq/5; time gain %.2fx\n"
      "(paper: pipelining presented as an efficiency win; no absolute numbers)\n",
      gain);
  json.metric("sum_loop_250_time_gain", gain);
  json.metric("sum_loop_250_pipelined_ipc", time_pipelined(trace, fwd).ipc());

  // --- E14: switch interpreter vs predecoded threaded-dispatch core ---

  std::printf("\n==============================================================\n");
  std::printf("E14: emulator cores — per-step switch vs predecoded dispatch\n");
  std::printf("    instructions/second, single thread, identical workloads\n");
  std::printf("==============================================================\n\n");
  std::printf("%-26s %14s %14s %9s\n", "workload", "switch i/s", "predec i/s", "speedup");

  const isa::Image tight = tight_loop_image();
  isa::ProgramGenConfig gen_cfg;
  gen_cfg.segments = 10;
  gen_cfg.functions = 3;
  gen_cfg.ops_per_block = 6;
  gen_cfg.max_trip = 50;
  const isa::Image generated = isa::assemble(isa::generate_program(7, gen_cfg).source);
  const isa::Maze maze(12);

  const IsaWorkload workloads[] = {
      {"tight hot loop x1M", image_runner(tight, isa::Machine::Core::Switch),
       image_runner(tight, isa::Machine::Core::Predecoded), true},
      {"generated program (seed 7)", image_runner(generated, isa::Machine::Core::Switch),
       image_runner(generated, isa::Machine::Core::Predecoded), true},
      {"maze brute-force, 2 floors", maze_bruteforce_runner(maze, isa::Machine::Core::Switch),
       maze_bruteforce_runner(maze, isa::Machine::Core::Predecoded), true},
      {"maze solve, 12 floors", maze_runner(maze, isa::Machine::Core::Switch),
       maze_runner(maze, isa::Machine::Core::Predecoded), false},
  };

  const double min_seconds = perf_smoke ? 0.08 : 0.4;
  double min_speedup = 1e300;
  for (const IsaWorkload& w : workloads) {
    const double switch_ips = measure_ips(min_seconds, w.run_switch);
    const double predecoded_ips = measure_ips(min_seconds, w.run_predecoded);
    const double speedup = predecoded_ips / switch_ips;
    if (w.in_floor && speedup < min_speedup) min_speedup = speedup;
    std::printf("%-26s %14.3e %14.3e %8.2fx%s\n", w.name, switch_ips, predecoded_ips, speedup,
                w.in_floor ? "" : "  (reload-bound; informational)");
    // The `core=` dimension, encoded in the metric key (flat schema).
    std::string key = w.name;
    for (char& c : key) {
      if (c == ' ' || c == ',' || c == '(' || c == ')') c = '_';
    }
    json.metric(key + "[core=switch]_instr_per_s", switch_ips);
    json.metric(key + "[core=predecoded]_instr_per_s", predecoded_ips);
    json.metric(key + "_core_speedup", speedup);
  }
  json.metric("isa_core_min_speedup", min_speedup);
  json.config("isa_core_speedup_floor", 5);

  std::printf(
      "\nfloor check: predecoded core must be >= 5x the switch interpreter\n"
      "on every emulation-bound workload (min observed: %.2fx). Wall-clock\n"
      "on this host, single-threaded; the ratio, not the absolute i/s, is\n"
      "the contract. The 12-floor solve row is honest about its shape: a\n"
      "full solve executes only ~20 instructions per attempt, so it times\n"
      "the per-attempt reload, not the core — it reports, but is excluded\n"
      "from the floor.\n",
      min_speedup);

  const bool pipeline_ok = gain > 1.5;
  const bool isa_ok = min_speedup >= 5.0;
  if (perf_smoke && !isa_ok) {
    std::printf("PERF SMOKE FAIL: isa core speedup %.2fx below the 5x floor\n", min_speedup);
  }
  return (pipeline_ok && (!perf_smoke || isa_ok)) ? 0 : 1;
}
