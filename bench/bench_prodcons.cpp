// Experiment E9 — the producer/consumer (bounded buffer) problem that
// closes the CS 31 parallelism module: throughput and blocking behaviour
// across buffer sizes and producer/consumer mixes, with real threads.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "parallel/sync.hpp"

namespace {

struct RunResult {
  double seconds = 0;
  std::uint64_t producer_blocks = 0;
  std::uint64_t consumer_blocks = 0;
};

RunResult run(std::size_t capacity, int producers, int consumers, int items_per_producer) {
  using clock = std::chrono::steady_clock;
  cs31::parallel::BoundedBuffer buffer(capacity);
  const int total = producers * items_per_producer;
  const int per_consumer = total / consumers;
  std::vector<std::thread> threads;
  const auto t0 = clock::now();
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&buffer, items_per_producer] {
      for (int i = 0; i < items_per_producer; ++i) buffer.put(i);
    });
  }
  for (int c = 0; c < consumers; ++c) {
    const int quota = per_consumer + (c == 0 ? total % consumers : 0);
    threads.emplace_back([&buffer, quota] {
      for (int i = 0; i < quota; ++i) (void)buffer.get();
    });
  }
  for (std::thread& t : threads) t.join();
  RunResult r;
  r.seconds = std::chrono::duration<double>(clock::now() - t0).count();
  r.producer_blocks = buffer.producer_blocks();
  r.consumer_blocks = buffer.consumer_blocks();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("prodcons", argc, argv);
  json.workload("bounded-buffer throughput vs capacity and producer/consumer mix");
  std::printf("==============================================================\n");
  std::printf("E9: producer/consumer bounded buffer (real threads)\n");
  std::printf("==============================================================\n\n");
  constexpr int kItems = 20000;
  json.config("items", kItems);

  std::printf("(a) throughput vs buffer capacity (1 producer, 1 consumer)\n");
  std::printf("%10s %12s %14s %12s %12s\n", "capacity", "seconds", "items/sec",
              "prod blocks", "cons blocks");
  for (const std::size_t cap : {1u, 2u, 8u, 64u, 1024u}) {
    const RunResult r = run(cap, 1, 1, kItems);
    std::printf("%10zu %12.4f %14.0f %12llu %12llu\n", cap, r.seconds,
                kItems / r.seconds, static_cast<unsigned long long>(r.producer_blocks),
                static_cast<unsigned long long>(r.consumer_blocks));
    json.metric("items_per_sec_cap_" + std::to_string(cap), kItems / r.seconds);
  }
  std::printf("  shape: tiny buffers force constant blocking; capacity amortizes it.\n\n");

  std::printf("(b) producer/consumer mixes (capacity 16, %d total items)\n", kItems);
  std::printf("%6s %6s %12s %14s\n", "prod", "cons", "seconds", "items/sec");
  for (const auto& [p, c] : {std::pair{1, 1}, std::pair{2, 2}, std::pair{4, 1},
                            std::pair{1, 4}, std::pair{4, 4}}) {
    const RunResult r = run(16, p, c, kItems / p);
    const int total = (kItems / p) * p;
    std::printf("%6d %6d %12.4f %14.0f\n", p, c, r.seconds, total / r.seconds);
  }
  std::printf("\n(the paper's module ends here: students identify put/get critical\n"
              " sections; the blocking counts above are those waits, made visible)\n");
  return 0;
}
