// Race-detection overhead: traced vs untraced Game of Life generations
// per second, raw detector event throughput, and — since the FastTrack
// shadow-state compression — a before/after comparison against the
// PR 1 full-vector-clock algorithm (kept as ReferenceDetector), fed
// the identical event stream.
//
// (a) a deterministic comparison run that times both detectors on the
//     same multi-round traced Life workload, snapshots shadow-state
//     bytes (end of run, and mid-run with the read state inflated),
//     emits a one-line BENCH_race {...} JSON summary, and *asserts* the
//     acceptance criterion: >= 2x reduction in tracing overhead vs the
//     PR 1 baseline (exit 1 on failure, so the tier-1 smoke run guards
//     the claim);
// (b) real-thread mode (the TraceContext capture layer): a traced
//     4-thread 64x64 ParallelLife::run vs the untraced run, with the
//     drained stream fed to the FastTrack Detector AND the Eraser-style
//     LocksetDetector simultaneously; *asserts* <= 3x wall-clock
//     overhead and the known verdicts (HB: race-free; lockset: flags
//     its documented barrier false positive or agrees), and emits a
//     second BENCH_race JSON line with per-thread buffer high-water
//     marks;
// (c) google-benchmark timings: untraced / FastTrack-traced /
//     reference-traced Life steps (grids up to 64x64 — past the
//     practical limit of the string-keyed PR 1 detector), and
//     per-event throughput of both detectors on both API paths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "life/life.hpp"
#include "life/traced.hpp"
#include "race/detector.hpp"
#include "race/lockset.hpp"
#include "race/reference.hpp"
#include "trace/context.hpp"
#include "trace/metrics.hpp"

namespace {

using cs31::life::Grid;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Shadow bytes while the read state is inflated: `threads` workers all
/// read every variable (the Life compute phase freeze-framed before any
/// write deflates it) — the state FastTrack compresses hardest.
template <typename Sink>
std::size_t read_shared_snapshot_bytes(std::size_t threads, std::size_t vars) {
  Sink sink;
  std::vector<cs31::race::ThreadId> workers;
  for (std::size_t t = 0; t < threads; ++t) workers.push_back(sink.fork(0));
  for (std::size_t v = 0; v < vars; ++v) {
    const std::string var = "cell" + std::to_string(v);
    for (const auto w : workers) sink.read(w, var, "compute phase");
  }
  return sink.shadow_bytes();
}

/// Best (minimum) wall time of three runs of `work` — the standard
/// noise shield for a one-shot comparison on a shared machine; load
/// spikes can only inflate a measurement, never deflate it.
template <typename Work>
double min_seconds_of_3(Work&& work) {
  double best = 0;
  for (int run = 0; run < 3; ++run) {
    const auto start = std::chrono::steady_clock::now();
    work();
    const double s = seconds_since(start);
    if (run == 0 || s < best) best = s;
  }
  return best;
}

/// The deterministic before/after run. Returns false when the >= 2x
/// overhead-reduction criterion does not hold.
bool report_compression() {
  constexpr std::size_t kSide = 64;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 10;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("race-overhead: FastTrack (Detector) vs PR 1 (ReferenceDetector)\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu Life, %zu bands, %zu barrier-synchronized rounds\n\n",
              kSide, kSide, kThreads, kRounds);

  // Untraced baseline: the simulation alone.
  const double untraced_s = min_seconds_of_3([&] {
    cs31::life::SerialLife untraced(initial);
    untraced.run(kRounds);
  });

  // After: the FastTrack detector on its interned-id fast path.
  std::uint64_t fast_events = 0;
  bool fast_race_free = false;
  const double fast_s = min_seconds_of_3([&] {
    const auto run = cs31::life::traced_life_check(initial, kThreads, kRounds, true);
    fast_events = run.events;
    fast_race_free = run.race_free;
  });

  // Before: PR 1's algorithm on the identical event stream.
  std::uint64_t ref_events = 0;
  bool ref_race_free = false;
  const double ref_s = min_seconds_of_3([&] {
    cs31::race::ReferenceDetector reference;
    const auto run =
        cs31::life::traced_life_check_with(reference, initial, kThreads, kRounds, true);
    ref_events = run.events;
    ref_race_free = run.race_free;
  });

  // End-of-run shadow bytes, from probe detectors fed the same stream.
  cs31::race::Detector fast_probe;
  cs31::race::ReferenceDetector ref_probe;
  (void)cs31::life::traced_life_check_with(fast_probe, initial, kThreads, kRounds, true);
  (void)cs31::life::traced_life_check_with(ref_probe, initial, kThreads, kRounds, true);
  const std::size_t fast_bytes = fast_probe.shadow_bytes();
  const std::size_t ref_bytes = ref_probe.shadow_bytes();

  // Mid-run snapshot: read state inflated across all bands.
  const std::size_t inflated_fast =
      read_shared_snapshot_bytes<cs31::race::Detector>(kThreads, kSide * kSide);
  const std::size_t inflated_ref =
      read_shared_snapshot_bytes<cs31::race::ReferenceDetector>(kThreads, kSide * kSide);

  const double events = static_cast<double>(fast_events);
  const double fast_eps = events / fast_s;
  const double ref_eps = events / ref_s;
  // Tracing overhead = time added on top of the untraced simulation;
  // the reduction is what the compression buys on identical events.
  const double fast_overhead = fast_s - untraced_s;
  const double ref_overhead = ref_s - untraced_s;
  const double reduction = fast_overhead > 0 ? ref_overhead / fast_overhead : 0.0;

  std::printf("%-34s %12s %14s\n", "", "fast (PR 2)", "reference (PR 1)");
  std::printf("%-34s %12.2f %14.2f\n", "wall time (ms)", fast_s * 1e3, ref_s * 1e3);
  std::printf("%-34s %12.2f %14s\n", "untraced simulation (ms)", untraced_s * 1e3, "-");
  std::printf("%-34s %12.1f %14.1f\n", "overhead vs untraced (x)", fast_s / untraced_s,
              ref_s / untraced_s);
  std::printf("%-34s %12.2f %14.2f\n", "events/sec (millions)", fast_eps / 1e6,
              ref_eps / 1e6);
  std::printf("%-34s %12zu %14zu\n", "shadow bytes (end of run)", fast_bytes, ref_bytes);
  std::printf("%-34s %12zu %14zu\n", "shadow bytes (read-shared)", inflated_fast,
              inflated_ref);
  std::printf("\ntracing overhead reduced %.1fx (acceptance floor: 2x)\n\n", reduction);

  std::printf(
      "BENCH_race {\"grid\":%zu,\"threads\":%zu,\"rounds\":%zu,\"events\":%llu,"
      "\"race_free\":%s,\"untraced_ms\":%.3f,\"fast_ms\":%.3f,\"ref_ms\":%.3f,"
      "\"fast_events_per_sec\":%.0f,\"ref_events_per_sec\":%.0f,"
      "\"overhead_reduction_x\":%.2f,"
      "\"fast_shadow_bytes\":%zu,\"ref_shadow_bytes\":%zu,"
      "\"read_shared_fast_bytes\":%zu,\"read_shared_ref_bytes\":%zu}\n\n",
      kSide, kThreads, kRounds, static_cast<unsigned long long>(fast_events),
      fast_race_free ? "true" : "false", untraced_s * 1e3, fast_s * 1e3, ref_s * 1e3,
      fast_eps, ref_eps, reduction, fast_bytes, ref_bytes, inflated_fast, inflated_ref);

  bool ok = true;
  if (!fast_race_free || !ref_race_free) {
    std::fprintf(stderr, "FAIL: barrier-synchronized Life must be race-free\n");
    ok = false;
  }
  if (fast_events != ref_events) {
    std::fprintf(stderr, "FAIL: detectors saw different event counts\n");
    ok = false;
  }
  if (reduction < 2.0) {
    std::fprintf(stderr, "FAIL: tracing overhead reduction %.2fx is below the 2x floor\n",
                 reduction);
    ok = false;
  }
  return ok;
}

/// The real-thread mode: trace an actual 4-thread barrier-synchronized
/// ParallelLife::run through the capture layer, with the HB detector
/// and the lockset detector consuming the identical drained stream.
/// Returns false when the <= 3x overhead ceiling or a known verdict
/// fails.
bool report_realthread() {
  constexpr std::size_t kSide = 64;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 10;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("real-thread capture: traced vs untraced ParallelLife::run\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu Life, %zu real threads, %zu rounds, row granularity\n\n",
              kSide, kSide, kThreads, kRounds);

  const double untraced_s = min_seconds_of_3([&] {
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds);
  });

  bool hb_race_free = false;
  std::size_t lockset_reports = 0;
  std::uint64_t captured = 0, drains = 0;
  std::vector<cs31::trace::BufferStats> buffers;
  const double traced_s = min_seconds_of_3([&] {
    cs31::trace::TraceContext ctx;
    cs31::race::LocksetDetector lockset;
    cs31::trace::MetricsSink metrics;
    ctx.attach_sink(lockset);
    ctx.attach_sink(metrics);
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds, {.ctx = &ctx, .report_barrier = true,
                       .granularity = cs31::life::TraceGranularity::Row});
    ctx.flush();
    hb_race_free = ctx.detector().race_free();
    lockset_reports = lockset.races().size();
    captured = ctx.events_captured();
    drains = ctx.drains();
    buffers = ctx.buffer_stats();
  });

  const double overhead = traced_s / untraced_s;
  std::printf("%-34s %12.2f\n", "untraced wall time (ms)", untraced_s * 1e3);
  std::printf("%-34s %12.2f\n", "traced wall time (ms)", traced_s * 1e3);
  std::printf("%-34s %12.2f\n", "overhead (x, ceiling 3.0)", overhead);
  std::printf("%-34s %12llu\n", "events captured",
              static_cast<unsigned long long>(captured));
  std::printf("%-34s %12llu\n", "drains", static_cast<unsigned long long>(drains));
  std::printf("%-34s %12s\n", "HB verdict", hb_race_free ? "race-free" : "RACES");
  std::printf("%-34s %12zu  (barrier false positives — Eraser cannot see barriers)\n",
              "lockset reports", lockset_reports);
  std::printf("per-thread buffer high-water marks:\n");
  for (const auto& b : buffers) {
    std::printf("  T%u: captured %llu, high water %llu\n", b.thread,
                static_cast<unsigned long long>(b.captured),
                static_cast<unsigned long long>(b.high_water));
  }

  std::printf("\nBENCH_race {\"mode\":\"realthread\",\"grid\":%zu,\"threads\":%zu,"
              "\"rounds\":%zu,\"untraced_ms\":%.3f,\"traced_ms\":%.3f,\"overhead_x\":%.2f,"
              "\"events_captured\":%llu,\"drains\":%llu,\"hb_race_free\":%s,"
              "\"lockset_reports\":%zu,\"buffer_high_water\":[",
              kSide, kThreads, kRounds, untraced_s * 1e3, traced_s * 1e3, overhead,
              static_cast<unsigned long long>(captured),
              static_cast<unsigned long long>(drains), hb_race_free ? "true" : "false",
              lockset_reports);
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ",",
                static_cast<unsigned long long>(buffers[i].high_water));
  }
  std::printf("]}\n\n");

  bool ok = true;
  if (!hb_race_free) {
    std::fprintf(stderr, "FAIL: barrier-synchronized real-thread Life must be race-free "
                         "under happens-before\n");
    ok = false;
  }
  if (overhead > 3.0) {
    std::fprintf(stderr, "FAIL: real-thread tracing overhead %.2fx exceeds the 3x ceiling\n",
                 overhead);
    ok = false;
  }
  return ok;
}

void BM_LifeStepUntraced(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  cs31::life::SerialLife life(Grid::random(side, side, 0.3, 7));
  for (auto _ : state) {
    life.step();
    benchmark::DoNotOptimize(life.grid());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepUntraced)->Arg(16)->Arg(32)->Arg(64);

void BM_LifeStepTraced(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Grid initial = Grid::random(side, side, 0.3, 7);
  for (auto _ : state) {
    // One barrier-synchronized generation through the FastTrack
    // detector (the race-free path: full check cost, no report
    // construction). Includes interning the cell names — the one-time
    // setup a longer run amortizes.
    const auto result = cs31::life::traced_life_check(initial, 4, 1, /*use_barrier=*/true);
    benchmark::DoNotOptimize(result.race_free);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepTraced)->Arg(16)->Arg(32)->Arg(64);

void BM_LifeStepTracedReference(benchmark::State& state) {
  // The PR 1 algorithm on the same generation — the "before" number.
  const auto side = static_cast<std::size_t>(state.range(0));
  const Grid initial = Grid::random(side, side, 0.3, 7);
  for (auto _ : state) {
    cs31::race::ReferenceDetector reference;
    const auto result =
        cs31::life::traced_life_check_with(reference, initial, 4, 1, /*use_barrier=*/true);
    benchmark::DoNotOptimize(result.race_free);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepTracedReference)->Arg(16)->Arg(32)->Arg(64);

void BM_DetectorEventThroughput(benchmark::State& state) {
  // Raw cost of one read/write check+record pair on a warm variable,
  // through the string API (one interner hash lookup per event).
  cs31::race::Detector detector;
  const auto t1 = detector.fork(0);
  (void)t1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    detector.read(0, "x", "bench");
    detector.write(0, "x", "bench");
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DetectorEventThroughput);

void BM_DetectorEventThroughputInterned(benchmark::State& state) {
  // The id fast path: intern once, then epoch checks only.
  cs31::race::Detector detector;
  const auto t1 = detector.fork(0);
  (void)t1;
  const auto var = detector.intern_var("x");
  const auto site = detector.intern_site("bench");
  std::uint64_t i = 0;
  for (auto _ : state) {
    detector.read(0, var, site);
    detector.write(0, var, site);
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DetectorEventThroughputInterned);

void BM_ReferenceEventThroughput(benchmark::State& state) {
  // PR 1's per-event cost: string-keyed map walks all the way down.
  cs31::race::ReferenceDetector detector;
  const auto t1 = detector.fork(0);
  (void)t1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    detector.read(0, "x", "bench");
    detector.write(0, "x", "bench");
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_ReferenceEventThroughput);

}  // namespace

int main(int argc, char** argv) {
  if (!report_compression()) return 1;
  if (!report_realthread()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
