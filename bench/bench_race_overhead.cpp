// Race-detection overhead: traced vs untraced Game of Life generations
// per second, plus the detector's raw event throughput. The shadow
// layer is a teaching instrument, not a production sanitizer — this
// bench quantifies what the per-access vector-clock bookkeeping costs
// so the README can say "use small grids when tracing" with a number
// attached (ThreadSanitizer's 5-15x slowdown is the same story at
// industrial strength).
#include <benchmark/benchmark.h>

#include <cstddef>

#include "life/life.hpp"
#include "life/traced.hpp"
#include "race/detector.hpp"

namespace {

using cs31::life::Grid;

void BM_LifeStepUntraced(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  cs31::life::SerialLife life(Grid::random(side, side, 0.3, 7));
  for (auto _ : state) {
    life.step();
    benchmark::DoNotOptimize(life.grid());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepUntraced)->Arg(16)->Arg(32);

void BM_LifeStepTraced(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Grid initial = Grid::random(side, side, 0.3, 7);
  for (auto _ : state) {
    // One barrier-synchronized generation through the detector (the
    // race-free path: full check cost, no report construction).
    const auto result = cs31::life::traced_life_check(initial, 4, 1, /*use_barrier=*/true);
    benchmark::DoNotOptimize(result.race_free);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepTraced)->Arg(16)->Arg(32);

void BM_DetectorEventThroughput(benchmark::State& state) {
  // Raw cost of one read/write check+record pair on a warm variable.
  cs31::race::Detector detector;
  const auto t1 = detector.fork(0);
  (void)t1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    detector.read(0, "x", "bench");
    detector.write(0, "x", "bench");
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DetectorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
