// Race-detection overhead: traced vs untraced Game of Life generations
// per second, raw detector event throughput, and — since the FastTrack
// shadow-state compression — a before/after comparison against the
// PR 1 full-vector-clock algorithm (kept as ReferenceDetector), fed
// the identical event stream.
//
// (a) a deterministic comparison run that times both detectors on the
//     same multi-round traced Life workload, snapshots shadow-state
//     bytes (end of run, and mid-run with the read state inflated),
//     emits a one-line BENCH_race {...} JSON summary, and *asserts* the
//     acceptance criterion: >= 2x reduction in tracing overhead vs the
//     PR 1 baseline (exit 1 on failure, so the tier-1 smoke run guards
//     the claim);
// (b) real-thread mode (the TraceContext capture layer): a traced
//     4-thread 64x64 ParallelLife::run vs the untraced run, with the
//     drained stream fed to the FastTrack Detector AND the Eraser-style
//     LocksetDetector simultaneously; *asserts* <= 3x wall-clock
//     overhead and the known verdicts (HB: race-free; lockset: flags
//     its documented barrier false positive or agrees), and emits a
//     second BENCH_race JSON line with per-thread buffer high-water
//     marks;
// (c) pipelined real-thread mode (PR 4): the same 4-thread 64x64 run
//     with analysis moved off the critical path into a one-shard
//     trace::AnalysisPipeline; *asserts* <= 1.25x wall-clock overhead
//     vs untraced AND that the pipeline's certificate is byte-identical
//     to the inline detector's (this is the tier-1 --perf-smoke run);
// (c2) capture-only overhead (the lock-free capture refactor's
//     acceptance number): traced ParallelLife::run with NO sinks in
//     both capture designs; *asserts* lock-free capture <= 1.1x the
//     untraced wall time;
// (c3) sync storm: 4 real threads hammering private TracedMutexes —
//     every event a sync event; *asserts* lock-free capture >= 1.5x
//     the mutex-ordered stream's throughput;
// (d) shard scaling: analysis capacity — events divided by the busiest
//     shard's busy time — for 1/2/4 shards on a cell-granularity
//     replay; *asserts* capacity grows from 1 to 4 shards (on a 1-core
//     host wall-clock cannot show the win, busy-time can);
// (e) sampling capture: the detection-probability vs overhead curve of
//     TraceContext's access-event sampling on a barrier-less Life;
// (f) google-benchmark timings: untraced / FastTrack-traced /
//     reference-traced Life steps (grids up to 64x64 — past the
//     practical limit of the string-keyed PR 1 detector), and
//     per-event throughput of both detectors on both API paths.
//
// --perf-smoke runs only (c), (c2), and (c3), in seconds not minutes,
// for ctest.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "life/life.hpp"
#include "life/traced.hpp"
#include "parallel/threads.hpp"
#include "race/detector.hpp"
#include "race/lockset.hpp"
#include "race/reference.hpp"
#include "trace/context.hpp"
#include "trace/instrumented.hpp"
#include "trace/metrics.hpp"
#include "trace/pipeline.hpp"

namespace {

using cs31::life::Grid;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Shadow bytes while the read state is inflated: `threads` workers all
/// read every variable (the Life compute phase freeze-framed before any
/// write deflates it) — the state FastTrack compresses hardest.
template <typename Sink>
std::size_t read_shared_snapshot_bytes(std::size_t threads, std::size_t vars) {
  Sink sink;
  std::vector<cs31::race::ThreadId> workers;
  for (std::size_t t = 0; t < threads; ++t) workers.push_back(sink.fork(0));
  for (std::size_t v = 0; v < vars; ++v) {
    const std::string var = "cell" + std::to_string(v);
    for (const auto w : workers) sink.read(w, var, "compute phase");
  }
  return sink.shadow_bytes();
}

/// Best (minimum) wall time of `runs` runs of `work` — the standard
/// noise shield for a one-shot comparison on a shared machine; load
/// spikes can only inflate a measurement, never deflate it.
template <typename Work>
double min_seconds_of(int runs, Work&& work) {
  double best = 0;
  for (int run = 0; run < runs; ++run) {
    const auto start = std::chrono::steady_clock::now();
    work();
    const double s = seconds_since(start);
    if (run == 0 || s < best) best = s;
  }
  return best;
}

template <typename Work>
double min_seconds_of_3(Work&& work) {
  return min_seconds_of(3, std::forward<Work>(work));
}

/// The deterministic before/after run. Returns false when the >= 2x
/// overhead-reduction criterion does not hold.
bool report_compression(cs31::bench::JsonReport& json) {
  constexpr std::size_t kSide = 64;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 10;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("race-overhead: FastTrack (Detector) vs PR 1 (ReferenceDetector)\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu Life, %zu bands, %zu barrier-synchronized rounds\n\n",
              kSide, kSide, kThreads, kRounds);

  // Untraced baseline: the simulation alone.
  const double untraced_s = min_seconds_of_3([&] {
    cs31::life::SerialLife untraced(initial);
    untraced.run(kRounds);
  });

  // After: the FastTrack detector on its interned-id fast path.
  std::uint64_t fast_events = 0;
  bool fast_race_free = false;
  const double fast_s = min_seconds_of_3([&] {
    const auto run = cs31::life::traced_life_check(initial, kThreads, kRounds, true);
    fast_events = run.events;
    fast_race_free = run.race_free;
  });

  // Before: PR 1's algorithm on the identical event stream.
  std::uint64_t ref_events = 0;
  bool ref_race_free = false;
  const double ref_s = min_seconds_of_3([&] {
    cs31::race::ReferenceDetector reference;
    const auto run =
        cs31::life::traced_life_check_with(reference, initial, kThreads, kRounds, true);
    ref_events = run.events;
    ref_race_free = run.race_free;
  });

  // End-of-run shadow bytes, from probe detectors fed the same stream.
  cs31::race::Detector fast_probe;
  cs31::race::ReferenceDetector ref_probe;
  (void)cs31::life::traced_life_check_with(fast_probe, initial, kThreads, kRounds, true);
  (void)cs31::life::traced_life_check_with(ref_probe, initial, kThreads, kRounds, true);
  const std::size_t fast_bytes = fast_probe.shadow_bytes();
  const std::size_t ref_bytes = ref_probe.shadow_bytes();

  // Mid-run snapshot: read state inflated across all bands.
  const std::size_t inflated_fast =
      read_shared_snapshot_bytes<cs31::race::Detector>(kThreads, kSide * kSide);
  const std::size_t inflated_ref =
      read_shared_snapshot_bytes<cs31::race::ReferenceDetector>(kThreads, kSide * kSide);

  const double events = static_cast<double>(fast_events);
  const double fast_eps = events / fast_s;
  const double ref_eps = events / ref_s;
  // Tracing overhead = time added on top of the untraced simulation;
  // the reduction is what the compression buys on identical events.
  const double fast_overhead = fast_s - untraced_s;
  const double ref_overhead = ref_s - untraced_s;
  const double reduction = fast_overhead > 0 ? ref_overhead / fast_overhead : 0.0;

  std::printf("%-34s %12s %14s\n", "", "fast (PR 2)", "reference (PR 1)");
  std::printf("%-34s %12.2f %14.2f\n", "wall time (ms)", fast_s * 1e3, ref_s * 1e3);
  std::printf("%-34s %12.2f %14s\n", "untraced simulation (ms)", untraced_s * 1e3, "-");
  std::printf("%-34s %12.1f %14.1f\n", "overhead vs untraced (x)", fast_s / untraced_s,
              ref_s / untraced_s);
  std::printf("%-34s %12.2f %14.2f\n", "events/sec (millions)", fast_eps / 1e6,
              ref_eps / 1e6);
  std::printf("%-34s %12zu %14zu\n", "shadow bytes (end of run)", fast_bytes, ref_bytes);
  std::printf("%-34s %12zu %14zu\n", "shadow bytes (read-shared)", inflated_fast,
              inflated_ref);
  std::printf("\ntracing overhead reduced %.1fx (acceptance floor: 2x)\n\n", reduction);

  std::printf(
      "BENCH_race {\"grid\":%zu,\"threads\":%zu,\"rounds\":%zu,\"events\":%llu,"
      "\"race_free\":%s,\"untraced_ms\":%.3f,\"fast_ms\":%.3f,\"ref_ms\":%.3f,"
      "\"fast_events_per_sec\":%.0f,\"ref_events_per_sec\":%.0f,"
      "\"overhead_reduction_x\":%.2f,"
      "\"fast_shadow_bytes\":%zu,\"ref_shadow_bytes\":%zu,"
      "\"read_shared_fast_bytes\":%zu,\"read_shared_ref_bytes\":%zu}\n\n",
      kSide, kThreads, kRounds, static_cast<unsigned long long>(fast_events),
      fast_race_free ? "true" : "false", untraced_s * 1e3, fast_s * 1e3, ref_s * 1e3,
      fast_eps, ref_eps, reduction, fast_bytes, ref_bytes, inflated_fast, inflated_ref);

  json.metric("compression_overhead_reduction_x", reduction);
  json.metric("fast_events_per_sec", fast_eps);
  json.metric("ref_events_per_sec", ref_eps);

  bool ok = true;
  if (!fast_race_free || !ref_race_free) {
    std::fprintf(stderr, "FAIL: barrier-synchronized Life must be race-free\n");
    ok = false;
  }
  if (fast_events != ref_events) {
    std::fprintf(stderr, "FAIL: detectors saw different event counts\n");
    ok = false;
  }
  if (reduction < 2.0) {
    std::fprintf(stderr, "FAIL: tracing overhead reduction %.2fx is below the 2x floor\n",
                 reduction);
    ok = false;
  }
  return ok;
}

/// The real-thread mode: trace an actual 4-thread barrier-synchronized
/// ParallelLife::run through the capture layer, with the HB detector
/// and the lockset detector consuming the identical drained stream.
/// Returns false when the <= 3x overhead ceiling or a known verdict
/// fails.
bool report_realthread(cs31::bench::JsonReport& json) {
  constexpr std::size_t kSide = 64;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 10;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("real-thread capture: traced vs untraced ParallelLife::run\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu Life, %zu real threads, %zu rounds, row granularity\n\n",
              kSide, kSide, kThreads, kRounds);

  const double untraced_s = min_seconds_of_3([&] {
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds);
  });

  bool hb_race_free = false;
  std::size_t lockset_reports = 0;
  std::uint64_t captured = 0, drains = 0;
  std::vector<cs31::trace::BufferStats> buffers;
  const double traced_s = min_seconds_of_3([&] {
    cs31::trace::TraceContext ctx;
    cs31::race::LocksetDetector lockset;
    cs31::trace::MetricsSink metrics;
    ctx.attach_sink(lockset);
    ctx.attach_sink(metrics);
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds, {.ctx = &ctx, .report_barrier = true,
                       .granularity = cs31::life::TraceGranularity::Row});
    ctx.flush();
    hb_race_free = ctx.detector().race_free();
    lockset_reports = lockset.races().size();
    captured = ctx.events_captured();
    drains = ctx.drains();
    buffers = ctx.buffer_stats();
  });

  const double overhead = traced_s / untraced_s;
  std::printf("%-34s %12.2f\n", "untraced wall time (ms)", untraced_s * 1e3);
  std::printf("%-34s %12.2f\n", "traced wall time (ms)", traced_s * 1e3);
  std::printf("%-34s %12.2f\n", "overhead (x, ceiling 3.0)", overhead);
  std::printf("%-34s %12llu\n", "events captured",
              static_cast<unsigned long long>(captured));
  std::printf("%-34s %12llu\n", "drains", static_cast<unsigned long long>(drains));
  std::printf("%-34s %12s\n", "HB verdict", hb_race_free ? "race-free" : "RACES");
  std::printf("%-34s %12zu  (barrier false positives — Eraser cannot see barriers)\n",
              "lockset reports", lockset_reports);
  std::printf("per-thread buffer high-water marks:\n");
  for (const auto& b : buffers) {
    std::printf("  T%u: captured %llu, high water %llu\n", b.thread,
                static_cast<unsigned long long>(b.captured),
                static_cast<unsigned long long>(b.high_water));
  }

  std::printf("\nBENCH_race {\"mode\":\"realthread\",\"grid\":%zu,\"threads\":%zu,"
              "\"rounds\":%zu,\"untraced_ms\":%.3f,\"traced_ms\":%.3f,\"overhead_x\":%.2f,"
              "\"events_captured\":%llu,\"drains\":%llu,\"hb_race_free\":%s,"
              "\"lockset_reports\":%zu,\"buffer_high_water\":[",
              kSide, kThreads, kRounds, untraced_s * 1e3, traced_s * 1e3, overhead,
              static_cast<unsigned long long>(captured),
              static_cast<unsigned long long>(drains), hb_race_free ? "true" : "false",
              lockset_reports);
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ",",
                static_cast<unsigned long long>(buffers[i].high_water));
  }
  std::printf("]}\n\n");

  json.metric("inline_3sink_overhead_x", overhead);

  bool ok = true;
  if (!hb_race_free) {
    std::fprintf(stderr, "FAIL: barrier-synchronized real-thread Life must be race-free "
                         "under happens-before\n");
    ok = false;
  }
  if (overhead > 3.0) {
    std::fprintf(stderr, "FAIL: real-thread tracing overhead %.2fx exceeds the 3x ceiling\n",
                 overhead);
    ok = false;
  }
  return ok;
}

/// The PR 4 acceptance run: a traced 4-thread 64x64 ParallelLife::run
/// with analysis off the critical path in a one-shard AnalysisPipeline.
/// One shard is deliberate: on a single-core host extra shards add
/// routing work with no parallel gain (report_shard_scaling shows the
/// capacity win instead), and one shard is already the full pipeline —
/// queue, router, off-thread FastTrack, deterministic merge.
/// Asserts <= 1.25x overhead vs untraced and a certificate
/// byte-identical to the inline detector's.
bool report_pipeline(cs31::bench::JsonReport& json) {
  constexpr std::size_t kSide = 64;
  constexpr std::size_t kThreads = 4;
  // More rounds than the inline section: the timed region includes the
  // pipeline's thread spawn/join lifecycle (the honest deployment
  // cost), and on a millisecond workload that fixed cost is the noise
  // floor — 40 rounds amortize it so the ratio measures the steady
  // state.
  constexpr std::size_t kRounds = 40;
  constexpr double kCeiling = 1.25;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("pipelined capture: analysis off the critical path (1 shard)\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu Life, %zu real threads, %zu rounds, row granularity\n\n",
              kSide, kSide, kThreads, kRounds);

  const double untraced_s = min_seconds_of(5, [&] {
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds);
  });

  // The inline certificate the pipeline must reproduce byte for byte.
  std::string inline_summary;
  {
    cs31::trace::TraceContext ctx;
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds, {.ctx = &ctx});
    ctx.flush();
    inline_summary = ctx.detector().summary();
  }

  std::string piped_summary;
  std::uint64_t piped_events = 0, publish_waits = 0;
  const double traced_s = min_seconds_of(5, [&] {
    cs31::trace::AnalysisPipeline pipeline(
        cs31::trace::AnalysisPipeline::Options{.shards = 1, .queue_capacity = 8});
    cs31::trace::TraceContext ctx(
        cs31::trace::TraceContext::Options{.own_detector = false});
    ctx.attach_pipeline(pipeline);
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds, {.ctx = &ctx});
    ctx.flush();
    piped_summary = pipeline.summary();
    piped_events = pipeline.events();
    publish_waits = pipeline.publish_waits();
  });

  const double overhead = traced_s / untraced_s;
  const bool identical = piped_summary == inline_summary;
  std::printf("%-34s %12.2f\n", "untraced wall time (ms)", untraced_s * 1e3);
  std::printf("%-34s %12.2f\n", "pipelined wall time (ms)", traced_s * 1e3);
  std::printf("%-34s %12.2f\n", "overhead (x, ceiling 1.25)", overhead);
  std::printf("%-34s %12llu\n", "events analyzed off-thread",
              static_cast<unsigned long long>(piped_events));
  std::printf("%-34s %12llu\n", "publish backpressure waits",
              static_cast<unsigned long long>(publish_waits));
  std::printf("%-34s %12s\n", "certificate vs inline",
              identical ? "byte-identical" : "DIFFERS");
  std::printf("  inline: %s\n\n", inline_summary.c_str());

  json.config("pipeline_grid", static_cast<std::uint64_t>(kSide));
  json.config("pipeline_threads", static_cast<std::uint64_t>(kThreads));
  json.config("pipeline_rounds", static_cast<std::uint64_t>(kRounds));
  json.metric("untraced_ms", untraced_s * 1e3);
  json.metric("pipelined_ms", traced_s * 1e3);
  json.metric("pipelined_overhead_x", overhead);
  json.metric("pipelined_certificate_identical", identical);

  bool ok = true;
  if (!identical) {
    std::fprintf(stderr, "FAIL: pipeline certificate differs from inline mode\n");
    ok = false;
  }
  if (overhead > kCeiling) {
    std::fprintf(stderr, "FAIL: pipelined overhead %.2fx exceeds the %.2fx ceiling\n",
                 overhead, kCeiling);
    ok = false;
  }
  return ok;
}

/// Capture-only overhead: the cost of the capture layer itself — per-
/// thread buffer appends for accesses, and since the lock-free refactor
/// a (global stamp, per-object seq) pair for syncs — with no analysis
/// attached at all (no detector, no pipeline: drains merge and discard).
/// This is the number the lock-free redesign moves, so it is asserted:
/// lock-free capture must hold traced ParallelLife::run to <= 1.1x the
/// untraced wall time. The mutex_stream row is the same measurement on
/// the old design, reported for the contrast (and the JSON carries a
/// "capture" dimension for both).
bool report_capture_overhead(cs31::bench::JsonReport& json) {
  constexpr std::size_t kSide = 64;
  constexpr std::size_t kThreads = 4;
  // More rounds and more min-of runs than (c): the asserted margin is
  // tighter (1.1x vs 1.25x), so the measurement needs a deeper noise
  // shield on a shared 1-core host.
  constexpr std::size_t kRounds = 60;
  constexpr int kRuns = 9;
  constexpr double kCeiling = 1.1;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("capture-only overhead: lock-free vs mutex-stream sync capture\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu Life, %zu real threads, %zu rounds, row granularity,\n"
              "          no sinks attached (drain merges and discards)\n\n",
              kSide, kSide, kThreads, kRounds);

  const double untraced_s = min_seconds_of(kRuns, [&] {
    cs31::life::ParallelLife life(initial, kThreads);
    life.run(kRounds);
  });

  double mode_s[2] = {0, 0};
  std::uint64_t captured = 0;
  const cs31::trace::CaptureMode modes[2] = {cs31::trace::CaptureMode::lockfree,
                                             cs31::trace::CaptureMode::mutex_stream};
  const char* mode_names[2] = {"lockfree", "mutex"};
  for (int m = 0; m < 2; ++m) {
    mode_s[m] = min_seconds_of(kRuns, [&] {
      cs31::trace::TraceContext ctx(cs31::trace::TraceContext::Options{
          .own_detector = false, .capture = modes[m]});
      cs31::life::ParallelLife life(initial, kThreads);
      life.run(kRounds, {.ctx = &ctx});
      ctx.flush();
      captured = ctx.events_captured();
    });
    const double overhead = mode_s[m] / untraced_s;
    std::printf("%-12s traced %8.2f ms   untraced %8.2f ms   overhead %.3fx\n",
                mode_names[m], mode_s[m] * 1e3, untraced_s * 1e3, overhead);
    std::printf("BENCH_race {\"mode\":\"capture_only\",\"capture\":\"%s\",\"grid\":%zu,"
                "\"threads\":%zu,\"rounds\":%zu,\"untraced_ms\":%.3f,\"traced_ms\":%.3f,"
                "\"overhead_x\":%.3f,\"events_captured\":%llu}\n",
                mode_names[m], kSide, kThreads, kRounds, untraced_s * 1e3, mode_s[m] * 1e3,
                overhead, static_cast<unsigned long long>(captured));
    json.metric(std::string("capture_overhead_x_") + mode_names[m], overhead);
  }
  const double lockfree_overhead = mode_s[0] / untraced_s;
  std::printf("\nlock-free capture overhead %.3fx (ceiling %.2fx)\n\n", lockfree_overhead,
              kCeiling);

  if (lockfree_overhead > kCeiling) {
    std::fprintf(stderr,
                 "FAIL: lock-free capture overhead %.3fx exceeds the %.2fx ceiling\n",
                 lockfree_overhead, kCeiling);
    return false;
  }
  return true;
}

/// Sync storm: the workload the mutex-ordered stream was worst at —
/// real threads doing nothing but lock/unlock on their own (uncontended)
/// TracedMutexes, so every recorded event is a sync event and the old
/// design funnels all of them through one global mutex. Lock-free
/// capture records each into the owning thread's buffer with two relaxed
/// fetch_adds; asserted >= 1.5x the mutex-stream throughput.
bool report_sync_storm(cs31::bench::JsonReport& json) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kIters = 25000;  // x2 events (acquire+release)
  constexpr double kFloor = 1.5;

  std::printf("==============================================================\n");
  std::printf("sync storm: per-thread mutexes, every event a sync event\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zu real threads x %llu lock/unlock on private TracedMutexes\n\n",
              kThreads, static_cast<unsigned long long>(kIters));

  double tput[2] = {0, 0};
  const cs31::trace::CaptureMode modes[2] = {cs31::trace::CaptureMode::lockfree,
                                             cs31::trace::CaptureMode::mutex_stream};
  const char* mode_names[2] = {"lockfree", "mutex"};
  for (int m = 0; m < 2; ++m) {
    std::uint64_t captured = 0;
    const double s = min_seconds_of_3([&] {
      cs31::trace::TraceContext ctx(cs31::trace::TraceContext::Options{
          .own_detector = false, .capture = modes[m]});
      std::vector<std::unique_ptr<cs31::trace::TracedMutex>> mutexes;
      for (std::size_t t = 0; t < kThreads; ++t) {
        mutexes.push_back(std::make_unique<cs31::trace::TracedMutex>(
            "storm_m" + std::to_string(t), ctx));
      }
      cs31::parallel::ThreadTeam team(kThreads, ctx, [&](std::size_t who) {
        cs31::trace::TracedMutex& mutex = *mutexes[who];
        for (std::uint64_t i = 0; i < kIters; ++i) {
          mutex.lock();
          mutex.unlock();
        }
      });
      team.join();
      ctx.flush();
      captured = ctx.events_captured();
    });
    tput[m] = static_cast<double>(captured) / s;
    std::printf("%-12s %8.2f ms   %10.2f Kev/s   (%llu sync events)\n", mode_names[m],
                s * 1e3, tput[m] / 1e3, static_cast<unsigned long long>(captured));
    std::printf("BENCH_race {\"mode\":\"sync_storm\",\"capture\":\"%s\",\"threads\":%zu,"
                "\"iters\":%llu,\"wall_ms\":%.3f,\"sync_events_per_sec\":%.0f}\n",
                mode_names[m], kThreads, static_cast<unsigned long long>(kIters), s * 1e3,
                tput[m]);
    json.metric(std::string("sync_storm_events_per_sec_") + mode_names[m], tput[m]);
  }
  const double speedup = tput[0] / tput[1];
  std::printf("\nlock-free sync capture throughput %.2fx mutex-stream (floor %.1fx)\n\n",
              speedup, kFloor);
  json.metric("sync_storm_speedup_x", speedup);

  if (speedup < kFloor) {
    std::fprintf(stderr,
                 "FAIL: sync-storm speedup %.2fx is below the %.1fx floor\n", speedup,
                 kFloor);
    return false;
  }
  return true;
}

/// Shard scaling, measured honestly on any core count: wall-clock on a
/// 1-core host cannot improve with more analysis workers, but the
/// analysis *capacity* — events retired per second of the busiest
/// shard's CPU time — can and must. That is the number that predicts
/// multi-core behaviour: with real cores, throughput saturates at
/// capacity, so capacity(4) > capacity(1) is the scaling claim.
bool report_shard_scaling(cs31::bench::JsonReport& json) {
  constexpr std::size_t kSide = 48;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 6;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("shard scaling: analysis capacity vs worker count\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu cell-granularity replay, %zu bands, %zu rounds\n\n",
              kSide, kSide, kThreads, kRounds);
  std::printf("%8s %10s %16s %18s %14s\n", "shards", "events", "max shard busy",
              "capacity (Mev/s)", "balance");

  double capacity1 = 0, capacity4 = 0;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    // Best of 3: busy time is CPU time, but still jitters with the
    // scheduler; the minimum is the clean measurement.
    double best_busy = 0;
    std::uint64_t events = 0;
    std::uint64_t min_access = 0, max_access = 0;
    for (int run = 0; run < 3; ++run) {
      cs31::trace::AnalysisPipeline pipeline(
          cs31::trace::AnalysisPipeline::Options{.shards = shards, .queue_capacity = 8});
      cs31::life::TracedLifeOptions options;
      options.pipeline = &pipeline;
      const auto result =
          cs31::life::traced_life_check(initial, kThreads, kRounds, options);
      events = result.events;
      double busy = 0;
      min_access = UINT64_MAX;
      max_access = 0;
      for (const auto& s : pipeline.shard_stats()) {
        busy = std::max(busy, s.busy_seconds);
        min_access = std::min(min_access, s.access_events);
        max_access = std::max(max_access, s.access_events);
      }
      if (run == 0 || busy < best_busy) best_busy = busy;
    }
    const double capacity = static_cast<double>(events) / best_busy;
    if (shards == 1) capacity1 = capacity;
    if (shards == 4) capacity4 = capacity;
    std::printf("%8zu %10llu %13.2f ms %18.1f %6llu..%llu\n", shards,
                static_cast<unsigned long long>(events), best_busy * 1e3, capacity / 1e6,
                static_cast<unsigned long long>(min_access),
                static_cast<unsigned long long>(max_access));
    json.metric("analysis_capacity_mev_s_" + std::to_string(shards) + "_shards",
                capacity / 1e6);
  }
  std::printf("  (balance = min..max access events routed per shard — var-id\n"
              "   sharding spreads the grid cells evenly)\n\n");

  if (capacity4 <= capacity1) {
    std::fprintf(stderr,
                 "FAIL: 4-shard analysis capacity (%.1f Mev/s) does not exceed "
                 "1-shard (%.1f Mev/s)\n",
                 capacity4 / 1e6, capacity1 / 1e6);
    return false;
  }
  std::printf("capacity scales %.2fx from 1 to 4 shards\n\n", capacity4 / capacity1);
  json.metric("capacity_scaling_1_to_4", capacity4 / capacity1);
  return true;
}

/// Sampling capture: keep each access event with probability p (sync
/// events always kept — they carry the happens-before edges), and
/// measure what that buys (time) and costs (races missed) on the
/// barrier-less Life, whose 240-odd distinct races give the detection
/// probability a real denominator. The curve lands in EXPERIMENTS.md.
void report_sampling(cs31::bench::JsonReport& json) {
  constexpr std::size_t kSide = 32;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 6;
  const Grid initial = Grid::random(kSide, kSide, 0.3, 7);

  std::printf("==============================================================\n");
  std::printf("sampling capture: detection probability vs overhead\n");
  std::printf("==============================================================\n\n");
  std::printf("workload: %zux%zu barrier-less Life replay, %zu bands, %zu rounds\n\n",
              kSide, kSide, kThreads, kRounds);
  std::printf("%8s %10s %12s %12s %12s %10s\n", "rate", "races", "detection",
              "events", "sampled out", "time (ms)");

  std::size_t full_races = 0;
  for (const double rate : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
    std::size_t races = 0;
    std::uint64_t events = 0, sampled_out = 0;
    const double s = min_seconds_of(3, [&] {
      cs31::life::TracedLifeOptions options;
      options.use_barrier = false;
      options.sample_rate = rate;
      const auto result =
          cs31::life::traced_life_check(initial, kThreads, kRounds, options);
      races = result.races.size();
      events = result.events;
      sampled_out = result.sampled_out;
    });
    if (rate == 1.0) full_races = races;
    const double detection =
        full_races == 0 ? 0.0
                        : static_cast<double>(races) / static_cast<double>(full_races);
    std::printf("%8.4f %10zu %11.1f%% %12llu %12llu %10.2f\n", rate, races,
                100 * detection, static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(sampled_out), s * 1e3);
    char key[32];
    std::snprintf(key, sizeof key, "%g", rate);
    json.metric("sampling_detection_rate_" + std::string(key), detection);
    json.metric("sampling_ms_rate_" + std::string(key), s * 1e3);
  }
  std::printf("  (sampling is per-thread deterministic — the same rate always\n"
              "   yields the same verdict; sync events are never dropped, so the\n"
              "   happens-before structure stays exact and a kept access is\n"
              "   never a false positive)\n\n");
}

void BM_LifeStepUntraced(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  cs31::life::SerialLife life(Grid::random(side, side, 0.3, 7));
  for (auto _ : state) {
    life.step();
    benchmark::DoNotOptimize(life.grid());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepUntraced)->Arg(16)->Arg(32)->Arg(64);

void BM_LifeStepTraced(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const Grid initial = Grid::random(side, side, 0.3, 7);
  for (auto _ : state) {
    // One barrier-synchronized generation through the FastTrack
    // detector (the race-free path: full check cost, no report
    // construction). Includes interning the cell names — the one-time
    // setup a longer run amortizes.
    const auto result = cs31::life::traced_life_check(initial, 4, 1, /*use_barrier=*/true);
    benchmark::DoNotOptimize(result.race_free);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepTraced)->Arg(16)->Arg(32)->Arg(64);

void BM_LifeStepTracedReference(benchmark::State& state) {
  // The PR 1 algorithm on the same generation — the "before" number.
  const auto side = static_cast<std::size_t>(state.range(0));
  const Grid initial = Grid::random(side, side, 0.3, 7);
  for (auto _ : state) {
    cs31::race::ReferenceDetector reference;
    const auto result =
        cs31::life::traced_life_check_with(reference, initial, 4, 1, /*use_barrier=*/true);
    benchmark::DoNotOptimize(result.race_free);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(side * side));
}
BENCHMARK(BM_LifeStepTracedReference)->Arg(16)->Arg(32)->Arg(64);

void BM_DetectorEventThroughput(benchmark::State& state) {
  // Raw cost of one read/write check+record pair on a warm variable,
  // through the string API (one interner hash lookup per event).
  cs31::race::Detector detector;
  const auto t1 = detector.fork(0);
  (void)t1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    detector.read(0, "x", "bench");
    detector.write(0, "x", "bench");
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DetectorEventThroughput);

void BM_DetectorEventThroughputInterned(benchmark::State& state) {
  // The id fast path: intern once, then epoch checks only.
  cs31::race::Detector detector;
  const auto t1 = detector.fork(0);
  (void)t1;
  const auto var = detector.intern_var("x");
  const auto site = detector.intern_site("bench");
  std::uint64_t i = 0;
  for (auto _ : state) {
    detector.read(0, var, site);
    detector.write(0, var, site);
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_DetectorEventThroughputInterned);

void BM_ReferenceEventThroughput(benchmark::State& state) {
  // PR 1's per-event cost: string-keyed map walks all the way down.
  cs31::race::ReferenceDetector detector;
  const auto t1 = detector.fork(0);
  (void)t1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    detector.read(0, "x", "bench");
    detector.write(0, "x", "bench");
    ++i;
  }
  benchmark::DoNotOptimize(i);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_ReferenceEventThroughput);

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("race_overhead", argc, argv);
  json.workload("race-detection overhead: inline, pipelined, sharded, sampled");

  bool perf_smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-smoke") == 0) {
      perf_smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  if (perf_smoke) {
    // The tier-1 guard (seconds, not minutes): the PR 4 acceptance run
    // plus the two lock-free capture assertions — traced Life within
    // the 1.1x capture-only ceiling, sync-storm throughput >= 1.5x the
    // mutex-stream design.
    bool ok = report_pipeline(json);
    ok = report_capture_overhead(json) && ok;
    ok = report_sync_storm(json) && ok;
    return ok ? 0 : 1;
  }

  if (!report_compression(json)) return 1;
  if (!report_realthread(json)) return 1;
  if (!report_pipeline(json)) return 1;
  if (!report_capture_overhead(json)) return 1;
  if (!report_sync_storm(json)) return 1;
  if (!report_shard_scaling(json)) return 1;
  report_sampling(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
