// Ablation — scheduling policies (the OS unit's "scheduling for
// efficiency"): FIFO / RR / SJF / SRTF / priority over batch,
// interactive, and mixed job sets; turnaround vs response trade-off,
// plus the RR quantum sweep.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "os/scheduler.hpp"

namespace {

using namespace cs31::os;

std::vector<Job> batch_jobs() {
  // Long CPU-bound jobs arriving together (the convoy scenario).
  return {{"batch1", 0, 40, 1}, {"batch2", 0, 35, 2}, {"batch3", 1, 45, 3},
          {"batch4", 2, 30, 1}};
}

std::vector<Job> interactive_jobs() {
  // Many short jobs trickling in.
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(Job{"key" + std::to_string(i), static_cast<std::uint64_t>(3 * i),
                       2 + static_cast<std::uint64_t>(i % 3), i % 4});
  }
  return jobs;
}

std::vector<Job> mixed_jobs() {
  std::vector<Job> jobs = {{"compile", 0, 60, 2}};
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(Job{"edit" + std::to_string(i), static_cast<std::uint64_t>(5 + 7 * i),
                       3, 1});
  }
  return jobs;
}

void table(const char* name, const std::vector<Job>& jobs, const char* key,
           cs31::bench::JsonReport& json) {
  std::printf("%s (%zu jobs)\n", name, jobs.size());
  std::printf("%8s %14s %12s %12s %10s\n", "policy", "avg turnaround", "avg response",
              "avg waiting", "switches");
  for (const SchedPolicy p : {SchedPolicy::Fifo, SchedPolicy::RoundRobin,
                              SchedPolicy::Sjf, SchedPolicy::Srtf,
                              SchedPolicy::Priority}) {
    const Schedule s = schedule(jobs, p, 4);
    std::printf("%8s %14.1f %12.1f %12.1f %10llu\n", policy_name(p).c_str(),
                s.avg_turnaround(), s.avg_response(), s.avg_waiting(),
                static_cast<unsigned long long>(s.context_switches));
    json.metric(std::string(key) + "_" + policy_name(p) + "_avg_turnaround",
                s.avg_turnaround());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("ablation_sched", argc, argv);
  json.workload("scheduling policies over batch/interactive/mixed job sets");
  json.config("rr_quantum", 4);
  std::printf("==============================================================\n");
  std::printf("Ablation: CPU scheduling policies\n");
  std::printf("==============================================================\n\n");
  table("(a) batch workload", batch_jobs(), "batch", json);
  table("(b) interactive workload", interactive_jobs(), "interactive", json);
  table("(c) mixed workload (one compile + keystrokes)", mixed_jobs(), "mixed", json);

  std::printf("(d) round-robin quantum sweep on the mixed workload\n");
  std::printf("%9s %14s %12s %10s\n", "quantum", "avg turnaround", "avg response",
              "switches");
  for (const std::uint64_t q : {1u, 2u, 4u, 8u, 16u, 64u}) {
    const Schedule s = schedule(mixed_jobs(), SchedPolicy::RoundRobin, q);
    std::printf("%9llu %14.1f %12.1f %10llu\n", static_cast<unsigned long long>(q),
                s.avg_turnaround(), s.avg_response(),
                static_cast<unsigned long long>(s.context_switches));
  }
  std::printf("\nshape: small quanta buy responsiveness with context-switch churn;\n"
              "large quanta degenerate toward FIFO — the trade-off the course\n"
              "frames as 'the OS's role in scheduling for efficiency'.\n");
  return 0;
}
