// Experiment E1 — regenerate Table I of the paper: "Main TCPP topics
// covered in CS 31", grouped by TCPP curriculum area, from the
// curriculum model; then the coverage cross-check (every topic maps to
// at least one course module and kit library).
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "core/curriculum.hpp"

int main(int argc, char** argv) {
  using namespace cs31::core;
  cs31::bench::JsonReport json("table1_tcpp", argc, argv);
  json.workload("Table I reproduction: TCPP topic coverage of the CS 31 modules");
  const Curriculum& course = Curriculum::cs31();

  std::printf("==============================================================\n");
  std::printf("E1: Table I — Main TCPP topics covered in CS 31\n");
  std::printf("==============================================================\n\n");
  std::printf("%s\n", course.render_table1().c_str());

  std::printf("Per-category topic counts (paper's Table I shape):\n");
  for (const TcppCategory cat : {TcppCategory::Pervasive, TcppCategory::Architecture,
                                 TcppCategory::Programming, TcppCategory::Algorithms}) {
    std::printf("  %-13s %zu topics\n", category_name(cat).c_str(),
                course.topics_in(cat).size());
    json.metric(category_name(cat) + "_topics", course.topics_in(cat).size());
  }

  std::printf("\nCoverage map: TCPP topic -> course modules (kit library) / labs\n");
  std::printf("----------------------------------------------------------------\n");
  for (const TcppTopic& topic : course.topics()) {
    std::string mods;
    for (const std::string& m : course.covering_modules(topic.name)) {
      if (!mods.empty()) mods += ", ";
      mods += m;
    }
    std::string labs;
    for (const int lab : course.covering_labs(topic.name)) {
      if (!labs.empty()) labs += ",";
      labs += std::to_string(lab);
    }
    std::printf("  %-32s %-60s labs[%s]\n", topic.name.c_str(), mods.c_str(),
                labs.c_str());
  }

  const auto uncovered = course.uncovered_topics();
  std::printf("\nUncovered topics: %zu (paper claims full coverage; must be 0)\n",
              uncovered.size());
  json.metric("uncovered_topics", uncovered.size());
  return uncovered.empty() ? 0 : 1;
}
