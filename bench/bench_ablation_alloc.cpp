// Ablation — heap placement policies (DESIGN.md): first fit vs best fit
// vs next fit under allocation churn: fragmentation, failure rate, and
// wall-clock cost of the placement scan.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "heap/allocator.hpp"

namespace {

using namespace cs31::heap;

struct Outcome {
  double fragmentation = 0;
  std::uint64_t failures = 0;
  std::uint32_t peak = 0;
  double seconds = 0;
};

Outcome churn(FitPolicy policy, std::uint32_t seed) {
  using clock = std::chrono::steady_clock;
  Heap heap(1u << 20, policy);  // 1 MiB arena
  std::vector<std::uint32_t> live;
  std::uint32_t state = seed | 1u;
  auto rnd = [&](std::uint32_t mod) {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) % mod;
  };
  const auto t0 = clock::now();
  for (int step = 0; step < 60000; ++step) {
    // Bimodal sizes (tiny + occasional large), 55/45 alloc/free mix —
    // the classic fragmentation-provoking workload.
    if (live.empty() || rnd(100) < 55) {
      const std::uint32_t size = rnd(100) < 80 ? 8 + rnd(56) : 512 + rnd(2048);
      const std::uint32_t address = heap.malloc(size);
      if (address != 0) live.push_back(address);
    } else {
      const std::size_t victim = rnd(static_cast<std::uint32_t>(live.size()));
      heap.free(live[victim]);
      live[victim] = live.back();
      live.pop_back();
    }
  }
  Outcome out;
  out.seconds = std::chrono::duration<double>(clock::now() - t0).count();
  const HeapStats s = heap.stats();
  out.fragmentation = s.fragmentation();
  out.failures = s.failed_allocations;
  out.peak = s.peak_bytes_in_use;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  cs31::bench::JsonReport json("ablation_alloc", argc, argv);
  json.workload("heap placement-policy churn: bimodal sizes, 55/45 alloc/free mix");
  json.config("arena_bytes", 1u << 20);
  json.config("ops", 60000);
  json.config("seeds", 3);
  std::printf("==============================================================\n");
  std::printf("Ablation: heap placement policies (1 MiB arena, 60k ops)\n");
  std::printf("==============================================================\n\n");
  std::printf("%-10s %16s %10s %12s %10s\n", "policy", "fragmentation", "failures",
              "peak bytes", "seconds");
  for (const auto& [name, policy] : {std::pair{"first", FitPolicy::FirstFit},
                                    std::pair{"best", FitPolicy::BestFit},
                                    std::pair{"next", FitPolicy::NextFit}}) {
    double frag = 0, secs = 0;
    std::uint64_t fails = 0;
    std::uint32_t peak = 0;
    for (const std::uint32_t seed : {1u, 2u, 3u}) {
      const Outcome o = churn(policy, seed);
      frag += o.fragmentation / 3;
      secs += o.seconds / 3;
      fails += o.failures;
      peak = std::max(peak, o.peak);
    }
    std::printf("%-10s %15.1f%% %10llu %12u %10.3f\n", name, 100 * frag,
                static_cast<unsigned long long>(fails), peak, secs);
    json.metric(std::string(name) + "_fit_fragmentation", frag);
    json.metric(std::string(name) + "_fit_failures", fails);
    json.metric(std::string(name) + "_fit_seconds", secs);
  }
  std::printf("\nshape: best fit reduces external fragmentation at extra scan cost;\n"
              "next fit spreads allocations (faster scans, more fragmentation).\n");
  return 0;
}
