// Experiment E2 — regenerate Figure 1: "Upper-level students' rating of
// their understanding level of some PDC topics introduced in CS 31"
// (0..4 Bloom scale, average and median per topic), via the simulated
// cohort (see DESIGN.md substitutions). Prints the per-topic series and
// checks the shape properties the paper reports.
#include <cstdio>

#include "bench_json.hpp"
#include "survey/survey.hpp"

int main(int argc, char** argv) {
  using namespace cs31;
  cs31::bench::JsonReport json("fig1_survey", argc, argv);
  json.workload("Figure 1 reproduction: simulated cohort PDC self-ratings");
  const auto topics = survey::figure1_topics();
  survey::CohortConfig cfg;  // ~60 students x 5 semesters, like the paper
  json.config("students_per_semester", cfg.students_per_semester);
  json.config("semesters", cfg.semesters);
  const auto results = survey::simulate(topics, cfg);

  std::printf("==============================================================\n");
  std::printf("E2: Figure 1 — self-rated PDC understanding (simulated cohort)\n");
  std::printf("    cohort: %u students x %u semesters, Bloom scale 0..4\n",
              cfg.students_per_semester, cfg.semesters);
  std::printf("==============================================================\n\n");
  std::printf("%-32s %7s %7s   histogram(0..4)\n", "topic", "avg", "median");
  for (const auto& r : results) {
    std::printf("%-32s %7.2f %7.1f   [%u %u %u %u %u]\n", r.name.c_str(), r.average,
                r.median, r.histogram[0], r.histogram[1], r.histogram[2],
                r.histogram[3], r.histogram[4]);
  }

  std::printf("\n%s\n", survey::render_figure1(results).c_str());

  // Shape checks from the paper's narrative.
  double heavy = 0, light = 0;
  int heavy_n = 0, light_n = 0;
  bool all_recognized = true;
  for (std::size_t i = 0; i < topics.size(); ++i) {
    if (results[i].average < 1.0) all_recognized = false;
    if (topics[i].emphasis == core::Emphasis::Emphasize) {
      heavy += results[i].average;
      ++heavy_n;
    } else if (topics[i].emphasis == core::Emphasis::Mention) {
      light += results[i].average;
      ++light_n;
    }
  }
  // The paper ran the survey twice: at the END of CS 87 (reflecting back
  // over up to ~2 years) and in the FIRST WEEK of CS 43. Model the two
  // administrations as cohorts with different staleness and show the
  // expected ordering.
  {
    survey::CohortConfig fresh = cfg;   // just-finished reflection
    fresh.retention_loss_per_semester = 0.05;
    survey::CohortConfig stale = cfg;   // first-week, long since CS 31
    stale.retention_loss_per_semester = 0.30;
    auto mean_of = [](const std::vector<survey::TopicResult>& rs) {
      double m = 0;
      for (const auto& r : rs) m += r.average;
      return m / static_cast<double>(rs.size());
    };
    const double fresh_mean = mean_of(survey::simulate(topics, fresh));
    const double stale_mean = mean_of(survey::simulate(topics, stale));
    std::printf("Two administrations (paper: CS 87 end-of-course vs CS 43 first week):\n");
    std::printf("  end-of-course cohort mean %.2f vs first-week cohort mean %.2f\n",
                fresh_mean, stale_mean);
    std::printf("  (\"a few students said they didn't remember much ... it had been\n"
                "   a while\" -> the stale cohort rates lower: %s)\n\n",
                fresh_mean > stale_mean ? "reproduced" : "NOT reproduced");
  }

  std::printf("Shape checks vs the paper:\n");
  std::printf("  all topics at/above recognition (>=1): %s\n",
              all_recognized ? "yes (matches paper)" : "NO");
  std::printf("  emphasized-topic mean %.2f vs mentioned-topic mean %.2f -> gap %.2f\n",
              heavy / heavy_n, light / light_n, heavy / heavy_n - light / light_n);
  std::printf("  (paper: heavily emphasized topics rate at deeper levels)\n");
  json.metric("all_topics_recognized", all_recognized);
  json.metric("emphasized_topic_mean", heavy / heavy_n);
  json.metric("mentioned_topic_mean", light / light_n);
  return all_recognized && heavy / heavy_n > light / light_n ? 0 : 1;
}
